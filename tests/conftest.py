"""Shared fixtures for the test suite.

Tests run on the ``tiny_scale`` system (2 KiB L1s, 32 blocks) with small
workload populations so that trace generation and simulation stay fast;
behaviour relative to the cache is what matters, and all footprints are
defined in L1-size units.
"""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig, default_scale, tiny_scale
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A 2-core, 2 KiB-L1 system."""
    return tiny_scale(num_cores=2)


@pytest.fixture
def quad_config() -> SystemConfig:
    """A 4-core, 2 KiB-L1 system."""
    return tiny_scale(num_cores=4)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(42)


@pytest.fixture(scope="session")
def tiny_tpcc() -> TpccWorkload:
    """A small TPC-C instance shared across the session (read-mostly:
    tests that need isolated state build their own)."""
    blocks = tiny_scale().l1i_blocks
    return TpccWorkload(blocks, warehouses=1, customers_per_district=30,
                        items=100, seed=99)


@pytest.fixture(scope="session")
def tiny_tpce() -> TpceWorkload:
    """A small TPC-E instance shared across the session."""
    blocks = tiny_scale().l1i_blocks
    return TpceWorkload(blocks, customers=40, securities=60, trades=200,
                        brokers=8, seed=99)


@pytest.fixture(scope="session")
def tiny_mapreduce() -> MapReduceWorkload:
    """A small MapReduce instance shared across the session."""
    blocks = tiny_scale().l1i_blocks
    return MapReduceWorkload(blocks, seed=99)


@pytest.fixture(scope="session")
def default_tpcc() -> TpccWorkload:
    """A default-scale TPC-C instance (for calibration tests)."""
    blocks = default_scale().l1i_blocks
    return TpccWorkload(blocks, seed=99)
