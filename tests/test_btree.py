"""Tests for repro.db.btree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BTreeIndex
from repro.db.storage import DataSpace


def make_tree(order=4):
    return BTreeIndex("t", DataSpace(), order=order)


class TestBasics:
    def test_empty_lookup(self):
        assert make_tree().lookup(1) is None

    def test_insert_and_lookup(self):
        tree = make_tree()
        tree.insert(5, 50)
        assert tree.lookup(5) == 50

    def test_overwrite_does_not_grow(self):
        tree = make_tree()
        tree.insert(5, 50)
        tree.insert(5, 51)
        assert tree.lookup(5) == 51
        assert tree.size == 1

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            make_tree(order=2)

    def test_many_inserts_sorted_items(self):
        tree = make_tree()
        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == sorted(range(100))

    def test_height_grows(self):
        tree = make_tree(order=4)
        assert tree.height() == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.height() >= 3

    def test_traverse_path_length_matches_height(self):
        tree = make_tree(order=4)
        for key in range(100):
            tree.insert(key, key)
        _, path = tree.traverse(50)
        assert len(path) == tree.height()

    def test_traverse_returns_distinct_blocks(self):
        tree = make_tree(order=4)
        for key in range(100):
            tree.insert(key, key)
        _, path = tree.traverse(7)
        assert len(set(path)) == len(path)


class TestScan:
    def test_scan_range(self):
        tree = make_tree()
        for key in range(50):
            tree.insert(key, key * 2)
        values, blocks = tree.scan(10, 19)
        assert values == [k * 2 for k in range(10, 20)]
        assert blocks

    def test_scan_empty_range(self):
        tree = make_tree()
        for key in range(0, 50, 10):
            tree.insert(key, key)
        values, _ = tree.scan(41, 49)
        assert values == []

    def test_scan_whole_tree(self):
        tree = make_tree()
        for key in range(30):
            tree.insert(key, key)
        values, _ = tree.scan(0, 29)
        assert values == list(range(30))

    def test_scan_crosses_leaves(self):
        tree = make_tree(order=4)
        for key in range(40):
            tree.insert(key, key)
        values, blocks = tree.scan(0, 39)
        assert len(values) == 40
        # The scan must touch multiple leaf blocks.
        assert len(blocks) > tree.height()


class TestInvariants:
    def test_check_invariants_after_sequential(self):
        tree = make_tree(order=4)
        for key in range(200):
            tree.insert(key, key)
        tree.check_invariants()

    def test_check_invariants_after_reverse(self):
        tree = make_tree(order=4)
        for key in reversed(range(200)):
            tree.insert(key, key)
        tree.check_invariants()

    def test_node_blocks_unique(self):
        space = DataSpace()
        tree = BTreeIndex("u", space, order=4)
        for key in range(100):
            tree.insert(key, key)
        blocks = []

        def collect(node):
            blocks.append(node.block)
            for child in node.children:
                collect(child)

        collect(tree.root)
        assert len(blocks) == len(set(blocks))
        assert space.region_blocks("index:u") >= len(blocks)


@given(st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=300),
       st.sampled_from([4, 8, 32]))
@settings(max_examples=40, deadline=None)
def test_btree_matches_dict_semantics(keys, order):
    """Property: the B+Tree agrees with a dict after arbitrary inserts,
    stays balanced and sorted."""
    tree = BTreeIndex("p", DataSpace(), order=order)
    reference = {}
    for key in keys:
        tree.insert(key, key * 3)
        reference[key] = key * 3
    tree.check_invariants()
    for key, value in reference.items():
        assert tree.lookup(key) == value
    assert tree.size == len(reference)
    assert [k for k, _ in tree.items()] == sorted(reference)


@given(st.lists(st.integers(0, 500), min_size=5, max_size=200),
       st.integers(0, 500), st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_btree_scan_matches_sorted_filter(keys, a, b):
    """Property: scan(low, high) returns exactly the dict's keys in
    [low, high], in order."""
    low, high = min(a, b), max(a, b)
    tree = BTreeIndex("s", DataSpace(), order=8)
    reference = {}
    for key in keys:
        tree.insert(key, key + 1)
        reference[key] = key + 1
    values, _ = tree.scan(low, high)
    expected = [reference[k] for k in sorted(reference)
                if low <= k <= high]
    assert values == expected


class TestDelete:
    def test_delete_existing(self):
        tree = make_tree()
        tree.insert(5, 50)
        deleted, path = tree.delete(5)
        assert deleted
        assert path
        assert tree.lookup(5) is None
        assert tree.size == 0

    def test_delete_missing(self):
        tree = make_tree()
        tree.insert(5, 50)
        deleted, _ = tree.delete(99)
        assert not deleted
        assert tree.size == 1

    def test_delete_preserves_invariants(self):
        tree = make_tree(order=4)
        for key in range(100):
            tree.insert(key, key)
        for key in range(0, 100, 3):
            assert tree.delete(key)[0]
        tree.check_invariants()
        assert tree.size == 100 - 34
        assert tree.lookup(3) is None
        assert tree.lookup(4) == 4

    def test_delete_then_reinsert(self):
        tree = make_tree()
        tree.insert(5, 50)
        tree.delete(5)
        tree.insert(5, 51)
        assert tree.lookup(5) == 51

    def test_scan_after_delete(self):
        tree = make_tree(order=4)
        for key in range(20):
            tree.insert(key, key)
        tree.delete(10)
        values, _ = tree.scan(8, 12)
        assert values == [8, 9, 11, 12]
