"""Tests for repro.cache.hierarchy (latency accounting, coherence,
NUCA placement, prefetcher interplay)."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import tiny_scale
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import PifIdealPrefetcher


def make_hier(cores=2, prefetcher=None):
    return MemoryHierarchy(tiny_scale(num_cores=cores), prefetcher)


class TestInstructionPath:
    def test_hit_latency(self):
        hier = make_hier()
        hier.fetch_instruction(0, 100)
        latency = hier.fetch_instruction(0, 100)
        assert latency == hier.l1i[0].config.hit_latency

    def test_miss_includes_l2_round_trip(self):
        hier = make_hier()
        latency = hier.fetch_instruction(0, 100)
        l2_hit = hier.l2[0].config.hit_latency
        assert latency > l2_hit  # L1 hit + NoC + L2 (+ DRAM)

    def test_l2_warm_miss_cheaper_than_cold(self):
        hier = make_hier()
        cold = hier.fetch_instruction(0, 100)  # fills L2 from DRAM
        hier.l1i[0].invalidate(100)
        warm = hier.fetch_instruction(0, 100)  # L2 hit
        assert warm < cold

    def test_phase_tag_propagates(self):
        hier = make_hier()
        hier.fetch_instruction(0, 100, tag=7)
        assert hier.l1i[0].tag_of(100) == 7

    def test_home_slice_interleaving(self):
        hier = make_hier(cores=4)
        assert hier.home_slice(0) == 0
        assert hier.home_slice(5) == 1

    def test_remote_slice_costs_more(self):
        hier = make_hier(cores=4)
        # Warm both slices at L2 level first.
        hier.fetch_instruction(0, 4)   # home slice 0 (local to core 0)
        hier.fetch_instruction(0, 6)   # home slice 2 (one hop away)
        hier.l1i[0].invalidate(4)
        hier.l1i[0].invalidate(6)
        local = hier.fetch_instruction(0, 4)
        remote = hier.fetch_instruction(0, 6)
        assert remote > local

    def test_covered_miss_charges_contention_fraction(self):
        hier = make_hier(prefetcher=PifIdealPrefetcher(2))
        latency = hier.fetch_instruction(0, 100)
        hit = hier.l1i[0].config.hit_latency
        # More than a pure hit (contention), far less than a full miss.
        assert latency > hit
        uncovered = make_hier().fetch_instruction(0, 100)
        assert latency < uncovered

    def test_prefetcher_observes_hits_and_misses(self):
        prefetcher = NextLinePrefetcher(2)
        hier = make_hier(prefetcher=prefetcher)
        hier.fetch_instruction(0, 100)
        assert prefetcher.covers(0, 101)


class TestDataPath:
    def test_read_then_read_hits(self):
        hier = make_hier()
        hier.access_data(0, 500, False)
        latency = hier.access_data(0, 500, False)
        assert latency == hier.l1d[0].config.hit_latency

    def test_write_invalidates_sharers(self):
        hier = make_hier()
        hier.access_data(0, 500, False)
        hier.access_data(1, 500, False)
        hier.access_data(0, 500, True)
        assert not hier.l1d[1].contains(500)
        assert hier.l1d[0].contains(500)

    def test_read_does_not_invalidate(self):
        hier = make_hier()
        hier.access_data(0, 500, False)
        hier.access_data(1, 500, False)
        assert hier.l1d[0].contains(500)

    def test_coherence_miss_counted_once(self):
        hier = make_hier()
        hier.access_data(0, 500, False)
        hier.access_data(1, 500, True)
        hier.access_data(0, 500, False)  # coherence miss
        hier.access_data(0, 500, False)  # plain hit
        assert hier.coherence_misses[0] == 1

    def test_capacity_miss_not_coherence(self):
        hier = make_hier()
        # Evict 500 by capacity: fill its set with conflicting blocks.
        hier.access_data(0, 500, False)
        set_size = hier.l1d[0].num_sets
        for i in range(1, 10):
            hier.access_data(0, 500 + i * set_size, False)
        hier.access_data(0, 500, False)
        assert hier.coherence_misses[0] == 0

    def test_write_back_ownership_transfer(self):
        hier = make_hier()
        hier.access_data(0, 500, True)
        hier.access_data(1, 500, True)
        hier.access_data(0, 500, True)
        # Ownership ping-pong: each write invalidates the other side.
        assert not hier.l1d[1].contains(500)

    def test_dirty_remote_read_downgrades(self):
        hier = make_hier()
        hier.access_data(0, 500, True)
        hier.access_data(1, 500, False)
        entry = hier._directory[500]
        assert entry.owner is None
        assert entry.sharers == {0, 1}


class TestStats:
    def test_snapshot_keys(self):
        hier = make_hier()
        hier.fetch_instruction(0, 1)
        hier.access_data(0, 500, True)
        snap = hier.snapshot()
        assert snap["l1i_misses"] == 1
        assert snap["l1d_misses"] == 1
        assert snap["l2_traffic"] == 2

    def test_victim_callback_install(self):
        hier = make_hier()
        seen = []
        hier.set_victim_callback(0, lambda b, t: seen.append((b, t)))
        capacity = hier.l1i[0].config.num_blocks
        for block in range(capacity + 1):
            hier.fetch_instruction(0, block, tag=3)
        assert seen and seen[0][1] == 3
