"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main, run_single


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "tpcc"
        assert args.scheduler == "strex"
        assert args.cores == 4

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "tpch"])

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheduler", "zeus"])


class TestExecution:
    def test_single_run_prints_metrics(self, capsys):
        code = main([
            "--workload", "tpcc", "--scheduler", "strex",
            "--cores", "2", "--transactions", "8", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-MPKI" in out
        assert "vs baseline" in out

    def test_baseline_run(self, capsys):
        code = main([
            "--workload", "mapreduce", "--scheduler", "base",
            "--cores", "2", "--transactions", "4", "--seed", "5",
        ])
        assert code == 0
        assert "x1.000" in capsys.readouterr().out

    def test_run_single_report(self):
        args = build_parser().parse_args([
            "--workload", "tpce", "--scheduler", "slicc",
            "--cores", "2", "--transactions", "6", "--seed", "9",
        ])
        report = run_single(args)
        assert "slicc" in report
        assert "throughput" in report

    def test_team_size_flag(self, capsys):
        code = main([
            "--scheduler", "strex", "--team-size", "4",
            "--cores", "2", "--transactions", "8", "--seed", "5",
        ])
        assert code == 0
