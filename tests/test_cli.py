"""Tests for the ``python -m repro`` command-line interface."""

import multiprocessing

import pytest

from repro.__main__ import (
    build_parser,
    build_shard_parser,
    build_sweep_parser,
    main,
    run_single,
)

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the shard orchestrator test relies on cheap fork startup")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "tpcc"
        assert args.scheduler == "strex"
        assert args.cores == 4

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "tpch"])

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheduler", "zeus"])


class TestExecution:
    def test_single_run_prints_metrics(self, capsys):
        code = main([
            "--workload", "tpcc", "--scheduler", "strex",
            "--cores", "2", "--transactions", "8", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-MPKI" in out
        assert "vs baseline" in out

    def test_baseline_run(self, capsys):
        code = main([
            "--workload", "mapreduce", "--scheduler", "base",
            "--cores", "2", "--transactions", "4", "--seed", "5",
        ])
        assert code == 0
        assert "x1.000" in capsys.readouterr().out

    def test_run_single_report(self):
        args = build_parser().parse_args([
            "--workload", "tpce", "--scheduler", "slicc",
            "--cores", "2", "--transactions", "6", "--seed", "9",
        ])
        report = run_single(args)
        assert "slicc" in report
        assert "throughput" in report

    def test_team_size_flag(self, capsys):
        code = main([
            "--scheduler", "strex", "--team-size", "4",
            "--cores", "2", "--transactions", "8", "--seed", "5",
        ])
        assert code == 0

    def test_team_size_with_wrong_scheduler_is_clean_error(self, capsys):
        code = main([
            "--workload", "tpcc", "--scheduler", "smt",
            "--team-size", "4", "--cores", "2", "--transactions", "4",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: --team-size")
        assert "smt" in captured.err

    def test_team_size_with_base_is_clean_error(self, capsys):
        # ``base`` short-circuits the second simulate() call, so the
        # CLI must validate --team-size before that shortcut.
        code = main([
            "--workload", "tpcc", "--scheduler", "base",
            "--team-size", "4", "--cores", "2", "--transactions", "4",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "base" in captured.err

    def test_core_sweep_flag(self, capsys):
        code = main([
            "--workload", "mapreduce", "--sweep",
            "--transactions", "4", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for token in ("cores", "strex", "slicc", "hybrid", "16"):
            assert token in out


class TestSweepSubcommand:
    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_sweep_parser().parse_args(["--workloads", "tpch"])

    def test_sweep_runs_and_reports_cache_stats(self, capsys, tmp_path):
        argv = [
            "sweep", "--workloads", "tpcc", "--schedulers", "base",
            "strex", "--cores", "2", "--transactions", "4",
            "--scales", "tiny", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cache hits, 2 executed" in out
        assert "I-MPKI" in out
        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cache hits, 0 executed" in out
        assert (tmp_path / "manifest.jsonl").exists()

    def test_sweep_no_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "--workloads", "mapreduce", "--schedulers", "base",
            "--cores", "2", "--transactions", "4", "--scales", "tiny",
            "--cache-dir", str(tmp_path), "--no-cache",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cache hits, 1 executed" in out
        assert not (tmp_path / "manifest.jsonl").exists()

    def test_sweep_team_sizes(self, capsys, tmp_path):
        assert main([
            "sweep", "--workloads", "tpcc", "--schedulers", "strex",
            "--team-sizes", "2", "4", "--cores", "2",
            "--transactions", "4", "--scales", "tiny",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out


class TestShardSubcommand:
    GRID = ["--workloads", "tpcc", "--schedulers", "base", "strex",
            "--cores", "1", "2", "--transactions", "4",
            "--scales", "tiny"]

    @pytest.mark.parametrize("text", ["2", "1:2", "2/2", "-1/2", "a/b"])
    def test_rejects_malformed_shard(self, text):
        with pytest.raises(SystemExit):
            build_shard_parser().parse_args(["--shard", text])

    def test_requires_a_mode(self):
        with pytest.raises(SystemExit):
            build_shard_parser().parse_args(["--shards", "2"])

    def test_manual_shard_then_merge_flow(self, capsys, tmp_path):
        """The two-terminal workflow: run each shard, merge, and the
        merged cache serves the whole sweep as hits."""
        shared = tmp_path / "shared"
        for index in range(2):
            argv = ["shard", "--shard", f"{index}/2",
                    "--cache-dir", str(shared)] + self.GRID
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert f"shard {index}/2:" in out
            assert "merge with:" in out
        roots = [str(shared / "shards" / f"{i}-of-2")
                 for i in range(2)]
        assert main(["shard", "--merge"] + roots +
                    ["--cache-dir", str(shared)]) == 0
        out = capsys.readouterr().out
        assert "merged 4 entr(ies)" in out
        # The merged shared cache now serves the whole grid.
        assert main(["sweep", "--cache-dir", str(shared)] +
                    self.GRID) == 0
        assert "4 cache hits, 0 executed" in capsys.readouterr().out

    @needs_fork
    def test_all_orchestrates_and_is_warm_on_rerun(self, capsys,
                                                   tmp_path):
        argv = ["shard", "--all", "--shards", "2", "--procs", "2",
                "--cache-dir", str(tmp_path)] + self.GRID
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cells over 2 shard(s): 0 pre-cached" in out
        assert "merged cache:" in out
        # Everything is already in the shared cache: no launches.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 pre-cached" in out
        assert "0 shard launch(es)" in out
