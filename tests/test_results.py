"""Tests for repro.sim.results.RunResult metrics."""

import pytest

from repro.sim.results import RunResult


def make_result(**overrides):
    defaults = dict(
        workload="w",
        scheduler="s",
        num_cores=4,
        cycles=1000,
        busy_cycles=4000,
        instructions=100_000,
        i_misses=500,
        d_misses=200,
        transactions=10,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestMpki:
    def test_i_mpki(self):
        assert make_result().i_mpki == 5.0

    def test_d_mpki(self):
        assert make_result().d_mpki == 2.0

    def test_zero_instructions(self):
        result = make_result(instructions=0)
        assert result.i_mpki == 0.0
        assert result.d_mpki == 0.0


class TestThroughput:
    def test_uses_mean_busy_time(self):
        result = make_result()
        # 10 txns over 4000/4 = 1000 busy cycles -> 10 txn per k-cycle.
        assert result.throughput == pytest.approx(1e6 * 10 / 1000)

    def test_zero_busy(self):
        assert make_result(busy_cycles=0).throughput == 0.0

    def test_relative_throughput(self):
        base = make_result()
        faster = make_result(busy_cycles=2000)
        assert faster.relative_throughput(base) == pytest.approx(2.0)

    def test_relative_to_zero_baseline(self):
        base = make_result(busy_cycles=0)
        assert make_result().relative_throughput(base) == 0.0

    def test_idle_tail_does_not_penalize(self):
        """Makespan (cycles) can grow without hurting the steady-state
        throughput metric, which uses busy time."""
        balanced = make_result(cycles=1000, busy_cycles=4000)
        tailed = make_result(cycles=1600, busy_cycles=4000)
        assert tailed.throughput == balanced.throughput
        assert tailed.cycles > balanced.cycles


class TestLatency:
    def test_mean_latency(self):
        result = make_result(latencies=[100, 300])
        assert result.mean_latency == 200

    def test_mean_latency_empty(self):
        assert make_result().mean_latency == 0.0


class TestSummary:
    def test_summary_contains_fields(self):
        text = make_result().summary()
        for token in ("w", "s", "cores=4", "I-MPKI"):
            assert token in text


class TestSerialization:
    def test_roundtrip(self):
        result = make_result(latencies=[100, 300],
                             extra={"prefetch_coverage": 0.5})
        assert RunResult.from_dict(result.to_dict()) == result

    def test_roundtrip_through_json(self):
        import json

        result = make_result(latencies=[1, 2, 3])
        blob = json.dumps(result.to_dict())
        assert RunResult.from_dict(json.loads(blob)) == result

    def test_from_dict_rejects_unknown_keys(self):
        data = make_result().to_dict()
        data["joules"] = 9.0
        with pytest.raises(ValueError, match="unknown RunResult"):
            RunResult.from_dict(data)
