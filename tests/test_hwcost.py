"""Tests for the Table 4 hardware cost model."""

from repro.config import paper_scale
from repro.core.hwcost import FieldWidths, HardwareCostModel
from repro.prefetch.pif import PifIdealPrefetcher


def paper_model():
    """The exact Table 4 configuration: 32 KiB L1-I (512 blocks),
    20-entry thread queue, 30-entry team table."""
    return HardwareCostModel(paper_scale(), max_team_size=20,
                             formation_window=30)


class TestTable4:
    def test_thread_queue_bits(self):
        # 20 entries x (12-bit ID + 48-bit pointer + 1-bit lead) = 1220.
        assert paper_model().thread_queue_bits() == 20 * 61

    def test_phase_counter_bits(self):
        assert paper_model().phase_counter_bits() == 8

    def test_pidt_bits(self):
        # 512 cache blocks x 8 bits.
        assert paper_model().pidt_bits() == 4096

    def test_thread_scheduler_total_matches_paper(self):
        # Table 4: 5324 bits (665.5 bytes).
        assert paper_model().thread_scheduler_bits() == 5324

    def test_team_table_matches_paper(self):
        # Table 4: 30 x (12 + 32 + 4 + 4 + 8) = 1800 bits (225 bytes).
        assert paper_model().team_table_bits() == 1800

    def test_strex_total_bytes(self):
        model = paper_model()
        assert model.strex_total_bytes() == (5324 + 1800) / 8.0

    def test_slicc_monitor_matches_paper(self):
        # Table 4: 60 + 100 + 2048 = 2208 bits (276 bytes).
        assert paper_model().slicc_monitor_bits() == 2208

    def test_hybrid_total_matches_paper(self):
        # 890.5 (STREX) + 276 (SLICC monitor) = 1166.5 bytes.
        assert paper_model().hybrid_total_bytes() == 1166.5

    def test_under_two_percent_of_pif(self):
        # Abstract: "less than 2% of the storage required by PIF".
        model = paper_model()
        assert model.fraction_of_pif() < 0.025
        assert PifIdealPrefetcher.STORAGE_BYTES_PER_CORE == 40 * 1024

    def test_breakdown_keys(self):
        breakdown = paper_model().breakdown()
        assert breakdown["strex_total_bits"] == 7124
        assert breakdown["hybrid_total_bits"] == 7124 + 2208

    def test_scales_with_cache_size(self):
        from repro.config import tiny_scale
        small = HardwareCostModel(tiny_scale())
        assert small.pidt_bits() == 32 * 8

    def test_custom_widths(self):
        widths = FieldWidths(phase_tag_bits=4)
        model = HardwareCostModel(paper_scale(), widths=widths)
        assert model.pidt_bits() == 512 * 4
