"""Tests for the buffer pool manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.bufferpool import BufferPool, BufferPoolError
from repro.db.storage import DataSpace


def make_pool(frames=4, buckets=4):
    return BufferPool(DataSpace(), num_frames=frames,
                      num_buckets=buckets)


class TestFixUnfix:
    def test_first_fix_misses(self):
        pool = make_pool()
        _, hit = pool.fix(100)
        assert not hit
        assert pool.is_resident(100)
        assert pool.pin_count(100) == 1

    def test_second_fix_hits(self):
        pool = make_pool()
        pool.fix(100)
        _, hit = pool.fix(100)
        assert hit
        assert pool.pin_count(100) == 2

    def test_unfix_decrements(self):
        pool = make_pool()
        pool.fix(100)
        pool.fix(100)
        pool.unfix(100)
        assert pool.pin_count(100) == 1

    def test_unfix_nonresident_raises(self):
        with pytest.raises(BufferPoolError):
            make_pool().unfix(100)

    def test_unfix_unpinned_raises(self):
        pool = make_pool()
        pool.fix(100)
        pool.unfix(100)
        with pytest.raises(BufferPoolError):
            pool.unfix(100)

    def test_bucket_block_stable(self):
        pool = make_pool()
        assert pool.bucket_block(7) == pool.bucket_block(7)

    def test_hit_rate(self):
        pool = make_pool()
        pool.fix(1)
        pool.fix(1)
        assert pool.hit_rate == 0.5


class TestReplacement:
    def test_evicts_when_full(self):
        pool = make_pool(frames=2)
        for page in (1, 2):
            pool.fix(page)
            pool.unfix(page)
        pool.fix(3)
        assert pool.resident_pages == 2
        assert pool.evictions == 1
        assert pool.is_resident(3)

    def test_pinned_pages_never_evicted(self):
        pool = make_pool(frames=2)
        pool.fix(1)  # stays pinned
        pool.fix(2)
        pool.unfix(2)
        pool.fix(3)  # must evict page 2, not pinned page 1
        assert pool.is_resident(1)
        assert not pool.is_resident(2)

    def test_all_pinned_raises(self):
        pool = make_pool(frames=2)
        pool.fix(1)
        pool.fix(2)
        with pytest.raises(BufferPoolError, match="all frames pinned"):
            pool.fix(3)

    def test_second_chance(self):
        pool = make_pool(frames=2)
        pool.fix(1)
        pool.unfix(1)
        pool.fix(2)
        pool.unfix(2)
        # First eviction sweep clears both reference bits and takes the
        # frame after the hand (page 1).
        pool.fix(3)
        pool.unfix(3)
        assert not pool.is_resident(1)
        # Page 3's bit is set (just filled), page 2's was cleared by the
        # sweep: the next eviction gives 3 a second chance and takes 2.
        pool.fix(4)
        pool.unfix(4)
        assert pool.is_resident(3)
        assert not pool.is_resident(2)


@given(st.lists(st.tuples(st.integers(0, 20), st.booleans()),
                min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_pool_invariants(ops):
    """Properties: resident pages never exceed frames; fix/unfix pairs
    keep pin counts consistent; hits + misses == fixes."""
    pool = BufferPool(DataSpace(), num_frames=8, num_buckets=4)
    for page, dirty in ops:
        pool.fix(page, dirty=dirty)
        pool.unfix(page)
        assert pool.resident_pages <= 8
        assert pool.pin_count(page) == 0
    assert pool.pool_hits + pool.pool_misses == pool.fixes
