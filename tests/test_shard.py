"""Cross-process sweep sharding: partition semantics, the
differential guarantee (sharded-and-merged == unsharded, to the byte),
and merge conflict detection.

The differential tests are the contract the whole feature rests on:
a sweep split into N hash-range shards, run in any order, and merged
back must produce a cache *byte-identical* to a single unsharded run,
with an equivalent manifest (every cell executed exactly once,
somewhere).  Everything here runs shards in-process via
:func:`repro.exp.run_shard`; the subprocess orchestrator (and its
crash recovery) is exercised in ``tests/test_exp_faults.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exp import (
    Manifest,
    ResultCache,
    Runner,
    RunSpec,
    ShardMergeConflict,
    ShardSpec,
    SweepSpec,
    execute_spec,
    merge_caches,
    partition,
    run_shard,
    shard_root,
    spec_key,
)

N = 3


def small_sweep() -> SweepSpec:
    return SweepSpec(
        workloads=("tpcc",),
        schedulers=("base", "strex"),
        cores=(1, 2),
        seeds=(7, 8),
        scales=("tiny",),
        transactions=4,
    )


def cache_blobs(root) -> dict:
    """key -> entry bytes for every entry under a cache root."""
    cache = ResultCache(root)
    return {key: cache.read_bytes(key) for key in cache.keys()}


@pytest.fixture(scope="module")
def unsharded(tmp_path_factory):
    """One unsharded reference run: (specs, keys, results, cache root)."""
    root = tmp_path_factory.mktemp("unsharded")
    specs = small_sweep().expand()
    runner = Runner(cache=ResultCache(root))
    results = runner.run(specs)
    return specs, [spec_key(s) for s in specs], results, root


class TestShardSpec:
    def test_parse_round_trips(self):
        shard = ShardSpec.parse("1/3")
        assert (shard.index, shard.count) == (1, 3)
        assert str(shard) == "1/3"
        assert ShardSpec.parse(str(shard)) == shard

    @pytest.mark.parametrize("text", ["", "3", "1:3", "3/3", "-1/3",
                                      "a/b", "1/0", "1/"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_identity_shard_selects_everything(self):
        assert ShardSpec(0, 1).selects("ff")
        assert ShardSpec.assign("ff", 1) == 0

    def test_selects_matches_assign(self):
        key = "ab" * 32
        owners = [i for i in range(5) if ShardSpec(i, 5).selects(key)]
        assert owners == [ShardSpec.assign(key, 5)]


class TestPartition:
    def test_partition_covers_every_spec_once(self, unsharded):
        specs, keys, _, _ = unsharded
        got_keys, by_shard = partition(specs, N)
        assert got_keys == keys
        indices = sorted(i for owned in by_shard.values()
                         for i in owned)
        assert indices == list(range(len(specs)))

    def test_runner_shard_skips_unowned_misses(self, tmp_path,
                                               unsharded):
        specs, keys, _, _ = unsharded
        shard = ShardSpec(0, N)
        runner = Runner(cache=ResultCache(tmp_path), shard=shard)
        results = runner.run(specs)
        for key, result in zip(keys, results):
            assert (result is not None) == shard.selects(key)
        assert runner.skipped == \
            sum(1 for key in keys if not shard.selects(key))

    def test_runner_shard_still_serves_cached_cells(self, tmp_path,
                                                    unsharded):
        """Sharding partitions computation, not reads: against a full
        cache, a sharded runner returns the whole grid."""
        specs, _, results, root = unsharded
        runner = Runner(cache=ResultCache(root), shard=ShardSpec(0, N),
                        manifest=Manifest(tmp_path / "hits.jsonl"))
        assert runner.run(specs) == results
        assert runner.skipped == 0
        assert runner.misses == 0


class TestDifferential:
    """N=1, N=3 merged, and N=3 in shuffled order are byte-identical."""

    def run_shards(self, specs, tmp_path, order):
        roots = {}
        for index in order:
            shard = ShardSpec(index, N)
            roots[index] = tmp_path / f"private-{index}"
            run_shard(specs, shard, roots[index])
        return roots

    def merge_all(self, tmp_path, roots, order, name):
        dest = tmp_path / name
        merge_caches(dest, [roots[i] for i in order])
        return dest

    def test_merged_shards_equal_unsharded_run(self, tmp_path,
                                               unsharded):
        specs, keys, results, reference = unsharded
        roots = self.run_shards(specs, tmp_path, order=range(N))
        merged = self.merge_all(tmp_path, roots, range(N), "merged")

        reference_blobs = cache_blobs(reference)
        assert set(reference_blobs) == set(keys)
        assert cache_blobs(merged) == reference_blobs

        # The identity shard reproduces the same bytes too.
        solo = tmp_path / "solo"
        run_shard(specs, ShardSpec(0, 1), solo)
        assert cache_blobs(solo) == reference_blobs

    def test_shuffled_shard_and_merge_order(self, tmp_path, unsharded):
        specs, _, _, reference = unsharded
        roots = self.run_shards(specs, tmp_path, order=[2, 0, 1])
        merged = self.merge_all(tmp_path, roots, [1, 2, 0], "merged")
        assert cache_blobs(merged) == cache_blobs(reference)

    def test_merged_results_equal_unsharded_results(self, tmp_path,
                                                    unsharded):
        specs, _, results, _ = unsharded
        roots = self.run_shards(specs, tmp_path, order=range(N))
        merged = self.merge_all(tmp_path, roots, range(N), "merged")
        served = Runner(cache=ResultCache(merged)).run(specs)
        assert served == results

    def test_manifests_are_equivalent(self, tmp_path, unsharded):
        """Across all shard manifests: every cell executed exactly
        once, with the same spec payloads as the unsharded manifest,
        each row labeled with its shard."""
        specs, keys, _, reference = unsharded
        roots = self.run_shards(specs, tmp_path, order=range(N))
        sharded_rows = []
        for index, root in roots.items():
            rows = Manifest(root / "manifest.jsonl").read()
            assert all(row.shard == f"{index}/{N}" for row in rows)
            sharded_rows += rows
        reference_rows = [
            row for row in
            Manifest(reference / "manifest.jsonl").read()
            if not row.hit]
        assert sorted(row.key for row in sharded_rows) == \
            sorted(row.key for row in reference_rows) == sorted(keys)
        assert all(not row.hit for row in sharded_rows)
        by_key = {row.key: row.spec for row in sharded_rows}
        for row in reference_rows:
            assert by_key[row.key] == row.spec


class TestMergeConflicts:
    def seeded_shard_dirs(self, tmp_path):
        """Two shard dirs holding the same key; the second's payload is
        corrupted to a *valid but different* entry."""
        spec = RunSpec(workload="tpcc", cores=1, transactions=2,
                       seed=3, scale="tiny")
        key = spec_key(spec)
        dir_a, dir_b = tmp_path / "shard-a", tmp_path / "shard-b"
        ResultCache(dir_a).put(key, execute_spec(spec), spec)
        entry = json.loads(ResultCache(dir_a).read_bytes(key))
        entry["result"]["cycles"] += 1
        path_b = ResultCache(dir_b).path_for(key)
        path_b.parent.mkdir(parents=True)
        path_b.write_text(json.dumps(entry, sort_keys=True))
        return key, dir_a, dir_b

    def test_conflict_is_a_hard_error_citing_both_shards(self,
                                                         tmp_path):
        key, dir_a, dir_b = self.seeded_shard_dirs(tmp_path)
        dest = tmp_path / "merged"
        with pytest.raises(ShardMergeConflict) as excinfo:
            merge_caches(dest, [dir_a, dir_b])
        message = str(excinfo.value)
        assert key in message
        assert str(ResultCache(dir_a).path_for(key)) in message
        assert str(ResultCache(dir_b).path_for(key)) in message

    def test_no_silent_last_writer_wins(self, tmp_path):
        """The conflicting copy must not replace the merged one."""
        key, dir_a, dir_b = self.seeded_shard_dirs(tmp_path)
        dest = tmp_path / "merged"
        with pytest.raises(ShardMergeConflict):
            merge_caches(dest, [dir_a, dir_b])
        assert ResultCache(dest).read_bytes(key) == \
            ResultCache(dir_a).read_bytes(key)

    def test_conflict_against_preexisting_dest_entry(self, tmp_path):
        key, dir_a, dir_b = self.seeded_shard_dirs(tmp_path)
        dest = tmp_path / "merged"
        merge_caches(dest, [dir_a])
        with pytest.raises(ShardMergeConflict) as excinfo:
            merge_caches(dest, [dir_b])
        assert str(ResultCache(dest).path_for(key)) in \
            str(excinfo.value)

    def test_identical_copies_merge_cleanly(self, tmp_path):
        key, dir_a, _ = self.seeded_shard_dirs(tmp_path)
        dest = tmp_path / "merged"
        report = merge_caches(dest, [dir_a, dir_a])
        assert (report.added, report.identical) == (1, 1)
        assert ResultCache(dest).read_bytes(key) == \
            ResultCache(dir_a).read_bytes(key)

    def test_torn_source_entry_is_skipped_not_merged(self, tmp_path):
        key, dir_a, _ = self.seeded_shard_dirs(tmp_path)
        torn = tmp_path / "torn"
        path = ResultCache(torn).path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(ResultCache(dir_a).read_bytes(key)[:30])
        dest = tmp_path / "merged"
        report = merge_caches(dest, [torn, dir_a])
        assert (report.added, report.corrupt) == (1, 1)
        assert ResultCache(dest).read_bytes(key) == \
            ResultCache(dir_a).read_bytes(key)

    def test_torn_dest_entry_is_healed_from_shard(self, tmp_path):
        """A truncated *destination* entry (a merge killed mid-write)
        is a local miss: the shard's valid copy replaces it instead
        of raising a conflict."""
        key, dir_a, _ = self.seeded_shard_dirs(tmp_path)
        dest = tmp_path / "merged"
        blob = ResultCache(dir_a).read_bytes(key)
        dest_path = ResultCache(dest).path_for(key)
        dest_path.parent.mkdir(parents=True)
        dest_path.write_bytes(blob[:30])
        report = merge_caches(dest, [dir_a])
        assert (report.added, report.corrupt) == (1, 0)
        assert ResultCache(dest).read_bytes(key) == blob

    def test_wrong_schema_source_entry_counts_corrupt(self,
                                                      tmp_path):
        """Valid JSON that is not a current-schema entry (a schema
        bump left behind by an old shard) is corrupt, not mergeable —
        and never a conflict against the current-schema copy."""
        key, dir_a, _ = self.seeded_shard_dirs(tmp_path)
        entry = json.loads(ResultCache(dir_a).read_bytes(key))
        entry["schema"] = -1
        stale = tmp_path / "stale"
        path = ResultCache(stale).path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(entry, sort_keys=True))
        dest = tmp_path / "merged"
        report = merge_caches(dest, [stale, dir_a])
        assert (report.added, report.corrupt) == (1, 1)
        assert ResultCache(dest).read_bytes(key) == \
            ResultCache(dir_a).read_bytes(key)

    def test_spec_spelling_difference_is_not_a_conflict(self,
                                                        tmp_path):
        """Two specs can address one key (a default value spelled
        out); only result content decides a conflict."""
        key, dir_a, _ = self.seeded_shard_dirs(tmp_path)
        entry = json.loads(ResultCache(dir_a).read_bytes(key))
        entry["spec"]["team_size"] = None  # same key, other spelling
        respelled = tmp_path / "respelled"
        path = ResultCache(respelled).path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(entry, sort_keys=True))
        dest = tmp_path / "merged"
        report = merge_caches(dest, [dir_a, respelled])
        assert (report.added, report.identical) == (1, 1)

    def test_put_bytes_rejects_foreign_blobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put_bytes("0" * 64, b'{"schema": 0}')
        with pytest.raises(ValueError):
            cache.put_bytes("0" * 64, b'not json')


class TestMergeEdgeCases:
    """Degenerate shard shapes the orchestrator produces routinely:
    a shard killed before its first write (empty or missing root) and
    a shard whose hash range happens to own zero cells of the grid.
    All must merge as clean no-ops, never as errors."""

    def test_empty_shard_directory_is_a_clean_noop(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        report = merge_caches(tmp_path / "merged", [empty])
        assert (report.sources, report.added) == (1, 0)
        assert len(ResultCache(tmp_path / "merged")) == 0

    def test_missing_shard_root_is_a_clean_noop(self, tmp_path):
        report = merge_caches(tmp_path / "merged",
                              [tmp_path / "never-created"])
        assert (report.sources, report.added) == (1, 0)

    def test_empty_sources_mixed_with_real_ones(self, tmp_path):
        spec = RunSpec(workload="tpcc", scheduler="base", cores=1,
                       transactions=4, seed=7, scale="tiny")
        real = tmp_path / "real"
        ResultCache(real).put(spec_key(spec), execute_spec(spec), spec)
        empty = tmp_path / "empty"
        empty.mkdir()
        report = merge_caches(
            tmp_path / "merged",
            [empty, real, tmp_path / "missing"])
        assert (report.sources, report.added) == (3, 1)
        assert ResultCache(tmp_path / "merged").read_bytes(
            spec_key(spec)) == ResultCache(real).read_bytes(
            spec_key(spec))

    def test_shard_owning_zero_cells_merges_cleanly(self, tmp_path):
        """A 1-cell sweep split N ways leaves N-1 shards with nothing
        to do; their (manifest-only) roots must still merge."""
        spec = RunSpec(workload="tpcc", scheduler="base", cores=1,
                       transactions=4, seed=7, scale="tiny")
        _, assignment = partition([spec], N)
        idle_index = next(i for i in range(N) if not assignment[i])
        shard = ShardSpec(index=idle_index, count=N)
        root = tmp_path / "idle"
        run = run_shard([spec], shard, root)
        assert run.selected == 0
        assert run.results == [None]
        report = merge_caches(tmp_path / "merged", [root])
        assert report.added == 0
        assert len(ResultCache(tmp_path / "merged")) == 0


class TestCrossProcessDeterminism:
    def test_results_do_not_depend_on_hash_randomization(self,
                                                         tmp_path):
        """Shards on different machines share nothing but code, so a
        cell's bytes must not depend on per-process state — notably
        PYTHONHASHSEED, which randomizes ``hash(str)``.  (Regression:
        the lock manager once bucketed by ``hash((name, key))``,
        making data-block streams differ across processes and merges
        conflict spuriously.)"""
        program = (
            "from repro.exp import ResultCache, RunSpec, "
            "execute_spec, spec_key\n"
            "import sys\n"
            "spec = RunSpec(workload='tpce', scheduler='slicc', "
            "cores=4, transactions=6, seed=3, scale='tiny')\n"
            "ResultCache(sys.argv[1]).put(spec_key(spec), "
            "execute_spec(spec), spec)\n"
        )
        blobs = []
        for hash_seed in ("1", "2"):
            root = tmp_path / f"seed-{hash_seed}"
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            subprocess.run([sys.executable, "-c", program, str(root)],
                           check=True, env=env)
            blobs.append(cache_blobs(root))
        assert blobs[0] == blobs[1]
        assert len(blobs[0]) == 1


class TestShardRootLayout:
    def test_private_roots_are_invisible_to_the_shared_cache(
            self, tmp_path):
        """Shard dirs nest under <cache>/shards/ one level too deep
        for the shared cache's ``<hex2>/<key>.json`` glob."""
        spec = RunSpec(workload="tpcc", cores=1, transactions=2,
                       seed=3, scale="tiny")
        shard = ShardSpec(0, 1)
        root = shard_root(tmp_path, shard)
        assert root == tmp_path / "shards" / "0-of-1"
        run_shard([spec], shard, root)
        assert ResultCache(tmp_path).keys() == []
        assert ResultCache(root).keys() == [spec_key(spec)]
