"""Tests for the repro.audit layer: spec identity, metric vectors,
result diffing (``repro diff``), pinned baselines (``repro baseline``),
the reference-kernel diff, and the kernel perf gate.

The contract under test is the one DESIGN.md decision 14 records:
cells align by *spec identity* (the spec's own fields, never the code
fingerprint), and comparisons run over *metric vectors* (never raw
cache bytes), so a fingerprint-only change stays green while any
change that moves a metric is named cell by cell.
"""

import json

import pytest

import repro.exp.cache as cache_mod
import repro.exp.runner as runner_mod
from repro.__main__ import main
from repro.exp import (
    Baseline,
    BaselineError,
    Cell,
    DiffReport,
    Manifest,
    ResultCache,
    Runner,
    RunSpec,
    SweepSpec,
    Tolerance,
    audit_diff,
    check_baseline,
    diff_cells,
    diff_manifests,
    execute_spec,
    manifest_cells,
    metric_vector,
    pin_baseline,
    reference_diff,
    snapshot_cells,
    spec_identity,
    spec_key,
    update_baseline,
)
from repro.perf import check_regression


def tiny_spec(**overrides) -> RunSpec:
    defaults = dict(workload="tpcc", scheduler="base", cores=2,
                    transactions=4, seed=7, scale="tiny")
    defaults.update(overrides)
    return RunSpec(**defaults)


def tiny_sweep(**overrides) -> SweepSpec:
    defaults = dict(workloads=("tpcc",), schedulers=("base", "strex"),
                    cores=(2,), seeds=(7,), scales=("tiny",),
                    transactions=4)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def run_into(root) -> list:
    """Run the tiny sweep into a cache + manifest rooted at ``root``."""
    runner = Runner(cache=ResultCache(root),
                    manifest=Manifest(root / "manifest.jsonl"))
    return runner.run(tiny_sweep())


def perturb_entry(root, key: str, metric: str = "cycles",
                  bump: float = 100) -> None:
    """Hand-mutate one cached result, simulating a simulator change."""
    cache = ResultCache(root)
    path = cache.path_for(key)
    payload = json.loads(path.read_text())
    payload["result"][metric] += bump
    path.write_text(json.dumps(payload, sort_keys=True))


class TestSpecIdentity:
    def test_stable_and_deterministic(self):
        assert spec_identity(tiny_spec()) == spec_identity(tiny_spec())
        assert len(spec_identity(tiny_spec())) == 64

    def test_differs_across_specs(self):
        assert spec_identity(tiny_spec()) != \
            spec_identity(tiny_spec(scheduler="strex"))
        assert spec_identity(tiny_spec()) != \
            spec_identity(tiny_spec(seed=8))

    def test_ignores_code_fingerprint(self, monkeypatch):
        spec = tiny_spec()
        before_key = spec_key(spec)
        before_identity = spec_identity(spec)
        monkeypatch.setattr(cache_mod, "code_fingerprint",
                            lambda: "f" * 64)
        assert spec_key(spec) != before_key
        assert spec_identity(spec) == before_identity

    def test_mix_seed_normalized_to_effective_value(self):
        implicit = tiny_spec(mix_seed=None)
        explicit = tiny_spec(mix_seed=implicit.effective_mix_seed())
        assert spec_identity(implicit) == spec_identity(explicit)


class TestMetricVector:
    def test_run_result_counters_and_derived(self):
        result = execute_spec(tiny_spec())
        metrics = metric_vector(result)
        for name in ("cycles", "i_misses", "i_mpki", "d_mpki",
                     "throughput", "mean_latency",
                     "extra.l1i_evictions"):
            assert name in metrics
        assert metrics["i_mpki"] == result.i_mpki
        # Non-scalar fields never leak into the vector.
        assert "latencies" not in metrics
        assert "workload" not in metrics

    def test_overlap_result_bands(self):
        result = execute_spec(tiny_spec(
            mode="overlap", txn_type="NewOrder", transactions=3))
        metrics = metric_vector(result)
        assert metrics["intervals"] == len(result.intervals)
        bands = [name for name in metrics if name.startswith("band.")]
        assert bands
        assert all(0.0 <= metrics[name] <= 1.0 for name in bands)

    def test_footprint_result_units(self):
        result = execute_spec(tiny_spec(mode="fptable", transactions=2))
        metrics = metric_vector(result)
        assert metrics["units.NewOrder"] == result.units("NewOrder")
        assert metrics["median_units"] == result.median_units()

    def test_unregistered_type_raises(self):
        with pytest.raises(TypeError, match="no metric extractor"):
            metric_vector(object())


class TestTolerance:
    def test_default_is_exact(self):
        tol = Tolerance()
        assert tol.within(1.0, 1.0)
        assert not tol.within(1.0, 1.0000001)

    def test_abs_and_rel_combine_as_max(self):
        tol = Tolerance(abs_tol=0.5, rel_tol=0.01)
        assert tol.within(10.0, 10.4)     # abs wins
        assert tol.within(100.0, 100.9)   # rel wins
        assert not tol.within(100.0, 101.1)

    def test_missing_side_is_never_within(self):
        assert not Tolerance(abs_tol=1e9).within(None, 1.0)
        assert not Tolerance(abs_tol=1e9).within(1.0, None)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Tolerance(abs_tol=-1.0)


class TestDiffCells:
    def cells(self, **metric_overrides):
        spec = tiny_spec()
        result = execute_spec(spec)
        cell = Cell.from_result(spec, result)
        if metric_overrides:
            metrics = dict(cell.metrics)
            metrics.update(metric_overrides)
            cell = Cell(identity=cell.identity, spec=cell.spec,
                        label=cell.label, result_type=cell.result_type,
                        metrics=metrics)
        return {cell.identity: cell}

    def test_identical_cells_pass(self):
        report = diff_cells(self.cells(), self.cells())
        assert report.counts["identical"] == 1
        assert report.ok(strict=True)
        assert report.exit_code() == 0

    def test_changed_cell_names_the_metric(self):
        a = self.cells()
        b = self.cells(cycles=next(iter(a.values())).metrics["cycles"]
                       + 100)
        report = diff_cells(a, b)
        assert report.counts["changed"] == 1
        assert not report.ok()
        assert report.exit_code() == 1
        (cell,) = report.by_status("changed")
        assert [d.metric for d in cell.moved] == ["cycles"]
        assert cell.moved[0].delta == 100
        assert "cycles" in report.format_text()
        assert "cycles" in report.format_markdown()

    def test_tolerance_absorbs_small_drift(self):
        a = self.cells()
        b = self.cells(cycles=next(iter(a.values())).metrics["cycles"]
                       + 1)
        assert diff_cells(a, b).counts["changed"] == 1
        loose = diff_cells(a, b, Tolerance(abs_tol=2.0))
        assert loose.counts["identical"] == 1

    def test_added_and_removed_fail_only_under_strict(self):
        a = self.cells()
        report = diff_cells(a, {})
        assert report.counts["removed"] == 1
        assert report.ok(strict=False)
        assert not report.ok(strict=True)
        report = diff_cells({}, a)
        assert report.counts["added"] == 1
        assert report.exit_code(strict=True) == 1

    def test_unloadable_result_is_missing_not_equal(self):
        a = self.cells()
        identity = next(iter(a))
        hole = {identity: Cell(identity=identity,
                               spec=a[identity].spec,
                               label=a[identity].label)}
        report = diff_cells(a, hole)
        assert report.counts["missing"] == 1
        assert not report.ok()

    def test_result_type_change_is_a_change(self):
        a = self.cells()
        identity = next(iter(a))
        swapped = {identity: Cell(
            identity=identity, spec=a[identity].spec,
            label=a[identity].label, result_type="OverlapResult",
            metrics={"band.full": 1.0})}
        report = diff_cells(a, swapped)
        (cell,) = report.by_status("changed")
        assert "result type changed" in cell.note

    def test_json_form_omits_identical_cells(self):
        a = self.cells()
        data = diff_cells(a, a).to_dict()
        assert data["ok"] is True
        assert data["cells"] == []
        assert data["counts"]["identical"] == 1


class TestManifestDiff:
    def test_identical_runs_diff_clean(self, tmp_path):
        run_into(tmp_path / "a")
        run_into(tmp_path / "b")
        report = diff_manifests(tmp_path / "a" / "manifest.jsonl",
                                tmp_path / "b" / "manifest.jsonl")
        assert report.counts == {"changed": 0, "missing": 0,
                                 "removed": 0, "added": 0,
                                 "identical": 2}
        assert report.exit_code(strict=True) == 0

    def test_perturbed_entry_is_flagged_with_its_metrics(self, tmp_path):
        run_into(tmp_path / "a")
        run_into(tmp_path / "b")
        specs = tiny_sweep().expand()
        perturb_entry(tmp_path / "b", spec_key(specs[0]))
        report = diff_manifests(tmp_path / "a" / "manifest.jsonl",
                                tmp_path / "b" / "manifest.jsonl")
        assert report.counts["changed"] == 1
        assert report.counts["identical"] == 1
        (cell,) = report.by_status("changed")
        assert cell.label == specs[0].describe()
        moved = {d.metric for d in cell.moved}
        assert "cycles" in moved
        within = {d.metric for d in cell.deltas} - moved
        # The untouched metrics are reported but flagged as within.
        assert "i_mpki" in within

    def test_evicted_cache_entry_reports_missing(self, tmp_path):
        run_into(tmp_path / "a")
        run_into(tmp_path / "b")
        key = spec_key(tiny_sweep().expand()[0])
        ResultCache(tmp_path / "b").path_for(key).unlink()
        report = diff_manifests(tmp_path / "a" / "manifest.jsonl",
                                tmp_path / "b" / "manifest.jsonl")
        assert report.counts["missing"] == 1
        assert not report.ok()

    def test_grid_growth_is_added_not_changed(self, tmp_path):
        run_into(tmp_path / "a")
        runner = Runner(cache=ResultCache(tmp_path / "b"),
                        manifest=Manifest(tmp_path / "b" /
                                          "manifest.jsonl"))
        runner.run(tiny_sweep(schedulers=("base", "strex", "slicc")))
        report = diff_manifests(tmp_path / "a" / "manifest.jsonl",
                                tmp_path / "b" / "manifest.jsonl")
        assert report.counts["added"] == 1
        assert report.counts["identical"] == 2
        assert report.ok(strict=False)
        assert not report.ok(strict=True)

    def test_audit_manifest_resolves_cache_one_level_up(self, tmp_path):
        root = tmp_path / "cache"
        specs = tiny_sweep().expand()
        runner = Runner(cache=ResultCache(root))
        runner.run(specs)
        audit = Manifest(root / "audit" / "fig5.jsonl")
        for entry in runner.entries:
            audit.record(entry)
        cells = manifest_cells(root / "audit" / "fig5.jsonl")
        assert len(cells) == len(specs)
        assert all(cell.metrics is not None for cell in cells.values())

    def test_duplicate_rows_dedupe_last_wins(self, tmp_path):
        run_into(tmp_path / "a")
        run_into(tmp_path / "a")  # second pass re-records every row
        cells = manifest_cells(tmp_path / "a" / "manifest.jsonl")
        assert len(cells) == 2

    def test_unparseable_spec_row_is_skipped_with_warning(self, tmp_path):
        run_into(tmp_path / "a")
        manifest = Manifest(tmp_path / "a" / "manifest.jsonl")
        manifest.record_raw(json.dumps({
            "key": "0" * 64, "spec": {"workload": "dropped-workload"},
            "hit": False, "wall_s": 0.0}))
        with pytest.warns(RuntimeWarning, match="no longer parses"):
            cells = manifest_cells(manifest)
        assert len(cells) == 2


class TestBaseline:
    def pin(self, tmp_path, **sweep_overrides):
        specs = tiny_sweep(**sweep_overrides).expand()
        runner = Runner(cache=ResultCache(tmp_path / "cache"))
        path = tmp_path / "baseline.json"
        return specs, pin_baseline(specs, path, runner=runner,
                                   name="test"), path

    def test_pin_save_load_round_trip(self, tmp_path):
        specs, baseline, path = self.pin(tmp_path)
        loaded = Baseline.load(path)
        assert loaded.name == "test"
        assert set(loaded.cells) == set(baseline.cells)
        assert [s.to_dict() for s in loaded.specs()] == \
            [s.to_dict() for s in baseline.specs()]

    def test_check_is_green_on_unchanged_code(self, tmp_path):
        _, _, path = self.pin(tmp_path)
        report = check_baseline(
            path, runner=Runner(cache=ResultCache(tmp_path / "cache")))
        assert report.ok(strict=True)

    def test_check_flags_metric_drift(self, tmp_path):
        _, _, path = self.pin(tmp_path)
        data = json.loads(path.read_text())
        data["cells"][0]["metrics"]["cycles"] += 50
        path.write_text(json.dumps(data))
        report = check_baseline(
            path, runner=Runner(cache=ResultCache(tmp_path / "cache")))
        assert not report.ok()
        (cell,) = report.by_status("changed")
        assert "cycles" in {d.metric for d in cell.moved}

    def test_fingerprint_only_change_stays_green(self, tmp_path,
                                                 monkeypatch):
        _, _, path = self.pin(tmp_path)
        # A refactor re-keys the cache but moves no metric: the pinned
        # specs re-execute under the new fingerprint and still match.
        monkeypatch.setattr(cache_mod, "code_fingerprint",
                            lambda: "e" * 64)
        report = check_baseline(
            path, runner=Runner(cache=ResultCache(tmp_path / "cache")))
        assert report.ok(strict=True)

    def test_update_overwrites_after_intentional_change(self, tmp_path):
        _, _, path = self.pin(tmp_path)
        data = json.loads(path.read_text())
        data["cells"][0]["metrics"]["cycles"] += 50
        path.write_text(json.dumps(data))
        updated = update_baseline(
            path, runner=Runner(cache=ResultCache(tmp_path / "cache")))
        assert updated.name == "test"
        report = check_baseline(
            path, runner=Runner(cache=ResultCache(tmp_path / "cache")))
        assert report.ok(strict=True)

    def test_load_rejects_wrong_schema(self, tmp_path):
        _, _, path = self.pin(tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(BaselineError, match="schema"):
            Baseline.load(path)

    def test_load_rejects_tampered_spec(self, tmp_path):
        _, _, path = self.pin(tmp_path)
        data = json.loads(path.read_text())
        data["cells"][0]["spec"]["seed"] = 12345
        path.write_text(json.dumps(data))
        with pytest.raises(BaselineError, match="hand-edited"):
            Baseline.load(path)

    def test_load_rejects_empty_and_invalid(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({
            "schema": 1, "identity_schema": 1, "cells": []}))
        with pytest.raises(BaselineError, match="no cells"):
            Baseline.load(path)
        path.write_text("{torn")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(path)

    def test_snapshot_rejects_holes(self):
        with pytest.raises(ValueError, match="no result"):
            snapshot_cells([tiny_spec()], [None])


class TestReferenceDiff:
    def test_fast_and_reference_agree(self):
        report = reference_diff(tiny_sweep().expand())
        assert report.counts["identical"] == 2
        assert report.exit_code(strict=True) == 0

    def test_kernel_divergence_is_flagged(self, monkeypatch):
        import os

        from repro.fastpath import ENV_VAR
        real = execute_spec

        def skewed(spec):
            result = real(spec)
            if os.environ.get(ENV_VAR) == "1":
                result = type(result).from_dict(
                    {**result.to_dict(),
                     "cycles": result.cycles + 1})
            return result

        monkeypatch.setattr(runner_mod, "execute_spec", skewed)
        report = reference_diff([tiny_spec()])
        assert report.counts["changed"] == 1
        (cell,) = report.by_status("changed")
        assert "cycles" in {d.metric for d in cell.moved}

    def test_divergence_beyond_metric_vector_is_flagged(self,
                                                        monkeypatch):
        import os

        from repro.fastpath import ENV_VAR
        real = execute_spec

        def skewed_tail(spec):
            result = real(spec)
            if os.environ.get(ENV_VAR) == "1":
                # Change a field the metric vector excludes, so only
                # the byte-equality pass can catch the divergence.
                data = result.to_dict()
                data["workload"] = data["workload"] + "-skewed"
                result = type(result).from_dict(data)
            return result

        monkeypatch.setattr(runner_mod, "execute_spec", skewed_tail)
        report = reference_diff([tiny_spec()])
        (cell,) = report.by_status("changed")
        assert "beyond the metric vector" in cell.note


class TestPerfGate:
    def report(self, eps: float) -> dict:
        return {"bench": "sim_kernel", "scale": "tiny",
                "workload": "tpcc", "transactions": 40, "cores": 4,
                "seed": 1013, "fast": {"events_per_s": eps}}

    def test_within_budget_passes(self):
        ok, message = check_regression(self.report(95.0),
                                       self.report(100.0))
        assert ok
        assert "within budget" in message

    def test_slowdown_beyond_budget_fails(self):
        ok, message = check_regression(self.report(80.0),
                                       self.report(100.0))
        assert not ok
        assert "exceeds budget" in message

    def test_speedup_always_passes(self):
        ok, _ = check_regression(self.report(200.0), self.report(100.0))
        assert ok

    def test_parameter_mismatch_fails_loudly(self):
        prior = self.report(100.0)
        prior["transactions"] = 80
        ok, message = check_regression(self.report(100.0), prior)
        assert not ok
        assert "not comparable" in message
        assert "transactions" in message

    def test_malformed_prior_fails(self):
        ok, message = check_regression(self.report(100.0),
                                       {k: v for k, v in
                                        self.report(100.0).items()
                                        if k != "fast"})
        assert not ok
        assert "re-baseline" in message

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="max_slowdown"):
            check_regression(self.report(1.0), self.report(1.0),
                             max_slowdown=0.0)


class TestAuditCli:
    GRID = ["--workloads", "tpcc", "--schedulers", "base", "strex",
            "--cores", "2", "--scales", "tiny", "--transactions", "4",
            "--seeds", "7"]

    def sweep_into(self, root) -> None:
        assert main(["sweep", *self.GRID,
                     "--cache-dir", str(root)]) == 0

    def test_diff_identical_runs_exits_zero(self, tmp_path, capsys):
        self.sweep_into(tmp_path / "a")
        self.sweep_into(tmp_path / "b")
        capsys.readouterr()
        code = main(["diff", str(tmp_path / "a"), str(tmp_path / "b")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 changed" in out
        assert "2 identical" in out

    def test_diff_perturbed_run_exits_nonzero_naming_cells(
            self, tmp_path, capsys):
        self.sweep_into(tmp_path / "a")
        self.sweep_into(tmp_path / "b")
        spec = tiny_spec(seed=7, mix_seed=7)
        perturb_entry(tmp_path / "b", spec_key(tiny_spec()))
        capsys.readouterr()
        code = main(["diff", str(tmp_path / "a"), str(tmp_path / "b")])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 changed" in out
        assert spec.describe() in out
        assert "cycles" in out

    def test_diff_json_is_machine_readable(self, tmp_path, capsys):
        self.sweep_into(tmp_path / "a")
        self.sweep_into(tmp_path / "b")
        perturb_entry(tmp_path / "b", spec_key(tiny_spec()))
        capsys.readouterr()
        code = main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["counts"]["changed"] == 1
        changed = data["cells"][0]
        assert any(d["metric"] == "cycles" and not d["within"]
                   for d in changed["deltas"])

    def test_diff_strict_flags_grid_shrink(self, tmp_path, capsys):
        self.sweep_into(tmp_path / "a")
        assert main(["sweep", "--workloads", "tpcc", "--schedulers",
                     "base", "--cores", "2", "--scales", "tiny",
                     "--transactions", "4", "--seeds", "7",
                     "--cache-dir", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        lax = main(["diff", str(tmp_path / "a"), str(tmp_path / "b")])
        strict = main(["diff", str(tmp_path / "a"),
                       str(tmp_path / "b"), "--strict"])
        assert (lax, strict) == (0, 1)
        assert "removed" in capsys.readouterr().out

    def test_diff_reference_mode(self, capsys):
        code = main(["diff", "--reference", *self.GRID])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 identical" in out

    def test_diff_reference_rejects_manifest_paths(self, tmp_path,
                                                   capsys):
        code = main(["diff", "--reference", str(tmp_path)])
        assert code == 2
        assert "grid flags" in capsys.readouterr().err

    def test_diff_requires_two_manifests(self, tmp_path, capsys):
        code = main(["diff", str(tmp_path)])
        assert code == 2
        assert "two manifests" in capsys.readouterr().err

    def test_baseline_pin_check_update_cycle(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["baseline", "pin", str(path), *self.GRID,
                     *cache]) == 0
        assert "pinned 2 cell(s)" in capsys.readouterr().out
        assert json.loads(path.read_text())["name"] == "baseline"

        assert main(["baseline", "check", str(path), *cache]) == 0
        assert "OK" in capsys.readouterr().out

        data = json.loads(path.read_text())
        data["cells"][0]["metrics"]["cycles"] += 50
        path.write_text(json.dumps(data))
        code = main(["baseline", "check", str(path), *cache])
        out = capsys.readouterr().out
        assert code == 1
        assert "DRIFT" in out
        assert "cycles" in out

        assert main(["baseline", "update", str(path), *cache]) == 0
        capsys.readouterr()
        assert main(["baseline", "check", str(path), *cache]) == 0

    def test_perf_check_without_prior_is_skipped(self, tmp_path,
                                                 capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["perf", "--scale", "tiny", "--transactions", "4",
                     "--repeats", "1", "--out", "fresh.json",
                     "--check", "missing.json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nothing to gate" in out

    def test_perf_check_gates_against_prior(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = ["perf", "--scale", "tiny", "--transactions", "4",
                "--repeats", "1", "--out", "fresh.json"]
        assert main(args) == 0
        # An impossibly fast prior makes the fresh run a regression.
        prior = json.loads((tmp_path / "fresh.json").read_text())
        prior["fast"]["events_per_s"] = prior["fast"]["events_per_s"] \
            * 1000
        (tmp_path / "prior.json").write_text(json.dumps(prior))
        capsys.readouterr()
        code = main([*args, "--check", "prior.json"])
        out = capsys.readouterr().out
        assert code == 1
        assert "exceeds budget" in out


class TestDiffReportShape:
    def test_empty_report_is_ok(self):
        report = DiffReport()
        assert report.ok(strict=True)
        assert report.exit_code() == 0
        assert "0 cell(s)" in report.format_text()


def audit_into(root, figures) -> None:
    """Run each figure's sweep into one cache at ``root`` and record
    it as ``<root>/audit/<fig>.jsonl`` (the per-bench layout)."""
    for fig, sweep in figures.items():
        runner = Runner(cache=ResultCache(root))
        runner.run(sweep)
        audit = Manifest(root / "audit" / f"{fig}.jsonl")
        for entry in runner.entries:
            audit.record(entry)


class TestAuditDiff:
    FIGURES = {
        "fig6_mpki": dict(schedulers=("base", "strex")),
        "fig9_slicc": dict(schedulers=("slicc",)),
    }

    def build(self, root):
        audit_into(root, {fig: tiny_sweep(**overrides)
                          for fig, overrides in self.FIGURES.items()})

    def test_identical_checkouts_audit_clean(self, tmp_path):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        report = audit_diff(tmp_path / "a", tmp_path / "b")
        assert [f.name for f in report.figures] == \
            sorted(self.FIGURES)
        assert all(f.status == "ok" for f in report.figures)
        assert report.exit_code(strict=True) == 0
        assert "OK" in report.format_text()

    def test_drifted_figure_is_named_others_stay_ok(self, tmp_path):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        spec = tiny_sweep(**self.FIGURES["fig6_mpki"]).expand()[0]
        perturb_entry(tmp_path / "b", spec_key(spec))
        report = audit_diff(tmp_path / "a", tmp_path / "b")
        status = {f.name: f.status for f in report.figures}
        assert status == {"fig6_mpki": "drift", "fig9_slicc": "ok"}
        assert report.exit_code() == 1
        text = report.format_text()
        assert "DRIFT" in text
        assert "fig6_mpki" in text
        assert "cycles" in text  # the drifted metric is detailed

    def test_unpaired_figure_fails_only_under_strict(self, tmp_path):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        (tmp_path / "b" / "audit" / "fig9_slicc.jsonl").unlink()
        report = audit_diff(tmp_path / "a", tmp_path / "b")
        status = {f.name: f.status for f in report.figures}
        assert status["fig9_slicc"] == "only-a"
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_accepts_cache_roots_or_audit_dirs(self, tmp_path):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        via_roots = audit_diff(tmp_path / "a", tmp_path / "b")
        via_audit = audit_diff(tmp_path / "a" / "audit",
                               tmp_path / "b" / "audit")
        assert via_roots.to_dict() == via_audit.to_dict()

    def test_tolerance_absorbs_small_drift(self, tmp_path):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        spec = tiny_sweep(**self.FIGURES["fig6_mpki"]).expand()[0]
        perturb_entry(tmp_path / "b", spec_key(spec), bump=1)
        assert audit_diff(tmp_path / "a",
                          tmp_path / "b").exit_code() == 1
        loose = audit_diff(tmp_path / "a", tmp_path / "b",
                           tolerance=Tolerance(abs_tol=2.0))
        assert loose.exit_code(strict=True) == 0

    def test_cli_dashboard_and_exit_codes(self, tmp_path, capsys):
        self.build(tmp_path / "a")
        self.build(tmp_path / "b")
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["diff", "--audit", a, b]) == 0
        out = capsys.readouterr().out
        assert "figure" in out and "verdict" in out

        spec = tiny_sweep(**self.FIGURES["fig6_mpki"]).expand()[0]
        perturb_entry(tmp_path / "b", spec_key(spec))
        assert main(["diff", "--audit", a, b]) == 1
        assert "fig6_mpki" in capsys.readouterr().out

        assert main(["diff", "--audit", a, b, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert {f["name"] for f in data["figures"]} == \
            set(self.FIGURES)

    def test_cli_audit_needs_both_directories(self, capsys, tmp_path):
        assert main(["diff", "--audit", str(tmp_path)]) == 2
        assert "--audit needs two" in capsys.readouterr().err
