"""Tests for the TPC-C / TPC-E / MapReduce workload suites."""

from collections import Counter

import pytest

from repro.config import default_scale
from repro.core.fptable import PAPER_FPTABLE, profile_fptable
from repro.db.codemap import CODE_BASE_BLOCK
from repro.workloads.tpcc import (
    TpccWorkload,
    customer_key,
    district_key,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
)


class TestKeys:
    def test_keys_unique_across_entities(self):
        keys = {
            warehouse_key(1),
            district_key(1, 2),
            customer_key(1, 2, 3),
            order_key(1, 2, 3),
            order_line_key(1, 2, 3, 4),
            stock_key(1, 3),
        }
        assert len(keys) == 6

    def test_customer_keys_ordered_within_district(self):
        assert customer_key(0, 1, 5) < customer_key(0, 1, 6)
        assert customer_key(0, 1, 99) < customer_key(0, 2, 0)


class TestTpccSchema:
    def test_tables_created(self, tiny_tpcc):
        for name in ("WAREHOUSE", "DISTRICT", "CUSTOMER", "ITEM",
                     "STOCK", "ORDERS", "NEW_ORDER", "ORDER_LINE",
                     "HISTORY"):
            assert name in tiny_tpcc.db.tables

    def test_population_counts(self, tiny_tpcc):
        assert tiny_tpcc.db.table("WAREHOUSE").num_records == 1
        assert tiny_tpcc.db.table("DISTRICT").num_records == 10
        assert tiny_tpcc.db.table("CUSTOMER").num_records == 300
        assert tiny_tpcc.db.table("ITEM").num_records == 100

    def test_scale_factor(self):
        blocks = 32
        wl = TpccWorkload(blocks, warehouses=2,
                          customers_per_district=10, items=50)
        assert wl.db.table("WAREHOUSE").num_records == 2
        assert wl.db.table("STOCK").num_records == 100
        assert wl.name == "TPC-C-2"

    def test_rejects_zero_warehouses(self):
        with pytest.raises(ValueError):
            TpccWorkload(32, warehouses=0)


class TestTraceGeneration:
    def test_all_types_generate(self, tiny_tpcc):
        for name in tiny_tpcc.type_names():
            trace = tiny_tpcc.generate_trace(name, seed=1)
            assert len(trace) > 50
            assert trace.txn_type == name

    def test_deterministic_given_seed(self):
        # Trace generation mutates database state (inserts, log tail),
        # so reproducibility is defined over a fresh workload instance.
        def fresh():
            wl = TpccWorkload(32, warehouses=1,
                              customers_per_district=20, items=40,
                              seed=123)
            return wl.generate_trace("Payment", seed=77)

        a, b = fresh(), fresh()
        assert a.iblocks == b.iblocks
        assert a.dblocks == b.dblocks

    def test_different_seeds_diverge(self, tiny_tpcc):
        a = tiny_tpcc.generate_trace("Payment", seed=1)
        b = tiny_tpcc.generate_trace("Payment", seed=2)
        assert a.iblocks != b.iblocks

    def test_same_type_instances_overlap_heavily(self, tiny_tpcc):
        a = tiny_tpcc.generate_trace("Payment", seed=1)
        b = tiny_tpcc.generate_trace("Payment", seed=2)
        shared = a.unique_iblocks() & b.unique_iblocks()
        union = a.unique_iblocks() | b.unique_iblocks()
        # High overlap, but not identical: the conditional IT(CUST)
        # action and skip-run divergence separate instances (Fig. 2).
        assert len(shared) / len(union) > 0.7
        assert shared != union

    def test_cross_type_overlap_exists(self, tiny_tpcc):
        """Fig. 1: New Order and Payment share their initial actions."""
        a = tiny_tpcc.generate_trace("NewOrder", seed=1)
        b = tiny_tpcc.generate_trace("Payment", seed=2)
        shared = a.unique_iblocks() & b.unique_iblocks()
        assert len(shared) / len(a.unique_iblocks()) > 0.3

    def test_mix_respects_weights(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(200, seed=5)
        counts = Counter(t.txn_type for t in traces)
        assert counts["NewOrder"] + counts["Payment"] > 140

    def test_instruction_addresses_in_code_space(self, tiny_tpcc):
        trace = tiny_tpcc.generate_trace("NewOrder", seed=5)
        assert all(b >= CODE_BASE_BLOCK for b in trace.iblocks)
        data = [d for d in trace.dblocks if d >= 0]
        assert data
        assert all(d > max(trace.iblocks) for d in data)

    def test_neworder_longer_than_payment(self, tiny_tpcc):
        orders = [tiny_tpcc.generate_trace("NewOrder", seed=s)
                  for s in range(3)]
        pays = [tiny_tpcc.generate_trace("Payment", seed=s)
                for s in range(3)]
        mean = lambda ts: sum(t.total_instructions for t in ts) / len(ts)
        assert mean(orders) > mean(pays)

    def test_generate_uniform(self, tiny_tpcc):
        traces = tiny_tpcc.generate_uniform("StockLevel", 5, seed=2)
        assert len(traces) == 5
        assert all(t.txn_type == "StockLevel" for t in traces)

    def test_txn_ids_monotonic(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(5, seed=3)
        ids = [t.txn_id for t in traces]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestTable3Footprints:
    """The paper's Table 3, at default scale (8 KiB L1 units)."""

    @pytest.mark.slow
    def test_tpcc_footprints_match_paper(self, default_tpcc):
        config = default_scale()
        traces = []
        for name in default_tpcc.type_names():
            traces += default_tpcc.generate_uniform(name, 3, seed=3)
        table = profile_fptable(traces, config, samples_per_type=3)
        assert table.as_dict() == {
            "NewOrder": 14, "Payment": 14, "OrderStatus": 11,
            "Delivery": 12, "StockLevel": 11,
        }

    def test_paper_fptable_constants(self):
        assert PAPER_FPTABLE["TPC-C"]["NewOrder"] == 14
        assert PAPER_FPTABLE["TPC-E"]["SecurityDetail"] == 5


class TestTpce:
    def test_all_types_generate(self, tiny_tpce):
        for name in tiny_tpce.type_names():
            trace = tiny_tpce.generate_trace(name, seed=1)
            assert len(trace) > 30

    def test_seven_types(self, tiny_tpce):
        assert len(tiny_tpce.type_names()) == 7

    def test_trade_types_share_find_trades(self, tiny_tpce):
        region = tiny_tpce.layout.region("TPC-E.FIND_TRADES")
        blocks = set(region.blocks())
        for name in ("TradeStatus", "TradeUpdate", "TradeLookup"):
            trace = tiny_tpce.generate_trace(name, seed=4)
            assert trace.unique_iblocks() & blocks

    def test_security_detail_smallest(self, tiny_tpce):
        sizes = {
            name: len(tiny_tpce.generate_trace(name, seed=2)
                      .unique_iblocks())
            for name in tiny_tpce.type_names()
        }
        assert min(sizes, key=sizes.get) == "SecurityDetail"


class TestMapReduce:
    def test_tasks_generate(self, tiny_mapreduce):
        trace = tiny_mapreduce.generate_trace("MapTask", seed=1)
        assert len(trace) > 50

    def test_footprint_fits_l1i(self, tiny_mapreduce):
        trace = tiny_mapreduce.generate_trace("MapTask", seed=1)
        assert trace.footprint_units(32) < 1.0

    def test_streams_input_data(self, tiny_mapreduce):
        trace = tiny_mapreduce.generate_trace("MapTask", seed=1)
        data = [d for d in trace.dblocks if d >= 0]
        # Streaming: most data blocks are touched exactly once.
        counts = Counter(data)
        once = sum(1 for c in counts.values() if c == 1)
        assert once / len(counts) > 0.5

    def test_no_transactional_path(self, tiny_mapreduce):
        trace = tiny_mapreduce.generate_trace("MapTask", seed=1)
        begin = tiny_mapreduce.layout.region("sm.txn_begin")
        assert not (trace.unique_iblocks() & set(begin.blocks()))
