"""Fast-path support machinery.

Covers the pieces the specialized kernel leans on but that parity runs
alone don't pin down: non-power-of-two set geometry, flush/invalidate
against the flat O(1) layout, the trace-level memos, the runner's
workload-trace memo, manifest retention, and the perf microbenchmark.
"""

import multiprocessing
import random

import pytest

from repro.cache.cache import Cache, CacheStats, ReferenceCache
from repro.config import CacheConfig
from repro.exp import runner as runner_mod
from repro.exp.manifest import Manifest, ManifestEntry
from repro.exp.spec import RunSpec
from repro.trace.trace import TransactionTrace

POLICIES = ("lru", "fifo", "random", "lip", "bip", "dip",
            "srrip", "brrip")


def _pair(size=768, assoc=4, replacement="lru"):
    """A (fast, reference) cache pair with identical geometry and RNG."""
    config = CacheConfig(size, assoc=assoc, replacement=replacement)
    fast = Cache(config, rng=random.Random(7))
    ref = ReferenceCache(config, rng=random.Random(7))
    return fast, ref


def _assert_same_state(fast: Cache, ref: ReferenceCache) -> None:
    assert set(fast.resident_blocks()) == set(ref.resident_blocks())
    assert fast.stats.snapshot() == ref.stats.snapshot()
    for block in fast.resident_blocks():
        assert fast.tag_of(block) == ref.tag_of(block)


class TestNonPowerOfTwoGeometry:
    """768 B / 4-way / 64 B blocks gives 3 sets — the modulo path."""

    def test_set_index_uses_modulo(self):
        fast, ref = _pair()
        assert fast.num_sets == 3
        assert not fast._power_of_two
        for block in (0, 1, 2, 3, 7, 100, 12345):
            assert fast.set_index(block) == block % 3
            assert fast.set_index(block) == ref.set_index(block)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_differential_stream(self, policy):
        fast, ref = _pair(replacement=policy)
        rng = random.Random(42)
        for _ in range(600):
            block = rng.randrange(24)
            assert fast.access(block) == ref.access(block)
        _assert_same_state(fast, ref)

    @pytest.mark.parametrize("policy", ("lru", "fifo", "dip"))
    def test_victim_callbacks_match(self, policy):
        fast_victims, ref_victims = [], []
        config = CacheConfig(768, assoc=4, replacement=policy)
        fast = Cache(config, rng=random.Random(7),
                     victim_callback=lambda b, t: fast_victims.append(b))
        ref = ReferenceCache(
            config, rng=random.Random(7),
            victim_callback=lambda b, t: ref_victims.append(b))
        rng = random.Random(9)
        for _ in range(400):
            block = rng.randrange(30)
            assert fast.access(block) == ref.access(block)
        assert fast_victims == ref_victims


class TestFlushInvalidate:
    """flush/invalidate against the flat layout and age policies."""

    def test_flush_mutates_storage_in_place(self):
        # The engine's specialized loops capture references to these
        # arrays once at construction; flush must never rebind them.
        fast, _ = _pair(size=1024, assoc=4)
        blocks, set_len = fast._slot_blocks, fast._set_len
        for block in range(16):
            fast.access(block)
        fast.flush()
        assert fast._slot_blocks is blocks
        assert fast._set_len is set_len
        assert all(b is None for b in blocks)
        assert set_len == [0] * fast.num_sets
        assert fast.occupancy == 0

    def test_flush_skips_victim_callbacks(self):
        victims = []
        fast = Cache(CacheConfig(1024, assoc=4),
                     victim_callback=lambda b, t: victims.append(b))
        for block in range(16):
            fast.access(block)
        fast.flush()
        assert victims == []

    @pytest.mark.parametrize("policy", ("lru", "fifo", "lip", "dip"))
    def test_refill_after_flush_matches_reference(self, policy):
        fast, ref = _pair(size=1024, assoc=4, replacement=policy)
        rng = random.Random(3)
        stream = [rng.randrange(40) for _ in range(300)]
        for block in stream[:150]:
            assert fast.access(block) == ref.access(block)
        fast.flush()
        ref.flush()
        assert fast.occupancy == ref.occupancy == 0
        for block in stream[150:]:
            assert fast.access(block) == ref.access(block)
        _assert_same_state(fast, ref)

    @pytest.mark.parametrize("policy", ("lru", "fifo", "srrip"))
    def test_invalidate_frees_way_before_eviction(self, policy):
        fast, _ = _pair(size=1024, assoc=4, replacement=policy)
        set0 = [block * fast.num_sets for block in range(4)]
        for block in set0:
            fast.access(block)
        assert fast.invalidate(set0[1])
        assert not fast.invalidate(set0[1])
        evictions_before = fast.stats.evictions
        fast.access(99 * fast.num_sets)  # fills the freed way
        assert fast.stats.evictions == evictions_before
        assert fast.contains(set0[0]) and fast.contains(set0[2])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_interleaved_invalidate_differential(self, policy):
        fast, ref = _pair(size=1024, assoc=4, replacement=policy)
        rng = random.Random(11)
        for step in range(500):
            block = rng.randrange(48)
            if step % 17 == 16:
                assert fast.invalidate(block) == ref.invalidate(block)
            else:
                assert fast.access(block) == ref.access(block)
        _assert_same_state(fast, ref)


def _trace():
    return TransactionTrace(
        txn_id=1, txn_type="payment",
        iblocks=[5, 6, 5, 9, 130],
        ilens=[4, 2, 7, 1, 3],
        dblocks=[-1, 12, -1, -1, 40],
        dwrites=[0, 1, 0, 0, 0],
    )


class TestTraceMemos:
    def test_unique_iblocks_memoized(self):
        trace = _trace()
        first = trace.unique_iblocks()
        assert first == frozenset({5, 6, 9, 130})
        assert trace.unique_iblocks() is first

    def test_footprint_units(self):
        assert _trace().footprint_units(8) == 4 / 8

    def test_packed_events_contents_and_memo(self):
        trace = _trace()
        packed = trace.packed_events(0.5, 4)
        assert packed == [
            (5, 2.0, 4, -1, 0, 1),
            (6, 1.0, 2, 12, 1, 2),
            (5, 3.5, 7, -1, 0, 1),
            (9, 0.5, 1, -1, 0, 1),
            (130, 1.5, 3, 40, 0, 2),
        ]
        assert trace.packed_events(0.5, 4) is packed
        # A different (cpi, num_sets) key builds a fresh list.
        assert trace.packed_events(1.0, 4) is not packed

    def test_set_indices_power_of_two_and_modulo(self):
        trace = _trace()
        assert trace.iblock_set_indices(4) == [1, 2, 1, 1, 2]
        assert trace.iblock_set_indices(3) == [2, 0, 2, 0, 1]
        assert trace.iblock_set_indices(3) \
            is trace.iblock_set_indices(3)

    def test_instruction_prefix(self):
        trace = _trace()
        prefix = trace.instruction_prefix()
        assert prefix == [0, 4, 6, 13, 14, 17]
        assert prefix[-1] == trace.total_instructions
        assert trace.instruction_prefix() is prefix


class TestRunnerTraceMemo:
    def test_repeat_spec_reuses_traces(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_TRACE_MEMO",
                            runner_mod._TRACE_MEMO.__class__())
        spec = RunSpec(workload="tpcc", transactions=2, scale="tiny",
                       cores=2)
        name1, traces1 = runner_mod._workload_traces(spec, 32)
        name2, traces2 = runner_mod._workload_traces(spec, 32)
        assert name1 == name2
        assert traces1 is traces2
        assert len(runner_mod._TRACE_MEMO) == 1

    def test_different_seed_is_a_different_entry(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_TRACE_MEMO",
                            runner_mod._TRACE_MEMO.__class__())
        base = RunSpec(workload="tpcc", transactions=2, scale="tiny",
                       cores=2)
        other = RunSpec(workload="tpcc", transactions=2, scale="tiny",
                        cores=2, seed=2026)
        _, traces1 = runner_mod._workload_traces(base, 32)
        _, traces2 = runner_mod._workload_traces(other, 32)
        assert traces1 is not traces2
        assert len(runner_mod._TRACE_MEMO) == 2

    def test_memo_is_bounded(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_TRACE_MEMO",
                            runner_mod._TRACE_MEMO.__class__())
        monkeypatch.setattr(runner_mod, "_TRACE_MEMO_MAX", 3)
        for seed in range(5):
            spec = RunSpec(workload="tpcc", transactions=2,
                           scale="tiny", cores=2, seed=seed)
            runner_mod._workload_traces(spec, 32)
        assert len(runner_mod._TRACE_MEMO) == 3


def _row(key, ts, sweep):
    return ManifestEntry(key=key, spec={"workload": "tpcc"},
                         hit=False, wall_s=0.1, ts=ts, sweep=sweep)


class TestManifestRetention:
    def test_compact_keeps_last_sweeps(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.jsonl")
        for i in range(2):
            manifest.record(_row(f"a{i}", 100.0 + i, "sweep-a"))
        for i in range(3):
            manifest.record(_row(f"b{i}", 200.0 + i, "sweep-b"))
        manifest.record(_row("c0", 300.0, "sweep-c"))
        kept, dropped = manifest.compact(keep_last=2)
        assert (kept, dropped) == (4, 2)
        sweeps = {e.sweep for e in manifest.read()}
        assert sweeps == {"sweep-b", "sweep-c"}

    def test_legacy_rows_sort_oldest(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.jsonl")
        manifest.record(ManifestEntry(key="old", spec={}, hit=True,
                                      wall_s=0.0))
        manifest.record(_row("new", 500.0, "sweep-x"))
        kept, dropped = manifest.compact(keep_last=1)
        assert (kept, dropped) == (1, 1)
        assert manifest.read()[0].key == "new"

    def test_compact_rejects_nonpositive(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.jsonl")
        with pytest.raises(ValueError):
            manifest.compact(0)

    def test_compact_empty_manifest(self, tmp_path):
        manifest = Manifest(tmp_path / "missing.jsonl")
        assert manifest.compact(keep_last=3) == (0, 0)

    def test_since_filter_via_cli(self, tmp_path):
        import json as json_mod

        from repro.__main__ import run_manifest

        path = tmp_path / "manifest.jsonl"
        manifest = Manifest(path)
        manifest.record(ManifestEntry(key="untimed", spec={}, hit=True,
                                      wall_s=0.0))
        manifest.record(_row("early", 1.0, "sweep-a"))
        # 2026-08-01T00:00:00 UTC is far past ts=1.0.
        out = run_manifest(["--path", str(path), "--json",
                            "--since", "2026-08-01T00:00:00"])
        assert json_mod.loads(out)["runs"] == 0
        out = run_manifest(["--path", str(path), "--json",
                            "--since", "1970-01-01T00:00:00"])
        assert json_mod.loads(out)["runs"] == 1

    def test_since_rejects_garbage(self, tmp_path):
        from repro.__main__ import run_manifest

        with pytest.raises(ValueError, match="ISO timestamp"):
            run_manifest(["--path", str(tmp_path / "m.jsonl"),
                          "--since", "yesterday"])

    def test_keep_last_via_cli(self, tmp_path):
        from repro.__main__ import run_manifest

        path = tmp_path / "manifest.jsonl"
        manifest = Manifest(path)
        manifest.record(_row("a", 1.0, "sweep-a"))
        manifest.record(_row("b", 2.0, "sweep-b"))
        out = run_manifest(["--path", str(path), "--keep-last", "1"])
        assert "kept 1 row(s)" in out
        assert [e.key for e in manifest.read()] == ["b"]

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="needs the fork start method")
    def test_compact_under_concurrent_writers(self, tmp_path):
        """``compact()`` racing live appenders must never corrupt the
        file.  Rows appended inside the read -> tmp -> replace window
        can be dropped (the rewrite is lossy towards concurrent
        appends, by design), so the contract here is integrity, not
        no-loss: every surviving line parses as a complete row, and
        retention still holds over whatever survived."""
        path = tmp_path / "manifest.jsonl"
        manifest = Manifest(path)
        manifest.record(_row("seed", 1.0, "sweep-seed"))

        def writer(idx: int) -> None:
            own = Manifest(path)
            for i in range(40):
                own.record(_row(f"w{idx}-{i}",
                                1000.0 * (idx + 1) + i,
                                f"sweep-w{idx}"))

        ctx = multiprocessing.get_context("fork")
        writers = [ctx.Process(target=writer, args=(idx,))
                   for idx in range(3)]
        for proc in writers:
            proc.start()
        compactions = 0
        while any(proc.is_alive() for proc in writers) \
                or compactions < 3:
            manifest.compact(keep_last=10)
            compactions += 1
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0

        lines = [ln for ln in path.read_text().splitlines() if ln]
        assert lines  # keep_last=10 > 4 groups: nothing fully dropped
        for line in lines:
            ManifestEntry.from_json(line)  # raises on a torn line

        survivors = {e.sweep for e in manifest.read()}
        manifest.compact(keep_last=1)
        final = {e.sweep for e in manifest.read()}
        assert len(final) == 1
        assert final <= survivors


class TestPerfBench:
    def test_run_bench_tiny(self, tmp_path):
        from repro.perf import run_bench, write_bench

        report = run_bench(scale="tiny", transactions=3, repeats=1,
                           schedulers=("base",))
        assert report["parity"] is True
        assert report["events"] > 0
        assert report["fast"]["events_per_s"] > 0
        assert report["reference"]["events_per_s"] > 0
        assert report["speedup"] > 0
        out = tmp_path / "BENCH_sim.json"
        write_bench(report, out)
        import json as json_mod
        assert json_mod.loads(out.read_text())["bench"] == "sim_kernel"

    def test_run_bench_rejects_unknown_names(self):
        from repro.perf import run_bench

        with pytest.raises(ValueError, match="scale"):
            run_bench(scale="huge")
        with pytest.raises(ValueError, match="workload"):
            run_bench(workload="nope")
        with pytest.raises(ValueError, match="scheduler"):
            run_bench(scale="tiny", schedulers=("warp",))


class TestPerfHistoryGate:
    """The ``perf --history`` ledger archives clean runs only.

    Regression for a bug where a report that failed ``--min-speedup``
    (or carried ``parity: False``) was appended anyway, poisoning
    over-time comparisons with numbers a gate had already rejected.
    """

    @staticmethod
    def _fake_report(parity=True, batch_speedup=2.0):
        return {
            "workload": "tpcc", "scale": "tiny", "cores": 2,
            "events": 1000, "repeats": 1,
            "fast": {"wall_s": 0.1, "events_per_s": 10_000},
            "reference": {"wall_s": 0.2, "events_per_s": 5_000},
            "speedup": 2.0, "parity": parity,
            "batch_speedup": batch_speedup,
            "schedulers_wall_s": {"base": 0.05, "strex": 0.05},
        }

    def _run(self, monkeypatch, tmp_path, report, extra=()):
        from repro.__main__ import run_perf

        monkeypatch.setattr("repro.perf.run_bench",
                            lambda **kwargs: report)
        history = tmp_path / "history.jsonl"
        text, code = run_perf(
            ["--out", str(tmp_path / "BENCH_sim.json"),
             "--history", str(history), *extra])
        return text, code, history

    def test_clean_report_is_appended(self, monkeypatch, tmp_path):
        text, code, history = self._run(
            monkeypatch, tmp_path, self._fake_report(),
            extra=["--min-speedup", "1.0"])
        assert code == 0
        assert f"appended to {history}" in text
        import json as json_mod

        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json_mod.loads(lines[0])["parity"] is True

    def test_failed_speedup_gate_is_not_appended(self, monkeypatch,
                                                 tmp_path):
        text, code, history = self._run(
            monkeypatch, tmp_path, self._fake_report(),
            extra=["--min-speedup", "99.0"])
        assert code == 1
        assert "not appending" in text
        assert not history.exists()

    def test_parity_failure_is_not_appended(self, monkeypatch,
                                            tmp_path):
        # Parity failures normally raise inside run_bench; the append
        # guard still refuses a parity-False report as a last line of
        # defence.
        text, code, history = self._run(
            monkeypatch, tmp_path, self._fake_report(parity=False))
        assert "not appending" in text
        assert not history.exists()


def test_cache_stats_snapshot_roundtrip():
    stats = CacheStats()
    stats.hits, stats.misses, stats.evictions = 3, 2, 1
    stats.invalidations = 4
    assert stats.snapshot() == {"hits": 3, "misses": 2,
                                "evictions": 1, "invalidations": 4}
