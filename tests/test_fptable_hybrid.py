"""Tests for the FPTable profiler and the STREX+SLICC hybrid."""

import pytest

from repro.config import tiny_scale
from repro.core.fptable import (
    FPTable,
    measure_footprint_blocks,
    profile_fptable,
)
from repro.sched.hybrid import HybridScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 10)
    return builder.build()


class TestMeasureFootprint:
    def test_distinct_block_count(self):
        trace = synthetic_trace(0, [1, 2, 3, 2, 1])
        assert measure_footprint_blocks(trace, tiny_scale()) == 3

    def test_repeats_not_recounted(self):
        trace = synthetic_trace(0, [5] * 100)
        assert measure_footprint_blocks(trace, tiny_scale()) == 1


class TestFPTable:
    def test_record_and_lookup(self):
        table = FPTable()
        table.record("A", 14)
        assert table.units("A") == 14
        assert table.known_types() == ["A"]

    def test_median_odd(self):
        table = FPTable()
        for name, units in (("A", 12), ("B", 14), ("C", 11)):
            table.record(name, units)
        assert table.median_units() == 12

    def test_median_even(self):
        table = FPTable()
        for name, units in (("A", 10), ("B", 14)):
            table.record(name, units)
        assert table.median_units() == 12.0

    def test_median_matches_paper_tpcc(self):
        table = FPTable()
        for name, units in (("Delivery", 12), ("NewOrder", 14),
                            ("OrderStatus", 11), ("Payment", 14),
                            ("StockLevel", 11)):
            table.record(name, units)
        assert table.median_units() == 12  # SLICC only above 12 cores

    def test_median_matches_paper_tpce(self):
        table = FPTable()
        for name, units in (("Broker", 7), ("Customer", 9),
                            ("Market", 9), ("Security", 5),
                            ("TrStat", 9), ("TrUpd", 8), ("TrLook", 8)):
            table.record(name, units)
        assert table.median_units() == 8  # SLICC at 8 cores and above

    def test_max_units(self):
        table = FPTable()
        table.record("A", 3)
        table.record("B", 9)
        assert table.max_units() == 9

    def test_empty_median_raises(self):
        with pytest.raises(ValueError):
            FPTable().median_units()

    def test_profile_rounds_up_to_units(self):
        # 40 blocks over a 32-block unit -> 2 units.
        traces = [synthetic_trace(0, list(range(2000, 2040)), "A")]
        table = profile_fptable(traces, tiny_scale())
        assert table.units("A") == 2

    def test_profile_multiple_types(self):
        traces = [
            synthetic_trace(0, list(range(2000, 2030)), "A"),
            synthetic_trace(1, list(range(3000, 3100)), "B"),
        ]
        table = profile_fptable(traces, tiny_scale())
        assert table.units("A") == 1
        assert table.units("B") == 4


class TestHybrid:
    def make_engine(self, traces, cores, fptable=None):
        config = tiny_scale(num_cores=cores)
        return SimulationEngine(
            config, traces,
            lambda engine: HybridScheduler(engine, fptable=fptable),
        )

    def big_small_traces(self):
        """Two types: 'big' needs 4 units, 'small' needs 2."""
        traces = []
        for i in range(4):
            traces.append(synthetic_trace(
                i, [2000 + j for j in range(128)], "big"))
        for i in range(4, 8):
            traces.append(synthetic_trace(
                i, [5000 + j for j in range(64)], "small"))
        return traces

    def test_selects_strex_when_cores_scarce(self):
        engine = self.make_engine(self.big_small_traces(), cores=2)
        assert engine.scheduler.decision == "strex"

    def test_selects_slicc_when_cores_cover_median(self):
        engine = self.make_engine(self.big_small_traces(), cores=4)
        # median footprint = (2 + 4)/2 = 3 units <= 4 cores
        assert engine.scheduler.decision == "slicc"

    def test_explicit_fptable_respected(self):
        table = FPTable()
        table.record("big", 50)
        table.record("small", 50)
        engine = self.make_engine(self.big_small_traces(), cores=4,
                                  fptable=table)
        assert engine.scheduler.decision == "strex"

    def test_runs_to_completion_either_way(self):
        for cores in (2, 4):
            engine = self.make_engine(self.big_small_traces(), cores)
            result = engine.run("x")
            assert result.transactions == 8
            assert result.scheduler == "hybrid"
            assert engine.scheduler.decision in ("strex", "slicc")

    def test_tracks_better_scheduler(self, tiny_tpcc):
        """Section 5.5.1: the hybrid closely follows the best of
        STREX and SLICC."""
        from repro.sched.slicc import SliccScheduler
        from repro.sched.strex import StrexScheduler
        traces = tiny_tpcc.generate_mix(16, seed=41)
        config = tiny_scale(num_cores=2)
        strex = SimulationEngine(config, traces, StrexScheduler).run("x")
        slicc = SimulationEngine(config, traces, SliccScheduler).run("x")
        hybrid = SimulationEngine(config, traces, HybridScheduler).run("x")
        best = max(strex.throughput, slicc.throughput)
        assert hybrid.throughput >= best * 0.9
