"""The batch replay layer: hit-run fast-forwarding and warm-slice
record/replay (``repro.sim.batch``).

The contract under test is byte-identity: with the layer on, off
(``REPRO_SIM_NOBATCH=1``), recording, or replaying, every simulation
must serialize to exactly the same :func:`result_blob`.  On top of the
differential sweep, unit tests pin the pieces the blobs alone don't:
run-table construction, residency-signature invalidation on
flush/invalidate, conservative fallback of a replayer on out-of-band
mutation, and the oracle/NOBATCH bypasses.
"""

import random
from pathlib import Path

import pytest

from repro.cache.cache import Cache, ReferenceCache
from repro.config import CacheConfig, tiny_scale
from repro.exp.diff import result_blob
from repro.fastpath import CHECK_ENV, ENV_VAR, NOBATCH_ENV
from repro.sim import batch
from repro.sim.api import SCHEDULERS, simulate
from repro.sim.engine import SimulationEngine
from repro.trace.trace import RUN_MIN_EVENTS, TransactionTrace
from repro.verify.harness import load_corpus
from repro.workloads import WORKLOADS

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Fresh registry and unset mode flags for every test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(CHECK_ENV, raising=False)
    monkeypatch.delenv(NOBATCH_ENV, raising=False)
    batch.reset_registry()
    yield
    batch.reset_registry()


def _mix(transactions=8, seed=7, cores=2):
    config = tiny_scale(num_cores=cores)
    suite = WORKLOADS["tpcc"](config.l1i_blocks, seed)
    return config, suite.generate_mix(transactions, seed=seed)


def _nobatch_blob(monkeypatch, config, traces, scheduler="base"):
    monkeypatch.setenv(NOBATCH_ENV, "1")
    try:
        return result_blob(
            simulate(config, traces, scheduler, "tpcc"))
    finally:
        monkeypatch.delenv(NOBATCH_ENV)


class TestRecordReplayDifferential:
    def test_triple_run_identical_and_replay_engaged(self):
        config, traces = _mix()
        blobs = [
            result_blob(simulate(config, traces, "base", "tpcc"))
            for _ in range(3)
        ]
        assert blobs[0] == blobs[1] == blobs[2]
        registry = batch.registry()
        # 1st sighting runs plain, 2nd records, 3rd replays.
        assert registry.recordings == 1
        assert registry.replays == 1
        assert registry.fallbacks == 0
        assert registry.aborts == 0

    def test_matches_nobatch_byte_for_byte(self, monkeypatch):
        config, traces = _mix()
        blobs = {
            result_blob(simulate(config, traces, "base", "tpcc"))
            for _ in range(3)
        }
        blobs.add(_nobatch_blob(monkeypatch, config, traces))
        assert len(blobs) == 1

    @pytest.mark.parametrize(
        "scheduler", ("base", "strex", "slicc", "hybrid", "smt"))
    def test_every_scheduler_matches_nobatch(self, monkeypatch,
                                             scheduler):
        """Fast-forwarding runs under every scheduler (the tight and
        the monitored loops); record/replay only under base/SMT --
        either way the bytes must not move."""
        config, traces = _mix()
        on = {
            result_blob(simulate(config, traces, scheduler, "tpcc"))
            for _ in range(3)
        }
        on.add(_nobatch_blob(monkeypatch, config, traces, scheduler))
        assert len(on) == 1

    def test_smt_records_and_replays(self):
        config, traces = _mix()
        for _ in range(3):
            simulate(config, traces, "smt", "tpcc")
        registry = batch.registry()
        assert registry.recordings == 1
        assert registry.replays == 1

    def test_strex_is_not_replay_eligible(self):
        """STREX consults live cache state (victim callbacks, tag
        scans) between slices -- it must never be recorded."""
        config, traces = _mix()
        for _ in range(3):
            simulate(config, traces, "strex", "tpcc")
        registry = batch.registry()
        assert registry.recordings == 0
        assert registry.replays == 0

    def test_corpus_batch_on_off(self, monkeypatch):
        """Every committed fuzz case: three batch-on runs (record and
        replay included) and a batch-off run, all byte-identical."""
        pairs = load_corpus(CORPUS_DIR)
        assert pairs, "committed corpus missing"
        for path, case in pairs:
            batch.reset_registry()
            config = case.build_config()
            traces = case.build_traces()
            blobs = set()
            for _ in range(3):
                blobs.add(result_blob(simulate(
                    config, traces, case.scheduler,
                    workload_name=case.workload,
                    prefetcher=case.prefetcher,
                    team_size=case.team_size,
                )))
            monkeypatch.setenv(NOBATCH_ENV, "1")
            try:
                blobs.add(result_blob(simulate(
                    config, traces, case.scheduler,
                    workload_name=case.workload,
                    prefetcher=case.prefetcher,
                    team_size=case.team_size,
                )))
            finally:
                monkeypatch.delenv(NOBATCH_ENV)
            assert len(blobs) == 1, f"batch on/off diverged: {path}"


class TestReplayerFallback:
    def test_out_of_band_mutation_falls_back_correctly(self):
        config, traces = _mix()
        baseline = result_blob(simulate(config, traces, "base", "tpcc"))
        simulate(config, traces, "base", "tpcc")  # records
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        assert isinstance(engine._batch, batch._Replayer)
        # Semantically a no-op on the still-empty cache, but it bumps
        # the mutation version -- the replayer must notice and detach.
        engine.hier.l1i[0].flush()
        result = engine.run("tpcc")
        assert result_blob(result) == baseline
        registry = batch.registry()
        assert registry.fallbacks == 1
        assert registry.replays == 0

    def test_replay_materializes_full_state(self):
        """A replayed engine must end in the recorded engine's exact
        state, not just produce the same result object."""
        config, traces = _mix()
        engines = []
        for _ in range(3):
            engine = SimulationEngine(
                config, traces, SCHEDULERS["base"])
            engine.run("tpcc")
            engines.append(engine)
        recorded, replayed = engines[1], engines[2]
        assert isinstance(replayed._batch, batch._Replayer)
        assert batch.registry().replays == 1
        assert replayed.core_time == recorded.core_time
        assert replayed.total_instructions == \
            recorded.total_instructions
        for a, b in zip(
            list(recorded.hier.l1i) + list(recorded.hier.l1d)
                + list(recorded.hier.l2),
            list(replayed.hier.l1i) + list(replayed.hier.l1d)
                + list(replayed.hier.l2),
        ):
            assert a.stats.snapshot() == b.stats.snapshot()
            assert a._where == b._where
            assert a._slot_blocks == b._slot_blocks
            assert a.policy._ages == b.policy._ages
            assert a.policy._tick == b.policy._tick
            assert a.version == b.version
        assert recorded.hier.dram.row_hits == \
            replayed.hier.dram.row_hits
        assert recorded.hier.noc.messages == \
            replayed.hier.noc.messages
        assert recorded.hier.l2_demand_traffic == \
            replayed.hier.l2_demand_traffic
        assert recorded.hier.coherence_misses == \
            replayed.hier.coherence_misses

    def test_call_shape_change_falls_back(self):
        config, traces = _mix()
        simulate(config, traces, "base", "tpcc")
        simulate(config, traces, "base", "tpcc")
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        assert isinstance(engine._batch, batch._Replayer)
        thread = engine.threads[0]
        log = []
        executed = engine.run_events(0, thread, 16, miss_log=log)
        assert executed == 16
        assert log, "miss log must be live after fallback"
        assert engine._batch is None
        assert batch.registry().fallbacks == 1


class TestFastForwardInvalidation:
    def _drive_until_memoized(self, engine):
        thread = engine.threads[0]
        while thread.pos < len(thread.trace):
            engine.run_events(0, thread, 200)
            if engine._ff_memos[0]:
                return thread
        pytest.skip("trace produced no memoized runs")

    def test_flush_invalidates_every_memo(self):
        config, traces = _mix()
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        self._drive_until_memoized(engine)
        l1i = engine.hier.l1i[0]
        shock_before = l1i.version - engine._ff_fill_base[0]
        l1i.flush()
        shock_after = l1i.version - engine._ff_fill_base[0]
        # Every memo's signature embeds the out-of-band count, so the
        # bump stales all of them at once.
        assert shock_after == shock_before + 1

    def test_invalidate_invalidates_every_memo(self):
        config, traces = _mix()
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        self._drive_until_memoized(engine)
        l1i = engine.hier.l1i[0]
        block = next(iter(l1i.resident_blocks()))
        shock_before = l1i.version - engine._ff_fill_base[0]
        assert l1i.invalidate(block)
        shock_after = l1i.version - engine._ff_fill_base[0]
        assert shock_after == shock_before + 1

    def test_results_unchanged_by_mid_run_flush(self, monkeypatch):
        """Flush mid-simulation, batch on vs off: the memos must not
        leak pre-flush residency into post-flush replay."""

        def drive(nobatch):
            if nobatch:
                monkeypatch.setenv(NOBATCH_ENV, "1")
            else:
                monkeypatch.delenv(NOBATCH_ENV, raising=False)
            config, traces = _mix(transactions=4)
            engine = SimulationEngine(
                config, traces, SCHEDULERS["base"])
            thread = engine.threads[0]
            slices = 0
            while thread.pos < len(thread.trace):
                engine.run_events(0, thread, 200)
                slices += 1
                if slices == 3:
                    engine.hier.l1i[0].flush()
            stats = engine.hier.l1i[0].stats
            return (engine.core_time[0], stats.hits, stats.misses,
                    thread.instructions_done)

        assert drive(nobatch=False) == drive(nobatch=True)

    def test_ff_disabled_when_oracles_armed(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV, "1")
        config, traces = _mix(transactions=4)
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        assert not engine._ff_enabled
        assert engine._batch is None
        engine.run("tpcc")
        assert engine.ff_runs == 0

    def test_ff_disabled_under_nobatch(self, monkeypatch):
        monkeypatch.setenv(NOBATCH_ENV, "1")
        config, traces = _mix(transactions=4)
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        assert not engine._ff_enabled
        assert engine._batch is None
        engine.run("tpcc")
        assert engine.ff_runs == 0

    def test_ff_engages_on_plain_engine(self):
        config, traces = _mix(transactions=4)
        engine = SimulationEngine(config, traces, SCHEDULERS["base"])
        assert engine._ff_enabled
        engine.run("tpcc")
        assert engine.ff_runs > 0


class TestRunTables:
    def test_spans_and_metadata(self):
        # Events 0-3 are instruction-only (a minimal run); event 4
        # carries data; event 5 is a too-short singleton span.
        trace = TransactionTrace(
            1, "X",
            [1, 2, 3, 4, 5, 6],
            [1, 2, 1, 2, 1, 1],
            [-1, -1, -1, -1, 9, -1],
            [0, 0, 0, 0, 1, 0],
        )
        tables = trace.run_tables(0.5, 4)
        assert tables is not None
        next_ff, runs = tables
        assert list(runs) == [0]
        rend, icycles, distinct, last_offs, n_run, run_sets = runs[0]
        assert rend == 4
        assert icycles == [0.5, 1.0, 0.5, 1.0]
        assert distinct == (1, 2, 3, 4)
        assert last_offs == [0, 1, 2, 3]
        assert n_run == 4
        assert run_sets == (1, 2, 3, 0)
        assert next_ff == [0, 6, 6, 6, 6, 6, 6]

    def test_repeated_blocks_keep_last_offset(self):
        trace = TransactionTrace(
            1, "X",
            [7, 8, 7, 8, 7],
            [1] * 5,
            [-1] * 5,
            [0] * 5,
        )
        _, runs = trace.run_tables(1.0, 4)
        rend, _, distinct, last_offs, n_run, run_sets = runs[0]
        assert rend == 5
        assert distinct == (7, 8)
        assert last_offs == [4, 3]
        assert n_run == 5
        assert run_sets == (3, 0)

    def test_short_spans_yield_no_tables(self):
        n = RUN_MIN_EVENTS - 1
        trace = TransactionTrace(
            1, "X",
            list(range(n)) + [99],
            [1] * (n + 1),
            [-1] * n + [5],
            [0] * (n + 1),
        )
        assert trace.run_tables(1.0, 4) is None

    def test_memoized_per_parameters(self):
        trace = TransactionTrace(
            1, "X", [1, 2, 3, 4], [1] * 4, [-1] * 4, [0] * 4)
        assert trace.run_tables(1.0, 4) is trace.run_tables(1.0, 4)
        assert trace.run_tables(1.0, 4) is not trace.run_tables(2.0, 4)


class TestContentKey:
    def test_array_and_list_backed_traces_agree(self):
        np = pytest.importorskip("numpy")
        cols = ([1, 2, 3], [1, 1, 2], [-1, 5, -1], [0, 1, 0])
        as_lists = TransactionTrace(3, "T", *cols)
        as_arrays = TransactionTrace(
            3, "T", *(np.asarray(c) for c in cols))
        assert as_lists.content_key() == as_arrays.content_key()
        assert as_lists.event_columns() == as_arrays.event_columns()

    def test_sensitive_to_every_column_and_meta(self):
        base = (3, "T", [1, 2], [1, 1], [-1, 5], [0, 1])
        key = TransactionTrace(*base).content_key()
        variants = [
            (4, "T", [1, 2], [1, 1], [-1, 5], [0, 1]),
            (3, "U", [1, 2], [1, 1], [-1, 5], [0, 1]),
            (3, "T", [1, 9], [1, 1], [-1, 5], [0, 1]),
            (3, "T", [1, 2], [1, 2], [-1, 5], [0, 1]),
            (3, "T", [1, 2], [1, 1], [-1, 6], [0, 1]),
            (3, "T", [1, 2], [1, 1], [-1, 5], [0, 0]),
        ]
        assert all(
            TransactionTrace(*v).content_key() != key
            for v in variants
        )

    def test_memoized(self):
        trace = TransactionTrace(1, "X", [1], [1], [-1], [0])
        assert trace.content_key() is trace.content_key()


class TestVersionCounter:
    @pytest.mark.parametrize("cls", (Cache, ReferenceCache))
    def test_mutators_bump(self, cls):
        cache = cls(CacheConfig(512, assoc=4),
                    rng=random.Random(7))
        version = cache.version
        cache.access(1)
        assert cache.version > version
        version = cache.version
        cache.access(1)  # hits still promote/tag -> still a mutation
        assert cache.version > version
        version = cache.version
        cache.set_tag(1, 3)
        assert cache.version > version
        version = cache.version
        assert cache.invalidate(1)
        assert cache.version > version
        version = cache.version
        cache.access(2)
        cache.flush()
        assert cache.version > version
        version = cache.version
        cache.reset_tags()
        assert cache.version > version

    @pytest.mark.parametrize("cls", (Cache, ReferenceCache))
    def test_nonresident_probes_still_conservative(self, cls):
        cache = cls(CacheConfig(512, assoc=4),
                    rng=random.Random(7))
        version = cache.version
        assert not cache.invalidate(42)
        assert not cache.set_tag(42, 1)
        # Bumping on a no-op is allowed (conservative), never required
        # to stay put -- but residency must be unchanged.
        assert cache.occupancy == 0
        assert cache.version >= version


class TestRegistry:
    def test_lru_capacity(self):
        registry = batch.ReplayRegistry(capacity=1)
        for key in ("a", "b"):
            assert registry.mode_for((key,)) == ("off", None)
            assert registry.mode_for((key,))[0] == "record"
            registry.store((key,), [])
        # "a" was evicted by "b"; seeing it again re-records.
        assert registry.mode_for(("a",))[0] == "record"
        assert registry.mode_for(("b",))[0] == "replay"

    def test_clear_resets_counters(self):
        registry = batch.ReplayRegistry()
        registry.mode_for(("k",))
        registry.store(("k",), [])
        registry.clear()
        assert registry.recordings == 0
        assert registry.mode_for(("k",)) == ("off", None)
