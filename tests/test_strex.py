"""Tests for the STREX scheduler (Section 4.2's algorithm)."""

import pytest

from repro.config import tiny_scale
from repro.core.teams import Team, TeamFormationUnit
from repro.sched.strex import StrexScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.thread import TxnThread
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, ilen=10, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, ilen)
    return builder.build()


def make_engine(traces, cores=1, team_size=10, **strex_kwargs):
    config = tiny_scale(num_cores=cores)  # 32-block L1-I
    if strex_kwargs:
        config = config.with_strex(**strex_kwargs)
    return SimulationEngine(
        config, traces,
        lambda engine: StrexScheduler(engine, team_size=team_size),
    )


class TestTeamFormation:
    def thread(self, tid, txn_type):
        return TxnThread(tid, synthetic_trace(tid, [1], txn_type=txn_type))

    def test_groups_same_type(self):
        threads = [self.thread(i, "A") for i in range(4)]
        teams = TeamFormationUnit(team_size=10).form_teams(threads)
        assert len(teams) == 1
        assert len(teams[0]) == 4

    def test_team_size_cap(self):
        threads = [self.thread(i, "A") for i in range(25)]
        teams = TeamFormationUnit(team_size=10).form_teams(threads)
        assert [len(t) for t in teams] == [10, 10, 5]

    def test_mixed_types_split(self):
        threads = [self.thread(i, "AB"[i % 2]) for i in range(6)]
        teams = TeamFormationUnit(team_size=10).form_teams(threads)
        assert len(teams) == 2
        assert {t.txn_type for t in teams} == {"A", "B"}

    def test_stray_scheduled_individually(self):
        threads = [self.thread(0, "A"), self.thread(1, "B"),
                   self.thread(2, "A")]
        teams = TeamFormationUnit(team_size=10).form_teams(threads)
        # A-team formed from threads 0 and 2; B is a stray team of one.
        assert [t.txn_type for t in teams] == ["A", "B"]
        assert len(teams[1]) == 1

    def test_window_limits_search(self):
        threads = [self.thread(i, "A" if i in (0, 5) else "B")
                   for i in range(6)]
        unit = TeamFormationUnit(team_size=10, window=3)
        teams = unit.form_teams(threads)
        # Thread 5 ("A") is outside the window of the first team.
        assert len(teams[0]) == 1

    def test_dispatch_order_is_oldest_first(self):
        threads = [self.thread(i, "AB"[i % 2]) for i in range(4)]
        teams = TeamFormationUnit(team_size=10).form_teams(threads)
        assert teams[0].oldest_arrival < teams[1].oldest_arrival

    def test_team_rejects_mixed_types(self):
        with pytest.raises(ValueError):
            Team([self.thread(0, "A"), self.thread(1, "B")])

    def test_team_rejects_empty(self):
        with pytest.raises(ValueError):
            Team([])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TeamFormationUnit(team_size=0)


class TestPhaseAlgorithm:
    def test_identical_transactions_followers_hit(self):
        """Section 4.1: for identical transactions only the lead misses.

        Footprint is 3 cache-fulls (96 blocks over a 32-block L1-I); with
        four identical transactions the team's misses stay close to one
        transaction's worth.
        """
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        engine = make_engine(traces)
        result = engine.run("identical")
        solo = 96  # cold misses of one transaction
        assert result.i_misses < solo * 1.6
        # The baseline would miss ~96 per transaction (footprint 3x L1).

    def test_baseline_thrashes_same_workload(self):
        from repro.sched.base import BaselineScheduler
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        config = tiny_scale(num_cores=1)
        base = SimulationEngine(config, traces, BaselineScheduler)
        base_result = base.run("x")
        strex = make_engine(traces).run("x")
        assert strex.i_misses < base_result.i_misses / 2

    def test_context_switches_happen(self):
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        result = make_engine(traces).run("x")
        assert result.context_switches > 4

    def test_small_footprint_no_switches(self):
        """MapReduce-like: footprint fits the L1-I, no evictions, so
        transactions run to completion without context switches."""
        blocks = [2000 + i for i in range(16)] * 4  # 0.5 cache
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        result = make_engine(traces).run("x")
        assert result.context_switches == 0

    def test_single_stray_completes(self):
        traces = [synthetic_trace(0, [2000 + i for i in range(100)])]
        result = make_engine(traces).run("x")
        assert result.transactions == 1
        assert result.context_switches == 0

    def test_lead_changes_on_finish(self):
        """A short lead finishing promotes the next thread to lead and
        everything still completes (Section 4.2, step 4)."""
        short = synthetic_trace(0, [2000 + i for i in range(40)])
        long_blocks = [2000 + i for i in range(40)] \
            + [3000 + i for i in range(60)]
        traces = [short] + [synthetic_trace(i, long_blocks)
                            for i in range(1, 4)]
        engine = make_engine(traces)
        result = engine.run("x")
        assert all(t.finished for t in engine.threads)

    def test_phase_counter_wraps_modulo(self):
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(2)]
        engine = make_engine(traces, phase_bits=2)  # modulo 4
        scheduler = engine.scheduler
        engine.run("x")
        assert 0 <= scheduler._cores[0].phase < 4

    def test_multiple_teams_multiple_cores(self):
        a_blocks = [2000 + i for i in range(64)]
        b_blocks = [4000 + i for i in range(64)]
        traces = (
            [synthetic_trace(i, a_blocks, txn_type="A") for i in range(3)]
            + [synthetic_trace(3 + i, b_blocks, txn_type="B")
               for i in range(3)]
        )
        engine = make_engine(traces, cores=2, team_size=10)
        result = engine.run("x")
        assert result.transactions == 6
        assert engine.core_time[0] > 0 and engine.core_time[1] > 0

    def test_team_queue_drains_to_free_core(self):
        """More teams than cores: a core takes the next team when its
        current team completes (Section 4.2, step 6)."""
        traces = []
        for team in range(3):
            blocks = [2000 + team * 1000 + i for i in range(40)]
            for i in range(2):
                traces.append(synthetic_trace(team * 2 + i, blocks,
                                              txn_type=f"T{team}"))
        engine = make_engine(traces, cores=1)
        result = engine.run("x")
        assert result.transactions == 6

    def test_divergent_followers_still_complete(self):
        """Followers with extra private blocks context-switch early but
        make progress (forward-progress guarantee, Section 4.4.1)."""
        common = [2000 + i for i in range(80)]
        traces = [synthetic_trace(0, common)]
        for i in range(1, 4):
            private = common[:40] + [9000 + i * 100 + j
                                     for j in range(20)] + common[40:]
            traces.append(synthetic_trace(i, private))
        engine = make_engine(traces)
        result = engine.run("x")
        assert result.transactions == 4

    def test_min_progress_zero_allows_early_switches(self):
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        eager = make_engine(traces, min_progress_events=0).run("x")
        floored = make_engine(traces).run("x")
        assert eager.context_switches >= floored.context_switches

    def test_context_switch_cost_charged(self):
        blocks = [2000 + i for i in range(96)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        cheap = make_engine(traces, context_switch_cycles=0).run("x")
        costly = make_engine(traces, context_switch_cycles=500).run("x")
        assert costly.cycles > cheap.cycles

    def test_team_size_one_behaves_like_serial(self):
        blocks = [2000 + i for i in range(50)]
        traces = [synthetic_trace(i, blocks) for i in range(3)]
        engine = make_engine(traces, team_size=1)
        result = engine.run("x")
        assert result.transactions == 3
        assert engine.scheduler.teams_formed == 3


class TestStrexOnWorkload:
    def test_reduces_impki_on_tpcc(self, tiny_tpcc):
        from repro.sched.base import BaselineScheduler
        traces = tiny_tpcc.generate_uniform("Payment", 10, seed=31)
        config = tiny_scale(num_cores=1)
        base = SimulationEngine(config, traces, BaselineScheduler).run("x")
        strex = SimulationEngine(config, traces, StrexScheduler).run("x")
        assert strex.i_mpki < base.i_mpki * 0.85
        assert strex.instructions == base.instructions

    def test_latencies_recorded_for_all(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(8, seed=13)
        engine = make_engine(traces, cores=2)
        result = engine.run("x")
        assert len(result.latencies) == 8
        assert all(latency > 0 for latency in result.latencies)
