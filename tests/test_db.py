"""Tests for repro.db: heap tables, locks, log, storage, code layout."""

import random

import pytest

from repro.db.codemap import (
    CODE_BASE_BLOCK,
    CodeLayout,
    PrivateContext,
    TraceRecorder,
)
from repro.db.engine import BASIC_FUNCTION_UNITS, Database, StorageManager
from repro.db.heap import Table
from repro.db.locks import EXCLUSIVE, SHARED, LockManager
from repro.db.log import LogManager
from repro.db.storage import DATA_BASE_BLOCK, DataSpace, Page
from repro.trace.trace import TraceBuilder


class TestDataSpace:
    def test_allocations_are_disjoint(self):
        space = DataSpace()
        a = space.allocate("x", 10)
        b = space.allocate("y", 5)
        assert b == a + 10

    def test_region_accounting(self):
        space = DataSpace()
        space.allocate("x", 10)
        space.allocate("x", 5)
        assert space.region_blocks("x") == 15
        assert space.total_blocks == 15

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DataSpace().allocate("x", 0)

    def test_data_space_above_code_space(self):
        assert DATA_BASE_BLOCK > CODE_BASE_BLOCK


class TestPage:
    def test_insert_and_get(self):
        page = Page(100, capacity=2)
        page.insert(0, {"a": 1})
        assert page.get(0) == {"a": 1}

    def test_full(self):
        page = Page(100, capacity=1)
        page.insert(0, {})
        assert page.full
        with pytest.raises(RuntimeError):
            page.insert(1, {})

    def test_span_blocks(self):
        page = Page(100, capacity=4, span=3)
        assert page.blocks() == [100, 101, 102]


class TestTable:
    def make_table(self, **kwargs):
        return Table("T", DataSpace(), **kwargs)

    def test_insert_read_roundtrip(self):
        table = self.make_table()
        rid, blocks = table.insert(5, {"v": 1})
        record, read_blocks = table.read(rid)
        assert record == {"v": 1}
        assert table.metadata_block in blocks
        assert table.metadata_block in read_blocks

    def test_lookup_by_key(self):
        table = self.make_table()
        rid, _ = table.insert(7, {"v": 2})
        found, blocks = table.lookup(7)
        assert found == rid
        assert blocks[0] == table.metadata_block

    def test_lookup_missing(self):
        table = self.make_table()
        rid, _ = table.lookup(1)
        assert rid is None

    def test_update_in_place(self):
        table = self.make_table()
        rid, _ = table.insert(5, {"v": 1})
        table.update(rid, {"v": 9})
        assert table.read(rid)[0] == {"v": 9}

    def test_pages_grow(self):
        table = self.make_table(records_per_page=2)
        for key in range(5):
            table.insert(key, {})
        assert table.num_pages == 3
        assert table.num_records == 5

    def test_wide_tuples_touch_span_blocks(self):
        table = self.make_table(records_per_page=2, span_blocks=3)
        rid, _ = table.insert(0, {})
        _, blocks = table.read(rid)
        assert len(blocks) == 4  # meta + 3 span blocks

    def test_secondary_index(self):
        table = self.make_table()
        index = table.add_secondary_index("aux")
        rid, _ = table.insert(1, {"v": 1})
        index.insert(500, rid)
        assert table.secondary["aux"].lookup(500) == rid


class TestLockManager:
    def make(self, buckets=8):
        return LockManager(DataSpace(), num_buckets=buckets)

    def test_acquire_returns_bucket_block(self):
        locks = self.make()
        block, conflicted = locks.acquire(1, "T", 5, SHARED)
        assert not conflicted
        assert block == locks.bucket_block("T", 5)

    def test_same_resource_same_bucket(self):
        locks = self.make()
        assert locks.bucket_block("T", 5) == locks.bucket_block("T", 5)

    def test_shared_locks_do_not_conflict(self):
        locks = self.make()
        locks.acquire(1, "T", 5, SHARED)
        _, conflicted = locks.acquire(2, "T", 5, SHARED)
        assert not conflicted

    def test_exclusive_conflicts(self):
        locks = self.make()
        locks.acquire(1, "T", 5, SHARED)
        _, conflicted = locks.acquire(2, "T", 5, EXCLUSIVE)
        assert conflicted
        assert locks.conflicts == 1

    def test_reacquire_own_lock_no_conflict(self):
        locks = self.make()
        locks.acquire(1, "T", 5, EXCLUSIVE)
        _, conflicted = locks.acquire(1, "T", 5, EXCLUSIVE)
        assert not conflicted

    def test_release_all(self):
        locks = self.make()
        locks.acquire(1, "T", 5, SHARED)
        locks.acquire(1, "U", 6, EXCLUSIVE)
        blocks = locks.release_all(1)
        assert len(blocks) == 2
        assert locks.held_by(1) == 0

    def test_release_unblocks_conflicts(self):
        locks = self.make()
        locks.acquire(1, "T", 5, EXCLUSIVE)
        locks.release_all(1)
        _, conflicted = locks.acquire(2, "T", 5, EXCLUSIVE)
        assert not conflicted

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            self.make().acquire(1, "T", 5, 7)


class TestLogManager:
    def test_append_returns_tail(self):
        log = LogManager(DataSpace(), num_blocks=4, records_per_block=2)
        blocks = log.append()
        assert blocks[0] == log.tail_block or len(blocks) > 1

    def test_tail_advances(self):
        log = LogManager(DataSpace(), num_blocks=4, records_per_block=2)
        first_tail = log.tail_block
        log.append()
        log.append()
        assert log.tail_block != first_tail

    def test_wraps_around(self):
        log = LogManager(DataSpace(), num_blocks=2, records_per_block=1)
        first = log.tail_block
        log.append()
        log.append()
        assert log.tail_block == first

    def test_counts_records(self):
        log = LogManager(DataSpace())
        for _ in range(5):
            log.append()
        assert log.records_written == 5

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            LogManager(DataSpace(), num_blocks=0)


class TestCodeLayout:
    def test_allocation_is_contiguous(self):
        layout = CodeLayout(32)
        a = layout.allocate("a", 1.0)
        b = layout.allocate("b", 0.5)
        assert b.start_block == a.end_block
        assert a.num_blocks == 32
        assert b.num_blocks == 16

    def test_idempotent_reallocation(self):
        layout = CodeLayout(32)
        a1 = layout.allocate("a", 1.0)
        a2 = layout.allocate("a", 1.0)
        assert a1 == a2

    def test_size_conflict_rejected(self):
        layout = CodeLayout(32)
        layout.allocate("a", 1.0)
        with pytest.raises(ValueError):
            layout.allocate("a", 2.0)

    def test_units_roundtrip(self):
        layout = CodeLayout(32)
        region = layout.allocate("a", 2.0)
        assert layout.units(region.num_blocks) == 2.0

    def test_contains(self):
        layout = CodeLayout(32)
        layout.allocate("a", 1.0)
        assert "a" in layout
        assert "b" not in layout

    def test_regions_sorted(self):
        layout = CodeLayout(32)
        layout.allocate("b", 1.0)
        layout.allocate("a", 1.0)
        regions = layout.regions()
        assert regions[0].name == "b"  # allocation order


class TestTraceRecorder:
    def make_recorder(self, **kwargs):
        builder = TraceBuilder(0, "T")
        rng = random.Random(11)
        return builder, TraceRecorder(builder, rng, **kwargs)

    def test_execute_walks_region(self):
        layout = CodeLayout(32)
        region = layout.allocate("f", 1.0)
        builder, recorder = self.make_recorder(skip_chunk_prob=0.0,
                                               loop_prob=0.0)
        recorder.execute(region)
        trace = builder.build()
        assert trace.unique_iblocks() == set(region.blocks())

    def test_walk_is_chunk_permuted_but_static(self):
        layout = CodeLayout(64)
        region = layout.allocate("f", 4.0)
        chunks_a = region.walk_chunks()
        chunks_b = region.walk_chunks()
        assert chunks_a == chunks_b  # a property of the code
        flat = [b for chunk in chunks_a for b in chunk]
        # Covers the whole region; static loop replays add duplicates.
        assert set(flat) == set(region.blocks())
        assert len(flat) >= region.num_blocks
        assert flat != sorted(flat)  # genuinely permuted

    def test_skips_remove_whole_chunks(self):
        layout = CodeLayout(64)
        region = layout.allocate("f", 4.0)
        builder, recorder = self.make_recorder(skip_chunk_prob=0.2,
                                               loop_prob=0.0)
        recorder.execute(region)
        touched = builder.build().unique_iblocks()
        missing = set(region.blocks()) - touched
        assert missing, "with p=0.2 over ~170 chunks some skips happen"
        # Every missing block is part of a fully skipped chunk.
        for chunk in region.walk_chunks():
            chunk_set = set(chunk)
            overlap = chunk_set & missing
            assert overlap in (set(), chunk_set)

    def test_data_points_attached(self):
        layout = CodeLayout(32)
        region = layout.allocate("f", 1.0)
        builder, recorder = self.make_recorder(skip_chunk_prob=0.0,
                                               loop_prob=0.0)
        recorder.execute(region, [(999, 1), (998, 0)])
        trace = builder.build()
        pairs = [(d, w) for _, _, d, w in trace.events() if d >= 0]
        assert (999, 1) in pairs and (998, 0) in pairs

    def test_stack_context_accesses(self):
        layout = CodeLayout(32)
        region = layout.allocate("f", 2.0)
        stack = PrivateContext(5000, 4)
        builder, recorder = self.make_recorder(
            skip_chunk_prob=0.0, loop_prob=0.0, context=stack,
            stack_prob=1.0,
        )
        recorder.execute(region)
        trace = builder.build()
        dblocks = {d for _, _, d, _ in trace.events() if d >= 0}
        assert dblocks == {5000, 5001, 5002, 5003}

    def test_touch_data_without_position_raises(self):
        _, recorder = self.make_recorder()
        with pytest.raises(RuntimeError):
            recorder.touch_data(1, 0)

    def test_touch_data_with_region_fallback(self):
        layout = CodeLayout(32)
        region = layout.allocate("f", 1.0)
        builder, recorder = self.make_recorder()
        recorder.touch_data(777, 1, region)
        trace = builder.build()
        assert trace.dblocks[0] == 777


class TestStorageManager:
    def make_sm(self):
        layout = CodeLayout(32)
        db = Database("test", layout)
        db.create_table("T")
        builder = TraceBuilder(0, "X")
        rng = random.Random(5)
        recorder = TraceRecorder(builder, rng)
        return db, builder, StorageManager(db, 0, recorder, rng)

    def test_basic_functions_allocated(self):
        layout = CodeLayout(32)
        Database("d", layout)
        for name in BASIC_FUNCTION_UNITS:
            assert name in layout

    def test_duplicate_table_rejected(self):
        db, _, _ = self.make_sm()
        with pytest.raises(ValueError):
            db.create_table("T")

    def test_insert_then_lookup(self):
        db, builder, sm = self.make_sm()
        sm.begin()
        sm.tuple_insert("T", 5, {"v": 1})
        record = sm.index_lookup("T", 5)
        sm.commit()
        assert record == {"v": 1}
        assert len(builder) > 0

    def test_lookup_missing_returns_none(self):
        _, _, sm = self.make_sm()
        sm.begin()
        assert sm.index_lookup("T", 404) is None

    def test_update_mutates(self):
        db, _, sm = self.make_sm()
        sm.begin()
        sm.tuple_insert("T", 5, {"v": 1})
        assert sm.tuple_update("T", 5, {"v": 2}) is True
        assert sm.index_lookup("T", 5) == {"v": 2}

    def test_update_missing_returns_false(self):
        _, _, sm = self.make_sm()
        sm.begin()
        assert sm.tuple_update("T", 404, {}) is False

    def test_scan_returns_records(self):
        _, _, sm = self.make_sm()
        sm.begin()
        for key in range(10):
            sm.tuple_insert("T", key, {"k": key})
        records = sm.index_scan("T", 2, 5)
        assert [r["k"] for r in records] == [2, 3, 4, 5]

    def test_commit_releases_locks(self):
        db, _, sm = self.make_sm()
        sm.begin()
        sm.tuple_insert("T", 5, {"v": 1})
        assert db.locks.held_by(0) > 0
        sm.commit()
        assert db.locks.held_by(0) == 0

    def test_trace_contains_code_and_data(self):
        _, builder, sm = self.make_sm()
        sm.begin()
        sm.tuple_insert("T", 5, {"v": 1})
        sm.commit()
        trace = builder.build()
        assert any(d >= 0 for d in trace.dblocks)
        assert all(i >= CODE_BASE_BLOCK for i in trace.iblocks)


class TestTableDelete:
    def test_delete_roundtrip(self):
        table = Table("D", DataSpace())
        rid, _ = table.insert(5, {"v": 1})
        deleted, blocks = table.delete(5)
        assert deleted
        assert table.metadata_block in blocks
        found, _ = table.lookup(5)
        assert found is None
        assert table.num_records == 0

    def test_delete_missing(self):
        table = Table("D", DataSpace())
        deleted, _ = table.delete(404)
        assert not deleted

    def test_sm_tuple_delete(self):
        layout = CodeLayout(32)
        db = Database("del", layout)
        db.create_table("T")
        builder = TraceBuilder(0, "X")
        rng = random.Random(5)
        sm = StorageManager(db, 0, TraceRecorder(builder, rng), rng)
        sm.begin()
        sm.tuple_insert("T", 5, {"v": 1})
        assert sm.tuple_delete("T", 5) is True
        assert sm.index_lookup("T", 5) is None
        assert sm.tuple_delete("T", 5) is False
        sm.commit()
