"""Tests for repro.cache.cache."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import CacheConfig


def make_cache(size=1024, assoc=4, replacement="lru", callback=None):
    return Cache(CacheConfig(size, assoc=assoc, replacement=replacement),
                 rng=random.Random(7), victim_callback=callback)


class TestBasicAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(100) is False

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(100)
        assert cache.access(100) is True

    def test_stats_count_hits_and_misses(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        assert cache.stats.miss_rate == 0.5

    def test_miss_rate_empty(self):
        assert make_cache().stats.miss_rate == 0.0

    def test_mpki(self):
        cache = make_cache()
        cache.access(1)
        assert cache.stats.mpki(2000) == 0.5

    def test_contains_does_not_touch_stats(self):
        cache = make_cache()
        cache.access(5)
        before = cache.stats.snapshot()
        assert cache.contains(5)
        assert not cache.contains(6)
        assert cache.stats.snapshot() == before

    def test_occupancy(self):
        cache = make_cache()
        for block in range(10):
            cache.access(block)
        assert cache.occupancy == 10

    def test_set_mapping_power_of_two(self):
        cache = make_cache(size=1024, assoc=4)  # 4 sets
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3


class TestEviction:
    def test_capacity_eviction(self):
        cache = make_cache(size=256, assoc=4)  # 4 blocks, 1 set
        for block in range(5):
            cache.access(block)
        assert cache.occupancy == 4
        assert cache.stats.evictions == 1
        assert not cache.contains(0)  # LRU victim

    def test_victim_callback_receives_block_and_tag(self):
        victims = []
        cache = make_cache(size=256, assoc=4,
                           callback=lambda b, t: victims.append((b, t)))
        for block in range(4):
            cache.access(block, tag=9)
        cache.access(99, tag=1)
        assert victims == [(0, 9)]

    def test_no_callback_on_invalidate(self):
        victims = []
        cache = make_cache(callback=lambda b, t: victims.append(b))
        cache.access(1)
        cache.invalidate(1)
        assert victims == []
        assert cache.stats.invalidations == 1

    def test_lru_order_respected_across_sets(self):
        cache = make_cache(size=512, assoc=4)  # 2 sets
        # Fill set 0 (even blocks).
        for block in (0, 2, 4, 6):
            cache.access(block)
        cache.access(0)  # promote
        cache.access(8)  # evicts LRU of set 0 -> block 2
        assert cache.contains(0)
        assert not cache.contains(2)


class TestTags:
    def test_access_sets_tag(self):
        cache = make_cache()
        cache.access(7, tag=3)
        assert cache.tag_of(7) == 3

    def test_hit_overwrites_tag(self):
        cache = make_cache()
        cache.access(7, tag=3)
        cache.access(7, tag=4)
        assert cache.tag_of(7) == 4

    def test_tag_of_absent_block_is_none(self):
        assert make_cache().tag_of(1) is None

    def test_set_tag(self):
        cache = make_cache()
        cache.access(7)
        assert cache.set_tag(7, 5) is True
        assert cache.tag_of(7) == 5

    def test_set_tag_absent(self):
        assert make_cache().set_tag(7, 5) is False

    def test_reset_tags(self):
        cache = make_cache()
        cache.access(1, tag=9)
        cache.access(2, tag=9)
        cache.reset_tags(0)
        assert cache.tag_of(1) == 0
        assert cache.tag_of(2) == 0


class TestFillAndProbe:
    def test_fill_installs_without_stats(self):
        cache = make_cache()
        cache.fill(11)
        assert cache.contains(11)
        assert cache.stats.accesses == 0

    def test_fill_existing_is_noop(self):
        cache = make_cache()
        cache.access(11)
        cache.fill(11, tag=5)
        assert cache.tag_of(11) == 0  # tag unchanged

    def test_probe_never_fills(self):
        cache = make_cache()
        assert cache.probe(3) is False
        assert not cache.contains(3)
        assert cache.stats.misses == 1

    def test_probe_hit_counts(self):
        cache = make_cache()
        cache.access(3)
        assert cache.probe(3) is True
        assert cache.stats.hits == 1


class TestInvalidateAndFlush:
    def test_invalidate_removes(self):
        cache = make_cache()
        cache.access(9)
        assert cache.invalidate(9) is True
        assert not cache.contains(9)

    def test_invalidate_absent(self):
        assert make_cache().invalidate(9) is False

    def test_refill_after_invalidate(self):
        cache = make_cache()
        cache.access(9)
        cache.invalidate(9)
        assert cache.access(9) is False
        assert cache.contains(9)

    def test_flush_empties(self):
        cache = make_cache()
        for block in range(8):
            cache.access(block)
        cache.flush()
        assert cache.occupancy == 0

    def test_resident_blocks(self):
        cache = make_cache()
        for block in (3, 5, 8):
            cache.access(block)
        assert set(cache.resident_blocks()) == {3, 5, 8}


@given(st.lists(st.integers(0, 200), min_size=1, max_size=500),
       st.sampled_from(["lru", "fifo", "random", "lip", "bip", "dip",
                        "srrip", "brrip"]))
@settings(max_examples=40, deadline=None)
def test_cache_invariants_any_policy(blocks, policy):
    """Properties that hold for every replacement policy:

    - occupancy never exceeds capacity;
    - a block just accessed is always resident;
    - hits + misses == accesses, evictions == misses - occupancy.
    """
    cache = make_cache(size=512, assoc=4, replacement=policy)
    capacity = cache.config.num_blocks
    for block in blocks:
        cache.access(block)
        assert cache.contains(block)
        assert cache.occupancy <= capacity
    assert cache.stats.accesses == len(blocks)
    assert cache.stats.evictions == cache.stats.misses - cache.occupancy


@given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_lru_small_working_set_always_hits_after_warmup(blocks):
    """A working set that fits in one set's ways never misses twice."""
    cache = make_cache(size=2048, assoc=8)  # 32 blocks, 4 sets
    misses_per_block = {}
    for block in blocks:
        if not cache.access(block):
            misses_per_block[block] = misses_per_block.get(block, 0) + 1
    # 31 distinct blocks over 4 sets x 8 ways: only if some set gets > 8
    # distinct blocks can a block miss twice.
    per_set = {}
    for block in set(blocks):
        per_set.setdefault(cache.set_index(block), set()).add(block)
    if all(len(s) <= 8 for s in per_set.values()):
        assert all(count == 1 for count in misses_per_block.values())
