"""Tests for the identical-transaction experiment helpers (Section 4.1
/ Fig. 4 machinery) beyond the API-level checks."""

from repro.config import tiny_scale
from repro.core.identical import identical_sweep, replicate_instances


class TestReplication:
    def test_replicas_are_independent_threads(self, tiny_tpcc):
        traces = replicate_instances(tiny_tpcc, "StockLevel",
                                     instances=2, replicas=3)
        # Shallow copies share arrays but have distinct identities and
        # ids, so the engine treats them as separate transactions.
        assert len({id(t) for t in traces}) == 6
        assert len({t.txn_id for t in traces}) == 6

    def test_adjacent_replicas_same_instance(self, tiny_tpcc):
        traces = replicate_instances(tiny_tpcc, "StockLevel",
                                     instances=2, replicas=2)
        assert traces[0].iblocks == traces[1].iblocks
        assert traces[2].iblocks == traces[3].iblocks
        # Different instances differ (data-dependent divergence).
        assert traces[0].iblocks != traces[2].iblocks


class TestSweep:
    def test_sweep_covers_all_types(self, tiny_tpcc):
        results = identical_sweep(
            {"tpcc": tiny_tpcc}, tiny_scale(num_cores=1),
            instances=2, replicas=2,
        )
        assert set(results["tpcc"]) == set(tiny_tpcc.type_names())
        for base_mpki, sync_mpki in results["tpcc"].values():
            assert base_mpki > 0
            assert sync_mpki < base_mpki
