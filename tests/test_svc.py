"""Tests for the persistent sweep service (``repro.svc``).

Three layers:

* pure-filesystem units — the bounded priority queue and the affinity
  router need no processes at all;
* the client protocol — submit/status are file-only, so they are
  exercised with no supervisor alive (durable queued jobs, absent
  service status);
* the live service — a real supervisor + worker fleet forked from the
  test process.  These are the load-bearing tests: a served grid must
  be *byte-identical* to the same grid run by a solo
  :class:`~repro.exp.runner.Runner` (the service's core contract), a
  warm resubmission must be all cache hits, and a SIGKILLed worker
  must be restarted with its claimed cell re-queued — with the final
  bytes still identical.

The live tests rely on the ``fork`` start method (like the fault
tests in ``test_exp_faults.py``): monkeypatched module state is
inherited by the supervisor and its workers, so crash faults fire
inside real worker processes.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

import repro.exp.runner as runner_mod
from repro.__main__ import main
from repro.sim import batch
from repro.exp import (
    Manifest,
    ResultCache,
    RunSpec,
    Runner,
    SweepSpec,
    execute_spec,
    spec_key,
)
from repro.svc import (
    JobQueue,
    QueueFull,
    Supervisor,
    affinity_identity,
    format_status,
    read_job,
    route,
    service_status,
    submit_job,
    svc_root_for,
    wait_job,
)
from repro.svc.supervisor import read_state
from repro.svc.worker import worker_dir

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="live-service tests need fork-inherited state")


def tiny_spec(**overrides) -> RunSpec:
    defaults = dict(workload="tpcc", scheduler="base", cores=2,
                    transactions=4, seed=7, scale="tiny")
    defaults.update(overrides)
    return RunSpec(**defaults)


def small_grid():
    """Four tiny cells: base and strex at one and two cores.

    The base cells are batch-record/replay eligible, the strex cells
    are not — so a ``--repeat 3`` job replays exactly the base cells
    and the per-worker replay assertions can be derived from the
    affinity routing.
    """
    return [tiny_spec(scheduler=scheduler, cores=cores)
            for scheduler in ("base", "strex") for cores in (1, 2)]


def cache_blobs(root):
    """Every cache entry's raw bytes, keyed by cache key."""
    cache = ResultCache(root)
    return {key: cache.read_bytes(key) for key in cache.keys()}


# ---------------------------------------------------------------------
# Queue units
# ---------------------------------------------------------------------

class TestJobQueue:
    def test_priority_then_fifo_order(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit({"n": "a"}, priority=5)
        queue.submit({"n": "b"}, priority=1)
        queue.submit({"n": "c"}, priority=5)
        order = [queue.claim_next()[1]["n"] for _ in range(3)]
        assert order == ["b", "a", "c"]
        assert queue.claim_next() is None

    def test_capacity_backpressure(self, tmp_path):
        queue = JobQueue(tmp_path / "q", capacity=2)
        queue.submit({})
        queue.submit({})
        with pytest.raises(QueueFull, match="capacity 2"):
            queue.submit({})
        start = time.monotonic()
        with pytest.raises(QueueFull):
            queue.submit({}, block=True, timeout=0.2, poll=0.02)
        assert time.monotonic() - start >= 0.2
        queue.claim_next()  # consumer frees a slot
        queue.submit({})

    def test_depth_and_discard(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        assert queue.depth() == 0
        job_id = queue.submit({})
        assert queue.depth() == 1
        assert queue.discard(job_id) is True
        assert queue.depth() == 0
        assert queue.claim_next() is None

    def test_priority_must_be_a_single_digit(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        with pytest.raises(ValueError, match="priority"):
            queue.submit({}, priority=10)
        with pytest.raises(ValueError, match="priority"):
            queue.submit({}, priority=-1)

    def test_capacity_is_published_to_other_processes(self, tmp_path):
        server = JobQueue(tmp_path / "q", capacity=7)
        server.persist_capacity()
        client = JobQueue(tmp_path / "q")  # no explicit capacity
        assert client.capacity == 7


# ---------------------------------------------------------------------
# Affinity routing
# ---------------------------------------------------------------------

class TestAffinity:
    def test_identity_is_a_stable_digest(self):
        spec = tiny_spec(scheduler="strex")
        first = affinity_identity(spec)
        assert first == affinity_identity(tiny_spec(scheduler="strex"))
        assert len(first) == 64
        int(first, 16)  # hex

    def test_route_is_deterministic_and_in_range(self):
        specs = [tiny_spec(seed=seed, scheduler=scheduler)
                 for seed in range(1, 5)
                 for scheduler in ("base", "strex")]
        for spec in specs:
            index = route(spec, 3)
            assert 0 <= index < 3
            assert route(spec, 3) == index

    def test_prefetcher_variants_share_a_worker(self):
        """The prefetcher changes the simulation but not the traces or
        run tables, so prefetcher variants of one cell share warm
        state — the router deliberately ignores it."""
        assert affinity_identity(tiny_spec()) == \
            affinity_identity(tiny_spec(prefetcher="pif"))

    def test_scheduler_changes_the_identity(self):
        assert affinity_identity(tiny_spec()) != \
            affinity_identity(tiny_spec(scheduler="strex"))

    def test_trace_fields_change_the_identity(self):
        assert affinity_identity(tiny_spec(seed=1)) != \
            affinity_identity(tiny_spec(seed=2))


# ---------------------------------------------------------------------
# Client protocol without a supervisor
# ---------------------------------------------------------------------

class TestClientOffline:
    def test_submission_is_durable_and_visible(self, tmp_path):
        root = svc_root_for(tmp_path / "cache")
        job_id = submit_job(root, [tiny_spec()], priority=3)
        record = read_job(root, job_id)
        assert record["state"] == "queued"
        assert record["priority"] == 3
        assert len(record["specs"]) == 1
        status = service_status(root)
        assert status["supervisor"]["alive"] is False
        assert status["supervisor"]["state"] == "absent"
        assert status["queue"]["pending"] == 1
        assert status["jobs"]["queued"] == 1
        text = format_status(status)
        assert "1 queued" in text
        assert "1 pending" in text

    def test_sweepspec_is_expanded_client_side(self, tmp_path):
        root = tmp_path / "svc"
        sweep = SweepSpec(workloads=("tpcc",), schedulers=("base",),
                          cores=(1, 2), seeds=(7,), scales=("tiny",),
                          transactions=4)
        job_id = submit_job(root, sweep)
        assert len(read_job(root, job_id)["specs"]) == 2

    def test_empty_job_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no cells"):
            submit_job(tmp_path / "svc", [])

    def test_bad_repeat_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="repeat"):
            submit_job(tmp_path / "svc", [tiny_spec()], repeat=0)

    def test_invalid_cell_is_rejected_at_submit_time(self, tmp_path):
        bad = tiny_spec(scheduler="strex", team_size=0)
        with pytest.raises(ValueError, match="is invalid"):
            submit_job(tmp_path / "svc", [bad])
        assert not (tmp_path / "svc" / "jobs").exists()

    def test_wait_times_out_on_an_unserved_job(self, tmp_path):
        root = tmp_path / "svc"
        job_id = submit_job(root, [tiny_spec()])
        with pytest.raises(TimeoutError, match="queued"):
            wait_job(root, job_id, timeout=0.2, poll=0.02)

    def test_status_on_a_never_used_directory(self, tmp_path):
        status = service_status(tmp_path / "svc")
        assert status["supervisor"]["state"] == "absent"
        assert status["queue"]["pending"] == 0
        assert status["job_list"] == []
        assert status["warm"]["rate"] is None


# ---------------------------------------------------------------------
# Live service
# ---------------------------------------------------------------------

def _serve_entry(cache_dir: str, workers: int) -> None:
    """Forked supervisor entry: fast polling, test-sized timeouts."""
    Supervisor(Path(cache_dir), workers=workers,
               poll_interval=0.01, heartbeat_interval=0.05,
               heartbeat_timeout=5.0).serve()


@contextlib.contextmanager
def service(cache_dir: Path, workers: int = 2):
    """A live service on ``cache_dir``; SIGTERM-drained on exit."""
    context = multiprocessing.get_context("fork")
    process = context.Process(target=_serve_entry,
                              args=(str(cache_dir), workers))
    process.start()
    root = svc_root_for(cache_dir)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        state = read_state(root)
        if state and state.get("state") == "serving" \
                and state.get("pid") == process.pid:
            break
        time.sleep(0.02)
    else:  # pragma: no cover - startup wedge
        process.kill()
        process.join()
        pytest.fail("supervisor never reached the serving state")
    try:
        yield root, process
    finally:
        if process.is_alive():
            os.kill(process.pid, signal.SIGTERM)
        process.join(60.0)
        if process.is_alive():  # pragma: no cover - drain wedge
            process.kill()
            process.join()


def _sigkill_first_execution(marker_path):
    """An ``execute_spec`` stand-in: the first execution anywhere in
    the worker fleet (marker claimed with O_EXCL) SIGKILLs its own
    worker process mid-cell."""
    real = execute_spec

    def killing(spec):
        try:
            fd = os.open(marker_path, os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return real(spec)
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)

    return killing


@needs_fork
class TestServiceDifferential:
    def test_served_grid_is_byte_identical_to_a_solo_run(
            self, tmp_path):
        """The core contract end to end: a repeat-primed served job
        executes every cell, replays batches on the base cells, leaves
        the cache byte-identical to a solo Runner's, and a warm
        resubmission is 100% cache hits settled without a worker."""
        specs = small_grid()
        served_root = tmp_path / "served"
        # The workers fork from this process, so any batch-registry
        # sightings accumulated here (by earlier tests or a solo run)
        # would skew their replay counts — not their bytes.  Start
        # them cold and run the solo reference *after* the service.
        batch.reset_registry()
        with service(served_root, workers=2) as (root, _process):
            job_id = submit_job(root, specs, repeat=3)
            record = wait_job(root, job_id, timeout=300.0)
            assert record["state"] == "done"
            assert record["done"] == len(specs)
            assert record["executed"] == len(specs)
            assert record["cache_hits"] == 0
            # repeat=3 walks each base cell through sight → record →
            # replay; strex cells are batch-ineligible by design.
            base_cells = sum(1 for s in specs if s.scheduler == "base")
            assert record["batch_replays"] == base_cells
            assert record["warm_hits"] == base_cells
            assert record["warm_rate"] == pytest.approx(
                base_cells / len(specs))

            warm_id = submit_job(root, specs)
            warm = wait_job(root, warm_id, timeout=60.0)
            assert warm["state"] == "done"
            assert warm["cache_hits"] == len(specs)
            assert warm["executed"] == 0
            assert warm["warm_rate"] == 1.0
            # Precached cells are settled by the supervisor itself.
            assert all(cell["worker"] is None
                       for cell in warm["cells"].values())

            # Affinity pins each base cell's replays to its worker.
            # Heartbeats are periodic, so give the counters one beat
            # to land before asserting on them.
            replay_workers = {route(s, 2) for s in specs
                              if s.scheduler == "base"}
            deadline = time.monotonic() + 5.0
            while True:
                status = service_status(root)
                if all(status["workers"][i]["batch_replays"] >= 1
                       for i in replay_workers) \
                        or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert status["supervisor"]["alive"] is True
            assert status["jobs"]["done"] == 2
            for index in replay_workers:
                assert status["workers"][index]["batch_replays"] >= 1

        # Drained: the supervisor exited 0 and published its state.
        assert read_state(root)["state"] == "stopped"

        solo_root = tmp_path / "solo"
        Runner(cache=ResultCache(solo_root)).run(specs)
        blobs = cache_blobs(served_root)
        assert blobs == cache_blobs(solo_root)
        assert len(blobs) == len(specs)

        # The shared manifest saw one executed row per cell plus one
        # hit row per warm-resubmitted cell.
        rows = Manifest(served_root / "manifest.jsonl").read()
        keys = sorted(spec_key(spec) for spec in specs)
        assert sorted(r.key for r in rows if not r.hit) == keys
        assert sorted(r.key for r in rows if r.hit) == keys

    def test_submission_before_serve_is_admitted(self, tmp_path):
        """Queued jobs are durable: a job submitted with no service
        alive runs as soon as one starts."""
        cache_dir = tmp_path / "cache"
        root = svc_root_for(cache_dir)
        job_id = submit_job(root, [tiny_spec()])
        assert read_job(root, job_id)["state"] == "queued"
        with service(cache_dir, workers=1):
            record = wait_job(root, job_id, timeout=120.0)
        assert record["state"] == "done"
        assert record["executed"] == 1
        assert ResultCache(cache_dir).get(spec_key(tiny_spec())) \
            is not None


@needs_fork
class TestServiceCrashPaths:
    def test_sigkilled_worker_is_restarted_and_the_cell_requeued(
            self, tmp_path, monkeypatch):
        """A worker SIGKILLed mid-cell leaves its claim behind; the
        supervisor restarts the worker, re-queues the cell with a
        bumped attempt count, and the job still finishes with bytes
        identical to a solo run."""
        specs = small_grid()
        solo_root = tmp_path / "solo"
        Runner(cache=ResultCache(solo_root)).run(specs)

        monkeypatch.setattr(
            runner_mod, "execute_spec",
            _sigkill_first_execution(str(tmp_path / "killed")))
        served_root = tmp_path / "served"
        with service(served_root, workers=2) as (root, _process):
            job_id = submit_job(root, specs)
            record = wait_job(root, job_id, timeout=300.0)
            assert os.path.exists(tmp_path / "killed")
            assert record["state"] == "done"
            assert record["executed"] == len(specs)
            # Exactly one cell needed a second attempt.
            attempts = sorted(cell["attempts"]
                              for cell in record["cells"].values())
            assert attempts == [1] * (len(specs) - 1) + [2]
            # The supervisor's state file (which carries the restart
            # counters) is rewritten on a throttle; poll briefly.
            deadline = time.monotonic() + 5.0
            while True:
                status = service_status(root)
                restarts = sum(w["restarts"]
                               for w in status["workers"])
                if restarts >= 1 or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert restarts >= 1
        assert cache_blobs(served_root) == cache_blobs(solo_root)

    def test_dead_worker_spool_is_recovered_on_restart(self, tmp_path):
        """A cell file stranded in a ``running/`` spool (its claimant
        and supervisor both long gone) is re-routed on the next serve
        with its attempt count bumped, and the job completes."""
        cache_dir = tmp_path / "cache"
        root = svc_root_for(cache_dir)
        spec = tiny_spec()
        job_id = submit_job(root, [spec])
        # Fabricate the aftermath of a crash: the job was admitted
        # (record says running, queue drained) and the cell was
        # claimed by a worker that died with it.
        record = read_job(root, job_id)
        cell_id = f"{job_id}.0000"
        record.update(state="running", cells={cell_id: {
            "key": spec_key(spec), "worker": 0, "status": "pending",
            "hit": False, "warm": False, "batch_replays": 0,
            "wall_s": 0.0, "attempts": 1, "error": None,
        }})
        from repro.svc.queue import _atomic_write_json
        _atomic_write_json(root / "jobs" / f"{job_id}.json", record)
        JobQueue(root / "queue").discard(job_id)
        stranded = worker_dir(root, 0) / "running"
        _atomic_write_json(
            stranded / f"p5-{0:020d}-{cell_id}.json",
            {"cell": cell_id, "job": job_id, "key": spec_key(spec),
             "spec": spec.to_dict(), "repeat": 1, "force": False,
             "attempts": 1, "priority": 5, "enqueued_s": 0.0})

        with service(cache_dir, workers=1):
            done = wait_job(root, job_id, timeout=120.0)
        assert done["state"] == "done"
        assert done["cells"][cell_id]["attempts"] == 2
        assert not list(stranded.glob("p*.json"))

    def test_second_supervisor_is_refused(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with service(cache_dir, workers=1):
            with pytest.raises(RuntimeError, match="already serving"):
                Supervisor(cache_dir, workers=1).serve()


# ---------------------------------------------------------------------
# Service files stay invisible to the result cache
# ---------------------------------------------------------------------

class TestServiceCacheIsolation:
    def test_svc_files_never_alias_cache_entries(self, tmp_path):
        """Everything the service writes lives at depth >= 3 under the
        cache root, so the cache's two-level ``*/*.json`` entry glob
        can never pick a service file up as a result."""
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        spec = tiny_spec()
        key = spec_key(spec)
        cache.put(key, execute_spec(spec), spec)
        root = svc_root_for(cache_dir)
        submit_job(root, [spec])  # queue file + job record
        assert sorted(cache.keys()) == [key]


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------

class TestServiceCli:
    GRID = ["--workloads", "tpcc", "--schedulers", "base",
            "--cores", "1", "--seeds", "7", "--scales", "tiny",
            "--transactions", "4"]

    def test_submit_enqueues_without_a_server(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(["submit", *self.GRID,
                     "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted job" in out
        assert "1 cell(s)" in out
        root = svc_root_for(cache_dir)
        status = service_status(root)
        assert status["queue"]["pending"] == 1
        assert status["jobs"]["queued"] == 1

    def test_submit_reports_a_full_queue(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        root = svc_root_for(cache_dir)
        JobQueue(root / "queue", capacity=1).persist_capacity()
        assert main(["submit", *self.GRID,
                     "--cache-dir", str(cache_dir)]) == 0
        code = main(["submit", *self.GRID,
                     "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "queue full" in out

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(["submit", *self.GRID, "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        code = main(["status", "--cache-dir", str(cache_dir),
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        status = json.loads(out)
        assert status["supervisor"]["alive"] is False
        assert status["queue"]["pending"] == 1
        assert status["jobs"]["queued"] == 1

    def test_status_text_on_an_empty_service(self, tmp_path, capsys):
        code = main(["status", "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "supervisor: absent" in out

    def test_submit_rejects_a_bad_priority(self, tmp_path, capsys):
        code = main(["submit", *self.GRID,
                     "--cache-dir", str(tmp_path / "cache"),
                     "--priority", "11"])
        assert code == 2
        assert "priority" in capsys.readouterr().err

    def test_submit_rejects_an_invalid_cell(self, tmp_path, capsys):
        code = main(["submit",
                     "--workloads", "tpcc", "--schedulers", "strex",
                     "--team-size", "0", "--cores", "2",
                     "--scales", "tiny", "--transactions", "4",
                     "--cache-dir", str(tmp_path / "cache")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "is invalid" in err
