"""Tests for the SLICC migration scheduler."""

from repro.config import tiny_scale
from repro.sched.base import BaselineScheduler
from repro.sched.slicc import SliccScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, ilen=10, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, ilen)
    return builder.build()


def make_engine(traces, cores=4):
    config = tiny_scale(num_cores=cores)
    return SimulationEngine(config, traces, SliccScheduler)


class TestPlacement:
    def test_same_type_threads_enter_same_core(self):
        traces = [synthetic_trace(i, [1], txn_type="A") for i in range(4)]
        engine = make_engine(traces)
        scheduler = engine.scheduler
        scheduler.start()
        entry = scheduler._entry_core(engine.threads[0])
        assert len(scheduler._queues[entry]) == 4

    def test_different_types_different_entries(self):
        traces = [synthetic_trace(i, [1], txn_type=t)
                  for i, t in enumerate("ABCD")]
        engine = make_engine(traces, cores=4)
        scheduler = engine.scheduler
        entries = {scheduler._entry_core(t) for t in engine.threads}
        assert len(entries) == 4

    def test_active_cap_is_two_n(self):
        traces = [synthetic_trace(i, [2000 + j for j in range(10)])
                  for i in range(20)]
        engine = make_engine(traces, cores=2)
        scheduler = engine.scheduler
        scheduler.start()
        assert scheduler._active == 4  # 2N
        assert len(scheduler._pool) == 16


class TestMigration:
    def test_expansion_spreads_segments(self):
        """One long transaction (4 cache-fulls) expands across cores."""
        blocks = [2000 + i for i in range(128)]  # 4x the 32-block L1-I
        engine = make_engine([synthetic_trace(0, blocks)], cores=4)
        result = engine.run("x")
        assert result.migrations >= 2
        filled_cores = sum(
            1 for cache in engine.hier.l1i if cache.occupancy > 0
        )
        assert filled_cores >= 3

    def test_follower_reuses_pipeline(self):
        """Fig. 3(c): followers find segments the lead laid out."""
        blocks = [2000 + i for i in range(128)]
        traces = [synthetic_trace(i, blocks) for i in range(6)]
        engine = make_engine(traces, cores=4)
        result = engine.run("x")
        solo_misses = 128
        # Followers should hit most of the pipeline: total misses are
        # far below 6 cold runs.
        assert result.i_misses < solo_misses * 6 * 0.6

    def test_two_cores_strex_beats_slicc(self, tiny_tpcc):
        """Section 5.3: when the core count is too small for the
        aggregate L1-I to hold the workload footprint, STREX
        outperforms SLICC."""
        from repro.sched.strex import StrexScheduler
        traces = tiny_tpcc.generate_mix(16, seed=29)
        config = tiny_scale(num_cores=2)
        base = SimulationEngine(config, traces, BaselineScheduler).run("x")
        slicc = SimulationEngine(config, traces, SliccScheduler).run("x")
        strex = SimulationEngine(config, traces, StrexScheduler).run("x")
        assert strex.relative_throughput(base) > \
            slicc.relative_throughput(base)

    def test_migration_cost_charged(self):
        blocks = [2000 + i for i in range(128)]
        engine = make_engine([synthetic_trace(0, blocks)], cores=4)
        result = engine.run("x")
        base_engine = SimulationEngine(
            tiny_scale(num_cores=1), [synthetic_trace(0, blocks)],
            BaselineScheduler,
        )
        base = base_engine.run("x")
        assert result.busy_cycles > base.busy_cycles

    def test_thread_recent_misses_bounded(self):
        blocks = [2000 + i for i in range(200)]
        engine = make_engine([synthetic_trace(0, blocks)], cores=4)
        engine.run("x")
        probe = SliccScheduler.PROBE_BLOCKS
        assert all(len(t.recent_misses) <= probe
                   for t in engine.threads)

    def test_all_finish_under_migration(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(12, seed=17)
        engine = make_engine(traces, cores=4)
        result = engine.run("x")
        assert result.transactions == 12
        assert len(result.latencies) == 12


class TestWorkStealing:
    def test_unstarted_threads_spread_to_idle_cores(self):
        """Threads that never burst (tiny footprint) still parallelize
        via OS-style balancing of not-yet-started threads."""
        blocks = [2000 + i for i in range(8)]  # fits L1-I
        traces = [synthetic_trace(i, blocks * 20, txn_type="M")
                  for i in range(8)]
        engine = make_engine(traces, cores=4)
        engine.run("x")
        busy = sum(1 for t in engine.core_time if t > 0)
        assert busy >= 3

    def test_mid_flight_threads_not_stolen(self):
        """Only pos == 0 threads are eligible for stealing."""
        blocks = [2000 + i for i in range(8)]
        traces = [synthetic_trace(i, blocks * 4) for i in range(3)]
        engine = make_engine(traces, cores=2)
        scheduler = engine.scheduler
        scheduler.start()
        entry = scheduler._entry_core(engine.threads[0])
        # Run the head thread a little so it has position > 0.
        engine.run_events(entry, scheduler._queues[entry][0], 4)
        scheduler._steal_to_idle(entry)
        stolen_cores = [
            c for c in range(2)
            if c != entry and scheduler._queues[c]
        ]
        if stolen_cores:
            stolen = scheduler._queues[stolen_cores[0]][0]
            assert stolen.pos == 0


class TestSignatureMatching:
    def test_matched_target_requires_threshold(self):
        traces = [synthetic_trace(0, [2000])]
        engine = make_engine(traces, cores=4)
        scheduler = engine.scheduler
        thread = engine.threads[0]
        thread.recent_misses = [3000 + i for i in range(8)]
        # No core holds those blocks: no match.
        assert scheduler._matched_target(0, thread) is None

    def test_matched_target_finds_holder(self):
        traces = [synthetic_trace(0, [2000])]
        engine = make_engine(traces, cores=4)
        scheduler = engine.scheduler
        thread = engine.threads[0]
        probe_blocks = [3000 + i for i in range(8)]
        for block in probe_blocks:
            engine.hier.l1i[2].fill(block)
        thread.recent_misses = list(probe_blocks)
        assert scheduler._matched_target(0, thread) == 2

    def test_empty_probe_no_target(self):
        traces = [synthetic_trace(0, [2000])]
        engine = make_engine(traces, cores=4)
        thread = engine.threads[0]
        thread.recent_misses = []
        assert engine.scheduler._matched_target(0, thread) is None

    def test_partial_match_below_threshold_ignored(self):
        traces = [synthetic_trace(0, [2000])]
        engine = make_engine(traces, cores=4)
        scheduler = engine.scheduler
        thread = engine.threads[0]
        probe_blocks = [3000 + i for i in range(8)]
        for block in probe_blocks[:2]:  # 25% < 50% threshold
            engine.hier.l1i[2].fill(block)
        thread.recent_misses = list(probe_blocks)
        assert scheduler._matched_target(0, thread) is None
