"""Tests for the simulate() API and end-to-end integration shapes."""

import pytest

from repro import SCHEDULERS, simulate, tiny_scale
from repro.core.identical import compare_identical, replicate_instances
from repro.sim.api import PREFETCHERS


class TestApi:
    def test_all_schedulers_run(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(8, seed=71)
        config = tiny_scale(num_cores=2)
        for name in SCHEDULERS:
            result = simulate(config, traces, name, "x")
            assert result.transactions == 8

    def test_all_prefetchers_run(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(6, seed=72)
        config = tiny_scale(num_cores=2)
        for name in PREFETCHERS:
            result = simulate(config, traces, "base", "x",
                              prefetcher=name)
            assert result.transactions == 6

    def test_unknown_scheduler_rejected(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(2, seed=73)
        with pytest.raises(ValueError, match="unknown scheduler"):
            simulate(tiny_scale(), traces, "fancy")

    def test_unknown_scheduler_message_lists_choices(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(2, seed=73)
        with pytest.raises(ValueError) as excinfo:
            simulate(tiny_scale(), traces, "fancy")
        message = str(excinfo.value)
        for name in SCHEDULERS:
            assert name in message

    def test_unknown_prefetcher_rejected(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(2, seed=74)
        with pytest.raises(ValueError, match="unknown prefetcher"):
            simulate(tiny_scale(), traces, "base", prefetcher="magic")

    def test_unknown_prefetcher_message_lists_choices(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(2, seed=74)
        with pytest.raises(ValueError) as excinfo:
            simulate(tiny_scale(), traces, "base", prefetcher="magic")
        message = str(excinfo.value)
        for name in PREFETCHERS:
            assert name in message

    def test_team_size_rejected_for_non_team_scheduler(self, tiny_tpcc):
        """team_size used to be silently ignored for e.g. 'base'."""
        traces = tiny_tpcc.generate_mix(2, seed=78)
        for scheduler in ("base", "slicc", "smt"):
            with pytest.raises(ValueError, match="team_size"):
                simulate(tiny_scale(), traces, scheduler, team_size=4)

    def test_team_size_threads_through_hybrid(self, tiny_tpcc):
        """On a small system the hybrid picks STREX, so the team-size
        override must change behaviour just as it does for 'strex'."""
        traces = tiny_tpcc.generate_uniform("Payment", 8, seed=79)
        config = tiny_scale(num_cores=1)
        small = simulate(config, traces, "hybrid", team_size=2)
        large = simulate(config, traces, "hybrid", team_size=8)
        strex_small = simulate(config, traces, "strex", team_size=2)
        assert small.transactions == large.transactions == 8
        assert large.mean_latency > small.mean_latency
        assert small.cycles == strex_small.cycles

    def test_team_size_override(self, tiny_tpcc):
        traces = tiny_tpcc.generate_uniform("Payment", 8, seed=75)
        config = tiny_scale(num_cores=1)
        small = simulate(config, traces, "strex", team_size=2)
        large = simulate(config, traces, "strex", team_size=8)
        assert small.transactions == large.transactions == 8
        # Larger teams stretch mean per-transaction latency: with teams
        # of two, early teams finish long before the batch ends.
        assert large.mean_latency > small.mean_latency

    def test_deterministic_runs(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(6, seed=76)
        config = tiny_scale(num_cores=2)
        a = simulate(config, traces, "strex", "x")
        # Re-simulating the same traces must give identical results
        # (fresh engine, same seeds).
        for thread_trace in traces:
            thread_trace_pos = 0  # traces are not mutated by replay
        b = simulate(config, traces, "strex", "x")
        assert a.cycles == b.cycles
        assert a.i_misses == b.i_misses
        assert a.latencies == b.latencies

    def test_replay_does_not_mutate_traces(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(4, seed=77)
        before = [list(t.iblocks) for t in traces]
        simulate(tiny_scale(num_cores=2), traces, "slicc", "x")
        after = [list(t.iblocks) for t in traces]
        assert before == after


class TestHeadlineShapes:
    """The paper's headline behaviours, on the tiny system."""

    def test_strex_beats_base_on_oltp(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(16, seed=81)
        config = tiny_scale(num_cores=2)
        base = simulate(config, traces, "base", "x")
        strex = simulate(config, traces, "strex", "x")
        assert strex.i_mpki < base.i_mpki * 0.85
        assert strex.relative_throughput(base) > 1.0

    def test_strex_insensitive_to_cores(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(24, seed=82)
        mpki = []
        for cores in (1, 2, 4):
            result = simulate(tiny_scale(num_cores=cores), traces,
                              "strex", "x")
            mpki.append(result.i_mpki)
        assert max(mpki) - min(mpki) < 0.15 * max(mpki)

    def test_tpce_strex_benefit(self, tiny_tpce):
        traces = tiny_tpce.generate_mix(16, seed=83)
        config = tiny_scale(num_cores=2)
        base = simulate(config, traces, "base", "x")
        strex = simulate(config, traces, "strex", "x")
        assert strex.i_mpki < base.i_mpki * 0.9

    def test_mapreduce_unaffected(self, tiny_mapreduce):
        traces = tiny_mapreduce.generate_mix(12, seed=84)
        config = tiny_scale(num_cores=2)
        base = simulate(config, traces, "base", "x")
        strex = simulate(config, traces, "strex", "x")
        slicc = simulate(config, traces, "slicc", "x")
        assert strex.i_mpki == pytest.approx(base.i_mpki, abs=0.1)
        assert 0.9 < strex.relative_throughput(base) < 1.1
        assert 0.9 < slicc.relative_throughput(base) < 1.1


class TestIdenticalModule:
    def test_replication_counts(self, tiny_tpcc):
        traces = replicate_instances(tiny_tpcc, "Payment",
                                     instances=3, replicas=4)
        assert len(traces) == 12
        ids = [t.txn_id for t in traces]
        assert ids == list(range(12))
        # Replicas of one instance share the identical block stream.
        assert traces[0].iblocks == traces[1].iblocks
        assert traces[0].iblocks is traces[1].iblocks  # shallow copy

    def test_compare_identical_reduces_mpki(self, tiny_tpcc):
        base, sync = compare_identical(
            tiny_tpcc, "Payment", tiny_scale(num_cores=1),
            instances=3, replicas=4, team_size=4,
        )
        # On the 32-block tiny cache the lead's segment overshoot
        # cascades through the LRU sets, so the reduction is smaller
        # than at realistic cache sizes (the Fig. 4 bench checks the
        # full effect at default scale).
        assert sync.i_mpki < base.i_mpki * 0.7
        assert base.transactions == sync.transactions == 12
