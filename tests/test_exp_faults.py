"""Hardening tests for the ``repro.exp`` harness: golden cache keys,
deterministic fault injection against the worker pool, cache-corruption
recovery, and code-fingerprint sensitivity.

The fault-injection tests monkeypatch ``repro.exp.runner.execute_spec``
and rely on the Linux ``fork`` start method: pool workers inherit the
patched module state, so faults fire *inside* real worker processes.
Cross-attempt state (how many times a fault has fired) lives in files
under ``tmp_path`` because each attempt may land in a different
process.  Everything is deterministic — no sleeps beyond the wedged-run
fixtures, and those are cut short by the in-worker alarm.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings

import pytest

import signal

import repro
import repro.exp.cache as cache_mod
import repro.exp.runner as runner_mod
from repro.exp import (
    CACHE_SCHEMA,
    Manifest,
    ResultCache,
    RunError,
    RunSpec,
    Runner,
    ShardFailure,
    SimTimeoutError,
    code_fingerprint,
    execute_spec,
    partition,
    run_all_shards,
    spec_key,
)

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="fault injection needs fork-inherited monkeypatches")


def tiny_spec(**overrides) -> RunSpec:
    defaults = dict(workload="tpcc", scheduler="base", cores=2,
                    transactions=4, seed=7, scale="tiny")
    defaults.update(overrides)
    return RunSpec(**defaults)


# ---------------------------------------------------------------------
# Golden cache keys
# ---------------------------------------------------------------------

#: Sentinel source fingerprint: golden keys must not depend on the
#: current source tree (every commit would invalidate them), only on
#: the key *schema* — which is exactly what they are meant to pin.
FROZEN_FINGERPRINT = "f" * 64

#: Pinned keys for a fixture of specs.  If one of these changes,
#: either the key schema changed on purpose (bump ``CACHE_SCHEMA``,
#: re-pin, and mention it in DESIGN.md) or a refactor changed keys by
#: accident and every user's cache would silently go cold.
GOLDEN_KEYS = {
    "base": (
        tiny_spec(),
        "71738ba058212463aedf8f97efebf62911dad3968d46f7075636df59fc271f09",
    ),
    "strex_team": (
        tiny_spec(scheduler="strex", team_size=4),
        "6cf7156804420987eee0c38b3e5dd078313af972bfe45cf8bd11955a6f0f2ff5",
    ),
    "strex_ablation": (
        tiny_spec(scheduler="strex", strex_overrides={"phase_bits": 2}),
        "251e40e68da0d909adcdae67a82576f55a41fc242ecc2b39e6c2b6c3ef548e13",
    ),
    "cache_override": (
        tiny_spec(cache_overrides={"assoc": 2}),
        "f92cfc6f3e440db7c20c9af3b29e5fec13436ec9ced60bf2d2df527770169d78",
    ),
    "overlap": (
        tiny_spec(mode="overlap", txn_type="NewOrder"),
        "34a6cc9bba2ea6d69f0c080d219d02683be38504957756b52e0706515ee0c1cc",
    ),
    "fptable": (
        tiny_spec(mode="fptable", transactions=3),
        "73bb1a481ba1a14308eb8b94e72a2120a78a3f6d75cf35a0991dd061f642622f",
    ),
    "paper_scale": (
        tiny_spec(workload="tpce", scale="default", replacement="bip"),
        "713f3211b285aff8827764bc45e8747d9ce45b1301c07c8e015e1465ba40a4da",
    ),
}


@pytest.fixture
def frozen_fingerprint(monkeypatch):
    monkeypatch.setattr(cache_mod, "_code_fingerprint",
                        FROZEN_FINGERPRINT)


class TestGoldenKeys:
    def test_fixture_keys_are_pinned(self, frozen_fingerprint):
        observed = {name: spec_key(spec)
                    for name, (spec, _) in GOLDEN_KEYS.items()}
        expected = {name: key
                    for name, (_, key) in GOLDEN_KEYS.items()}
        assert observed == expected

    def test_override_changes_the_key(self, frozen_fingerprint):
        plain = spec_key(tiny_spec(scheduler="strex"))
        ablated = spec_key(tiny_spec(scheduler="strex",
                                     strex_overrides={"phase_bits": 2}))
        assert plain != ablated

    def test_empty_overrides_equal_no_overrides(self, frozen_fingerprint):
        bare = tiny_spec(scheduler="strex")
        empty = tiny_spec(scheduler="strex", strex_overrides={})
        assert empty == bare
        assert empty.strex_overrides is None
        assert spec_key(empty) == spec_key(bare)

    def test_default_valued_override_shares_the_key(
            self, frozen_fingerprint):
        """The expanded config is hashed, so spelling out a default
        addresses the same content as not overriding at all."""
        bare = tiny_spec(scheduler="strex")
        spelled = tiny_spec(scheduler="strex",
                            strex_overrides={"window": 30})
        assert spelled != bare  # different specs...
        assert spec_key(spelled) == spec_key(bare)  # ...same content


# ---------------------------------------------------------------------
# Fault injection against the worker pool
# ---------------------------------------------------------------------

def _flaky_until(counter_path, failures, flaky_seed):
    """An ``execute_spec`` stand-in that raises ``OSError`` the first
    ``failures`` times it sees the spec with ``flaky_seed``."""
    real = execute_spec

    def flaky(spec):
        if spec.seed == flaky_seed:
            with open(counter_path, "ab") as handle:
                handle.write(b"x")
            if os.path.getsize(counter_path) <= failures:
                raise OSError("injected transient failure")
        return real(spec)

    return flaky


def _die_once(marker_path):
    """An ``execute_spec`` stand-in whose first caller (across all
    worker processes — the marker file is claimed with O_EXCL) kills
    its own process without cleanup, breaking the pool."""
    real = execute_spec

    def dying(spec):
        try:
            fd = os.open(marker_path, os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return real(spec)
        os.close(fd)
        os._exit(1)

    return dying


@needs_fork
class TestPoolFaults:
    def test_worker_retry_until_success(self, tmp_path, monkeypatch):
        """A spec that fails transiently N times inside real workers is
        retried and ultimately succeeds; the manifest records the
        attempt count."""
        flaky_seed = 111
        specs = [tiny_spec(seed=flaky_seed), tiny_spec(seed=222)]
        monkeypatch.setattr(
            runner_mod, "execute_spec",
            _flaky_until(str(tmp_path / "count"), 2, flaky_seed))
        runner = Runner(jobs=2, retries=2)
        results = runner.run(specs)
        assert results[0] == execute_spec(specs[0])
        assert results[1] == execute_spec(specs[1])
        attempts = {entry.spec["seed"]: entry.attempts
                    for entry in runner.entries}
        assert attempts[flaky_seed] == 3
        assert attempts[222] == 1

    def test_worker_timeout_is_a_runerror(self, monkeypatch):
        """A run that sleeps past its budget is interrupted by the
        in-worker alarm, not waited out."""
        def wedged(spec):
            time.sleep(5.0)

        monkeypatch.setattr(runner_mod, "execute_spec", wedged)
        runner = Runner(jobs=2, timeout=0.2, retries=0)
        start = time.perf_counter()
        with pytest.raises(RunError) as excinfo:
            runner.run([tiny_spec(seed=1), tiny_spec(seed=2)])
        assert time.perf_counter() - start < 10.0
        assert isinstance(excinfo.value.__cause__, SimTimeoutError)

    def test_worker_death_recreates_the_pool(self, tmp_path,
                                             monkeypatch):
        """A worker that kills its own process breaks the pool; the
        runner replaces the pool, retries the lost runs, and still
        returns correct positional results."""
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        monkeypatch.setattr(runner_mod, "execute_spec",
                            _die_once(str(tmp_path / "died")))
        runner = Runner(jobs=2, retries=2)
        results = runner.run(specs)
        assert os.path.exists(tmp_path / "died")
        for spec, result in zip(specs, results):
            assert result == execute_spec(spec)
        # At least the run in the killed worker needed a second attempt
        # (a broken pool can fail other in-flight runs too).
        assert max(e.attempts for e in runner.entries) >= 2

    def test_worker_death_with_no_retries_fails_cleanly(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_spec",
                            _die_once(str(tmp_path / "died")))
        with pytest.raises(RunError):
            Runner(jobs=2, retries=0).run(
                [tiny_spec(seed=1), tiny_spec(seed=2)])


# ---------------------------------------------------------------------
# Timeouts off the main thread
# ---------------------------------------------------------------------

class TestThreadedTimeout:
    """A timed cell run off the main thread must not die arming
    SIGALRM (``signal.signal`` raises ``ValueError`` anywhere but the
    main thread): it falls back to no-timeout with one warning per
    process.  This is the sweep service's execution model — a worker
    runs cells inline on its executor thread."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_TIMEOUT_UNARMED_WARNED",
                            False)

    def _run_in_thread(self, target):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join(60.0)
        assert not thread.is_alive()

    def test_timed_cell_completes_on_a_non_main_thread(self):
        spec = tiny_spec()
        expected = execute_spec(spec)
        box = {}

        def target():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                box["value"] = runner_mod._worker_run(spec, 5.0)
                box["messages"] = [str(w.message) for w in caught]

        self._run_in_thread(target)
        payload, result_type, _pid, _wall = box["value"]
        assert payload == expected.to_dict()
        assert result_type == type(expected).__name__
        assert any("SIGALRM" in message for message in box["messages"])

    def test_fallback_warns_once_per_process(self):
        spec = tiny_spec()
        counts = []

        def target():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                runner_mod._worker_run(spec, 5.0)
                counts.append(sum("SIGALRM" in str(w.message)
                                  for w in caught))

        self._run_in_thread(target)
        self._run_in_thread(target)
        assert counts == [1, 0]

    def test_runner_with_timeout_completes_on_a_thread(self):
        """The full in-process Runner path (what a service worker
        drives) survives a timeout request off the main thread."""
        spec = tiny_spec()
        expected = execute_spec(spec)
        box = {}

        def target():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                box["results"] = Runner(jobs=1, timeout=30.0,
                                        retries=0).run([spec])

        self._run_in_thread(target)
        assert box["results"] == [expected]

    def test_no_timeout_requested_never_warns(self):
        spec = tiny_spec()
        box = {}

        def target():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                runner_mod._worker_run(spec, None)
                box["messages"] = [str(w.message) for w in caught]

        self._run_in_thread(target)
        assert not any("SIGALRM" in m for m in box["messages"])


# ---------------------------------------------------------------------
# Shard-orchestrator fault injection
# ---------------------------------------------------------------------

def _sigkill_own_process_on(marker_path, victim_seed):
    """An ``execute_spec`` stand-in: the first process to reach the
    spec with ``victim_seed`` (marker claimed with O_EXCL) SIGKILLs
    itself mid-run — the hardest crash a shard subprocess can have."""
    real = execute_spec

    def killing(spec):
        if spec.seed == victim_seed:
            try:
                fd = os.open(marker_path, os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                return real(spec)
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
        return real(spec)

    return killing


def _exit_zero_on(marker_path, victim_seed):
    """An ``execute_spec`` stand-in: the first process to reach the
    spec with ``victim_seed`` (marker claimed with O_EXCL) exits 0
    *without doing the work* — the lying clean exit the orchestrator
    must refuse to trust."""
    real = execute_spec

    def quitting(spec):
        if spec.seed == victim_seed:
            try:
                fd = os.open(marker_path, os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                return real(spec)
            os.close(fd)
            os._exit(0)
        return real(spec)

    return quitting


@needs_fork
class TestShardOrchestratorFaults:
    """A SIGKILLed shard is detected, relaunched on only its missing
    keys, and the merged cache still equals a clean run's."""

    SHARDS = 3

    def _specs_and_victim(self):
        """Eight tiny cells plus the victim: the last cell (in spec
        order) of the fullest shard, so its shard has completed cells
        on disk when it dies.  Derived from the live partition rather
        than pinned, so code edits can't silently move the victim to a
        singleton shard."""
        specs = [tiny_spec(seed=seed) for seed in range(1, 9)]
        _, by_shard = partition(specs, self.SHARDS)
        victim_shard = max(by_shard, key=lambda i: len(by_shard[i]))
        assert len(by_shard[victim_shard]) >= 2
        victim = specs[by_shard[victim_shard][-1]]
        return specs, victim_shard, victim

    def test_killed_shard_is_recovered_without_recompute(
            self, tmp_path, monkeypatch):
        specs, victim_shard, victim = self._specs_and_victim()
        keys = [spec_key(spec) for spec in specs]

        clean_root = tmp_path / "clean"
        clean = Runner(cache=ResultCache(clean_root)).run(specs)

        monkeypatch.setattr(
            runner_mod, "execute_spec",
            _sigkill_own_process_on(str(tmp_path / "killed"),
                                    victim.seed))
        sharded_root = tmp_path / "sharded"
        report = run_all_shards(specs, cache_dir=sharded_root,
                                count=self.SHARDS)
        assert os.path.exists(tmp_path / "killed")

        # The killed shard took exactly one extra launch; no other
        # shard was disturbed.
        assert report.launches[victim_shard] == 2
        assert all(n == 1 for i, n in report.launches.items()
                   if i != victim_shard)

        # Merged cache is byte-identical to the clean run's.
        clean_cache = ResultCache(clean_root)
        merged_cache = ResultCache(sharded_root)
        assert sorted(merged_cache.keys()) == sorted(keys)
        for key in keys:
            assert merged_cache.read_bytes(key) == \
                clean_cache.read_bytes(key)
        assert report.results == clean

        # Completed cells were never recomputed: across the whole
        # orchestration every cell executed exactly once — including
        # the victim, whose killed first attempt never completed.
        rows = Manifest(sharded_root / "manifest.jsonl").read()
        executed = [row.key for row in rows if not row.hit]
        assert sorted(executed) == sorted(keys)
        assert not any(row.hit for row in rows)

    def test_repeatedly_killed_shard_is_a_hard_failure(
            self, tmp_path, monkeypatch):
        """A shard that dies on every launch exhausts its relaunch
        budget and surfaces as ShardFailure, not a silent hole."""
        specs, _, victim = self._specs_and_victim()

        def always_dies(spec):
            if spec.seed == victim.seed:
                os.kill(os.getpid(), signal.SIGKILL)
            return execute_spec(spec)

        monkeypatch.setattr(runner_mod, "execute_spec", always_dies)
        with pytest.raises(ShardFailure,
                           match=r"owned cell\(s\) missing"):
            run_all_shards(specs, cache_dir=tmp_path / "sharded",
                           count=self.SHARDS, relaunches=1)

    def test_clean_exit_with_missing_cells_is_relaunched(
            self, tmp_path, monkeypatch):
        """Exit status is never trusted: a shard that exits 0 with
        owned cells absent from its private cache (an early
        ``sys.exit``, a swallowed error) is relaunched on the missing
        set exactly like a crash, and the merged cache still equals a
        clean run's byte-for-byte."""
        specs, victim_shard, victim = self._specs_and_victim()
        keys = [spec_key(spec) for spec in specs]

        clean_root = tmp_path / "clean"
        clean = Runner(cache=ResultCache(clean_root)).run(specs)

        monkeypatch.setattr(
            runner_mod, "execute_spec",
            _exit_zero_on(str(tmp_path / "quit"), victim.seed))
        sharded_root = tmp_path / "sharded"
        report = run_all_shards(specs, cache_dir=sharded_root,
                                count=self.SHARDS)
        assert os.path.exists(tmp_path / "quit")

        assert report.launches[victim_shard] == 2
        assert all(n == 1 for i, n in report.launches.items()
                   if i != victim_shard)

        clean_cache = ResultCache(clean_root)
        merged_cache = ResultCache(sharded_root)
        assert sorted(merged_cache.keys()) == sorted(keys)
        for key in keys:
            assert merged_cache.read_bytes(key) == \
                clean_cache.read_bytes(key)
        assert report.results == clean

    def test_repeated_clean_exits_fail_citing_the_exit_code(
            self, tmp_path, monkeypatch):
        """The hard-failure message distinguishes a lying clean exit
        from a crash, so the operator knows the shard *chose* to stop."""
        specs, _, victim = self._specs_and_victim()

        def always_quits(spec):
            if spec.seed == victim.seed:
                os._exit(0)
            return execute_spec(spec)

        monkeypatch.setattr(runner_mod, "execute_spec", always_quits)
        with pytest.raises(ShardFailure,
                           match=r"cleanly \(exit code 0\)"):
            run_all_shards(specs, cache_dir=tmp_path / "sharded",
                           count=self.SHARDS, relaunches=1)

    def test_warm_orchestration_launches_nothing(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in range(1, 5)]
        root = tmp_path / "cache"
        first = run_all_shards(specs, cache_dir=root, count=2)
        assert sum(first.launches.values()) >= 1
        second = run_all_shards(specs, cache_dir=root, count=2)
        assert second.launches == {}
        assert second.precached == len(specs)
        assert second.results == first.results


# ---------------------------------------------------------------------
# Cache corruption
# ---------------------------------------------------------------------

class TestCacheCorruption:
    def _seeded(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = execute_spec(spec)
        key = spec_key(spec)
        cache.put(key, result, spec)
        return cache, key, result, spec

    def _assert_recovers(self, cache, key, result, spec):
        """The poisoned entry reads as a miss, is removed, and the slot
        is immediately writable again."""
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()
        cache.put(key, result, spec)
        assert cache.get(key) == result

    def test_truncated_json(self, tmp_path):
        cache, key, result, spec = self._seeded(tmp_path)
        path = cache.path_for(key)
        path.write_text(path.read_text()[:40])
        self._assert_recovers(cache, key, result, spec)

    def test_empty_file(self, tmp_path):
        cache, key, result, spec = self._seeded(tmp_path)
        cache.path_for(key).write_text("")
        self._assert_recovers(cache, key, result, spec)

    def test_wrong_schema_version(self, tmp_path):
        cache, key, result, spec = self._seeded(tmp_path)
        cache.path_for(key).write_text(
            '{"schema": %d, "result": {}}' % (CACHE_SCHEMA - 1))
        self._assert_recovers(cache, key, result, spec)

    def test_unknown_result_type(self, tmp_path):
        cache, key, result, spec = self._seeded(tmp_path)
        cache.path_for(key).write_text(
            '{"schema": %d, "result_type": "MysteryResult", '
            '"result": {}}' % CACHE_SCHEMA)
        self._assert_recovers(cache, key, result, spec)

    def test_wrong_result_shape(self, tmp_path):
        cache, key, result, spec = self._seeded(tmp_path)
        cache.path_for(key).write_text(
            '{"schema": %d, "result_type": "RunResult", '
            '"result": {"bogus_field": 1}}' % CACHE_SCHEMA)
        self._assert_recovers(cache, key, result, spec)

    def test_put_rejects_unregistered_result_type(self, tmp_path):
        with pytest.raises(TypeError, match="unregistered result type"):
            ResultCache(tmp_path).put("0" * 64, object())


# ---------------------------------------------------------------------
# Code-fingerprint sensitivity
# ---------------------------------------------------------------------

class TestCodeFingerprint:
    @pytest.fixture
    def fake_package(self, tmp_path, monkeypatch):
        """Point ``code_fingerprint`` at a throwaway package so the
        tests can edit 'source' without touching the real tree."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("X = 1\n")
        monkeypatch.setattr(repro, "__file__",
                            str(pkg / "__init__.py"))
        monkeypatch.setattr(cache_mod, "_code_fingerprint", None)
        return pkg

    def _fresh_fingerprint(self):
        cache_mod._code_fingerprint = None
        return code_fingerprint()

    def test_editing_source_changes_fingerprint_and_keys(
            self, fake_package):
        before_fp = self._fresh_fingerprint()
        before_key = spec_key(tiny_spec())
        (fake_package / "mod.py").write_text("X = 2\n")
        after_fp = self._fresh_fingerprint()
        assert after_fp != before_fp
        assert spec_key(tiny_spec()) != before_key

    def test_renaming_a_module_changes_fingerprint(self, fake_package):
        before = self._fresh_fingerprint()
        os.rename(fake_package / "mod.py", fake_package / "mod2.py")
        assert self._fresh_fingerprint() != before

    def test_fingerprint_is_memoized(self, fake_package):
        first = self._fresh_fingerprint()
        (fake_package / "mod.py").write_text("X = 3\n")
        # No memo reset: the stale value is intentionally reused for
        # the life of the process.
        assert code_fingerprint() == first
