"""Tests for repro.analysis: overlap, latency, report."""

import pytest

from repro.analysis.latency import LatencyDistribution, compare_distributions
from repro.analysis.overlap import BANDS, OverlapAnalysis, summarize
from repro.analysis.report import (
    bar_chart,
    comparison_summary,
    format_table,
    grouped_bar_chart,
    percent_delta,
)
from repro.config import tiny_scale
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 10)
    return builder.build()


class TestOverlap:
    def test_identical_traces_full_overlap(self):
        """Identical transactions in lockstep: every touched block is in
        every cache (band >=10 for 12 cores)."""
        blocks = [2000 + i for i in range(60)]
        traces = [synthetic_trace(i, blocks) for i in range(12)]
        analysis = OverlapAnalysis(tiny_scale(), interval_instructions=100)
        intervals = analysis.run(traces)
        assert intervals
        result = summarize(intervals)
        assert result[">=10"] > 0.95

    def test_disjoint_traces_no_overlap(self):
        traces = [
            synthetic_trace(i, [i * 10_000 + j for j in range(40)])
            for i in range(4)
        ]
        analysis = OverlapAnalysis(tiny_scale())
        result = summarize(analysis.run(traces))
        assert result["1"] > 0.95

    def test_requires_two_traces(self):
        with pytest.raises(ValueError):
            OverlapAnalysis(tiny_scale()).run(
                [synthetic_trace(0, [1, 2])])

    def test_stops_at_half_done(self):
        shorts = [synthetic_trace(i, [2000 + i]) for i in range(2)]
        longs = [
            synthetic_trace(2 + i, [(3 + i) * 1000 + j
                                    for j in range(500)])
            for i in range(2)
        ]
        analysis = OverlapAnalysis(tiny_scale(),
                                   interval_instructions=100)
        intervals = analysis.run(shorts + longs)
        # Stops once the two short transactions finish, far before the
        # 500-block traces end (5 K-instructions).
        assert intervals[-1].kilo_instructions < 2.0

    def test_fractions_sum_to_one(self):
        blocks = [2000 + i for i in range(50)]
        traces = [synthetic_trace(i, blocks) for i in range(4)]
        intervals = OverlapAnalysis(tiny_scale()).run(traces)
        for interval in intervals:
            total = sum(interval.fraction(band) for band in BANDS)
            assert total == pytest.approx(1.0)

    def test_paper_claim_on_tpcc(self, tiny_tpcc):
        """Section 2.2: >70% of touched blocks appear in >=5 caches for
        16 same-type transactions on 16 cores."""
        traces = tiny_tpcc.generate_uniform("Payment", 16, seed=61)
        analysis = OverlapAnalysis(tiny_scale(),
                                   interval_instructions=100)
        result = summarize(analysis.run(traces))
        assert result["five_or_more"] > 0.7
        assert result["1"] < 0.15


class TestLatency:
    def test_mean_and_percentiles(self):
        dist = LatencyDistribution("x", [1_000_000, 3_000_000])
        assert dist.mean_mcycles == 2.0
        assert dist.p50_mcycles == 2.0
        assert dist.p95_mcycles > 2.0

    def test_empty_distribution(self):
        dist = LatencyDistribution("x", [])
        assert dist.mean_mcycles == 0.0
        assert dist.histogram() == []

    def test_histogram_normalized(self):
        dist = LatencyDistribution(
            "x", [int(i * 1e6) for i in (1, 3, 5, 60)])
        hist = dist.histogram(bin_mcycles=2.0, max_mcycles=50.0)
        assert sum(hist) == pytest.approx(1.0)
        assert hist[-1] == pytest.approx(0.25)  # the "More" bucket

    def test_compare_renders(self):
        text = compare_distributions([
            LatencyDistribution("Base", [1_000_000]),
            LatencyDistribution("STREX-10T", [2_000_000]),
        ])
        assert "Base" in text and "STREX-10T" in text


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_bar_chart(self):
        text = bar_chart({"base": 1.0, "strex": 1.5}, width=10)
        assert "strex" in text
        assert text.count("#") > 10

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart({"2 cores": {"base": 1.0},
                                  "4 cores": {"base": 2.0}})
        assert "2 cores:" in text and "4 cores:" in text

    def test_percent_delta(self):
        assert percent_delta(10, 5) == -50.0
        assert percent_delta(0, 5) == 0.0

    def test_comparison_summary(self):
        text = comparison_summary({"base": 2.0, "strex": 3.0}, "base")
        assert "(baseline)" in text
        assert "+50.0%" in text


class TestBarChartScaling:
    def test_bars_scale_to_peak(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=20)
        lines = text.splitlines()
        a_hashes = lines[0].count("#")
        b_hashes = lines[1].count("#")
        assert a_hashes == 20
        assert b_hashes == 10

    def test_zero_values_render(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.00" in text
