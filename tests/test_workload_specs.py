"""Tests for the workload spec machinery (design footprints, wrapper
sharing, basic-function arithmetic)."""

import pytest

from repro.db.engine import BASIC_FUNCTION_UNITS
from repro.workloads.base import TransactionTypeSpec
from repro.workloads.tpcc import RW_FUNCS, WRAPPERS


class TestSpecArithmetic:
    def make_spec(self, wrappers, funcs):
        return TransactionTypeSpec(
            name="t", target_units=5.0, wrappers=wrappers,
            basic_functions=funcs, body=lambda *a: None,
        )

    def test_shared_units_sums_functions(self):
        spec = self.make_spec({}, ["sm.txn_begin", "sm.txn_commit"])
        expected = BASIC_FUNCTION_UNITS["sm.txn_begin"] \
            + BASIC_FUNCTION_UNITS["sm.txn_commit"]
        assert spec.shared_units() == pytest.approx(expected)

    def test_design_units_adds_wrappers(self):
        spec = self.make_spec({"a": 0.5, "b": 0.25}, ["sm.catalog"])
        assert spec.design_units() == pytest.approx(
            BASIC_FUNCTION_UNITS["sm.catalog"] + 0.75)

    def test_unknown_function_raises(self):
        spec = self.make_spec({}, ["sm.nonexistent"])
        with pytest.raises(KeyError):
            spec.shared_units()


class TestWrapperSharing:
    def test_tpcc_types_share_fig1_prefix(self, tiny_tpcc):
        neworder = tiny_tpcc.types["NewOrder"]
        payment = tiny_tpcc.types["Payment"]
        for action in ("R_WAREHOUSE", "R_DISTRICT", "R_CUSTOMER",
                       "U_DISTRICT"):
            assert neworder.wrappers[action] is payment.wrappers[action]

    def test_private_wrappers_not_shared(self, tiny_tpcc):
        payment = tiny_tpcc.types["Payment"]
        neworder = tiny_tpcc.types["NewOrder"]
        assert "pay_misc" in payment.wrappers
        assert "pay_misc" not in neworder.wrappers

    def test_design_footprints_near_table3(self, tiny_tpcc):
        for name, spec_target in (("NewOrder", 14), ("Payment", 14),
                                  ("Delivery", 12), ("OrderStatus", 11),
                                  ("StockLevel", 11)):
            spec = tiny_tpcc.types[name].spec
            # Design within ~7% of the target; skips and rounding land
            # the measured footprint exactly on it (Table 3 checks).
            assert spec_target * 0.93 <= spec.design_units() \
                <= spec_target * 1.12, (name, spec.design_units())

    def test_tpce_design_footprints_near_table3(self, tiny_tpce):
        for name, target in (("BrokerVolume", 7),
                             ("CustomerPosition", 9),
                             ("MarketWatch", 9), ("SecurityDetail", 5),
                             ("TradeStatus", 9), ("TradeUpdate", 8),
                             ("TradeLookup", 8)):
            spec = tiny_tpce.types[name].spec
            assert target * 0.93 <= spec.design_units() \
                <= target * 1.12, (name, spec.design_units())

    def test_wrapper_sizes_positive(self):
        assert all(units > 0 for units in WRAPPERS.values())

    def test_rw_funcs_cover_insert_path(self):
        for func in ("sm.rec_insert", "sm.btree_insert",
                     "sm.rec_update"):
            assert func in RW_FUNCS


class TestLayoutSharing:
    def test_one_layout_per_workload(self, tiny_tpcc):
        begin = tiny_tpcc.layout.region("sm.txn_begin")
        # Both from the same allocator; basic functions precede
        # workload wrappers in the address space.
        wrapper = tiny_tpcc.layout.region("TPC-C-1.R_WAREHOUSE")
        assert begin.start_block < wrapper.start_block

    def test_workloads_have_independent_layouts(self, tiny_tpcc,
                                                tiny_tpce):
        a = tiny_tpcc.layout.region("sm.txn_begin")
        b = tiny_tpce.layout.region("sm.txn_begin")
        assert a.start_block == b.start_block  # same base, own spaces
        assert tiny_tpcc.layout is not tiny_tpce.layout
