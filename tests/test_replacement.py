"""Tests for repro.cache.replacement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import make_policy, policy_names


def _policy(name, num_sets=4, assoc=4, seed=1):
    return make_policy(name, num_sets, assoc, random.Random(seed))


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(policy_names()) == {
            "lru", "fifo", "random", "lip", "bip", "dip", "srrip", "brrip"
        }

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            _policy("plru")

    @pytest.mark.parametrize("name", [
        "lru", "fifo", "random", "lip", "bip", "dip", "srrip", "brrip"
    ])
    def test_make_policy_returns_named(self, name):
        assert _policy(name).name == name


class TestLru:
    def test_evicts_least_recently_used(self):
        policy = _policy("lru", num_sets=1, assoc=4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.on_hit(0, 0)  # way 0 becomes MRU; way 1 is LRU
        assert policy.victim_way(0) == 1

    def test_insert_is_mru(self):
        policy = _policy("lru", num_sets=1, assoc=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        assert policy.victim_way(0) == 0

    def test_sets_are_independent(self):
        policy = _policy("lru", num_sets=2, assoc=2)
        policy.on_insert(0, 1)
        policy.on_insert(1, 0)
        assert policy.victim_way(0) != policy.victim_way(1)


class TestFifo:
    def test_hit_does_not_promote(self):
        policy = _policy("fifo", num_sets=1, assoc=3)
        for way in range(3):
            policy.on_insert(0, way)
        policy.on_hit(0, 0)  # FIFO ignores the hit
        assert policy.victim_way(0) == 0


class TestRandom:
    def test_victim_in_range(self):
        policy = _policy("random", num_sets=1, assoc=4)
        for _ in range(100):
            assert 0 <= policy.victim_way(0) < 4

    def test_covers_all_ways_eventually(self):
        policy = _policy("random", num_sets=1, assoc=4)
        seen = {policy.victim_way(0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestLip:
    def test_insert_lands_at_lru(self):
        policy = _policy("lip", num_sets=1, assoc=4)
        for way in range(4):
            policy.on_insert(0, way)
        # The most recent insertion is the next victim.
        assert policy.victim_way(0) == 3

    def test_hit_promotes_to_mru(self):
        policy = _policy("lip", num_sets=1, assoc=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        policy.on_hit(0, 1)
        assert policy.victim_way(0) == 0


class TestBip:
    def test_mostly_lru_insertion(self):
        policy = _policy("bip", num_sets=1, assoc=4, seed=3)
        lru_like = 0
        trials = 400
        for _ in range(trials):
            policy.on_insert(0, 3)
            if policy.victim_way(0) == 3:
                lru_like += 1
            # Restore a known order for the next trial.
            for way in range(4):
                policy.on_hit(0, way)
        assert lru_like > trials * 0.9

    def test_occasionally_mru_insertion(self):
        policy = _policy("bip", num_sets=1, assoc=4, seed=3)
        mru_like = 0
        for _ in range(600):
            policy.on_insert(0, 3)
            if policy.victim_way(0) != 3:
                mru_like += 1
            for way in range(4):
                policy.on_hit(0, way)
        assert mru_like > 0


class TestDip:
    def test_has_leader_sets_of_both_kinds(self):
        policy = _policy("dip", num_sets=64, assoc=4)
        roles = {policy._set_role(i) for i in range(64)}
        assert {"lru_leader", "bip_leader", "follower"} <= roles

    def test_psel_moves_on_leader_misses(self):
        policy = _policy("dip", num_sets=64, assoc=4)
        start = policy._psel
        policy.on_miss(0)  # set 0 is an LRU leader
        assert policy._psel == start + 1
        policy.on_miss(16)  # set 16 is a BIP leader
        assert policy._psel == start

    def test_follower_uses_winner(self):
        policy = _policy("dip", num_sets=64, assoc=4)
        # Bias PSEL fully toward LRU (BIP leaders miss a lot).
        for _ in range(2000):
            policy.on_miss(16)
        policy.on_insert(1, 3)  # set 1 is a follower
        assert policy.victim_way(1) != 3  # LRU insertion (way 3 is MRU)


class TestSrrip:
    def test_insert_is_long_not_distant(self):
        policy = _policy("srrip", num_sets=1, assoc=2)
        policy.on_insert(0, 0)
        # Way 1 is untouched (distant); the victim must be way 1.
        assert policy.victim_way(0) == 1

    def test_hit_promotes_to_near(self):
        policy = _policy("srrip", num_sets=1, assoc=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        policy.on_hit(0, 0)
        assert policy.victim_way(0) == 1

    def test_aging_terminates(self):
        policy = _policy("srrip", num_sets=1, assoc=4)
        for way in range(4):
            policy.on_insert(0, way)
            policy.on_hit(0, way)
        victim = policy.victim_way(0)
        assert 0 <= victim < 4


class TestBrrip:
    def test_mostly_distant_insertion(self):
        policy = _policy("brrip", num_sets=1, assoc=2, seed=5)
        distant = 0
        trials = 300
        for _ in range(trials):
            policy.on_insert(0, 0)
            policy.on_hit(0, 1)
            if policy.victim_way(0) == 0:
                distant += 1
        assert distant > trials * 0.9


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_all_policies_always_return_valid_victims(ops):
    """Property: after any hit/insert sequence, every policy returns an
    in-range victim for every set."""
    policies = [_policy(name, num_sets=4, assoc=4)
                for name in policy_names()]
    for set_index, way in ops:
        for policy in policies:
            policy.on_insert(set_index, way)
            policy.on_hit(set_index, way)
    for policy in policies:
        for set_index in range(4):
            assert 0 <= policy.victim_way(set_index) < 4
