"""Additional team-formation coverage: dispatch semantics under
realistic pools."""

from repro.core.teams import TeamFormationUnit
from repro.sim.thread import TxnThread
from repro.trace.trace import TraceBuilder


def thread(tid, txn_type):
    builder = TraceBuilder(tid, txn_type)
    builder.append(1, 1)
    return TxnThread(tid, builder.build())


class TestFormationPatterns:
    def test_interleaved_types_form_full_teams(self):
        """An A/B-interleaved arrival stream still produces full teams
        of each type (the window spans both)."""
        threads = [thread(i, "AB"[i % 2]) for i in range(20)]
        teams = TeamFormationUnit(team_size=10, window=30) \
            .form_teams(threads)
        assert sorted(len(t) for t in teams) == [10, 10]

    def test_every_thread_assigned_exactly_once(self):
        threads = [thread(i, "ABC"[i % 3]) for i in range(31)]
        teams = TeamFormationUnit(team_size=4, window=10) \
            .form_teams(threads)
        seen = [member.thread_id for team in teams
                for member in team.threads]
        assert sorted(seen) == list(range(31))

    def test_team_order_preserves_member_arrival(self):
        threads = [thread(i, "A") for i in range(5)]
        team = TeamFormationUnit(team_size=10).form_teams(threads)[0]
        assert [m.thread_id for m in team.threads] == [0, 1, 2, 3, 4]

    def test_rare_type_waits_for_window(self):
        """A rare type's members spread beyond the window form multiple
        stray-ish teams rather than one big team."""
        types = ["A"] * 9 + ["B"] + ["A"] * 20 + ["B"]
        threads = [thread(i, t) for i, t in enumerate(types)]
        teams = TeamFormationUnit(team_size=10, window=10) \
            .form_teams(threads)
        b_teams = [t for t in teams if t.txn_type == "B"]
        assert len(b_teams) == 2
        assert all(len(t) == 1 for t in b_teams)

    def test_window_larger_than_pool(self):
        threads = [thread(i, "A") for i in range(3)]
        teams = TeamFormationUnit(team_size=10, window=1000) \
            .form_teams(threads)
        assert len(teams) == 1

    def test_empty_pool(self):
        assert TeamFormationUnit().form_teams([]) == []

    def test_repr(self):
        team = TeamFormationUnit().form_teams([thread(0, "A")])[0]
        assert "A" in repr(team)
