"""Engine edge-case tests, asserted under BOTH kernels with the
invariant oracles armed (``REPRO_SIM_CHECK=1``).

These are the degenerate geometries the fuzz generator samples but
nothing else in the suite pins down explicitly: a 1-core "torus",
STREX with ``team_size=1``, empty traces, a single-instruction-block
workload, and a zero-latency L2.  Every simulation here runs through
the fast path *and* ``REPRO_SIM_REFERENCE=1`` and must produce
byte-equal results on top of passing its specific assertions.
"""

import pytest

from repro.config import BLOCK_SIZE, SystemConfig, tiny_scale
from repro.exp.diff import result_blob
from repro.fastpath import CHECK_ENV, ENV_VAR
from repro.sim.api import simulate
from repro.trace.trace import TransactionTrace
from repro.verify import synthetic_traces
from repro.workloads import make_workload


def both_kernels(monkeypatch, config, traces, scheduler, **kwargs):
    """Run armed through fast and reference; return the fast result.

    Asserts the DESIGN-12 bar on the way: the two serialized results
    are byte-equal.
    """
    monkeypatch.setenv(CHECK_ENV, "1")
    monkeypatch.delenv(ENV_VAR, raising=False)
    fast = simulate(config, traces, scheduler, **kwargs)
    monkeypatch.setenv(ENV_VAR, "1")
    reference = simulate(config, traces, scheduler, **kwargs)
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert result_blob(fast) == result_blob(reference)
    return fast


def tpcc_traces(config, transactions=4, seed=7):
    workload = make_workload("tpcc", config.l1i_blocks, seed=seed)
    return workload.generate_mix(transactions, seed=seed)


class TestOneCoreTorus:
    """A 1x1 "torus": every NoC route is core 0 to slice 0."""

    @pytest.mark.parametrize("scheduler", ["base", "strex", "slicc",
                                           "hybrid", "smt"])
    def test_single_core_runs_every_scheduler(self, monkeypatch,
                                              scheduler):
        config = tiny_scale(num_cores=1)
        result = both_kernels(monkeypatch, config,
                              tpcc_traces(config), scheduler)
        assert result.num_cores == 1
        assert result.transactions == 4
        assert result.cycles > 0
        # One core: the makespan IS the busy+idle time of core 0.
        assert result.busy_cycles <= result.cycles

    def test_single_core_migrations_are_impossible(self, monkeypatch):
        config = tiny_scale(num_cores=1)
        result = both_kernels(monkeypatch, config,
                              tpcc_traces(config, transactions=6),
                              "slicc")
        assert result.migrations == 0


class TestTeamOfOne:
    """STREX with team_size=1: stratification degenerates to the
    baseline's one-transaction-at-a-time order, but the phase-tag
    machinery still runs."""

    def test_team_one_completes(self, monkeypatch):
        config = tiny_scale(num_cores=2)
        result = both_kernels(monkeypatch, config,
                              tpcc_traces(config), "strex",
                              team_size=1)
        assert result.transactions == 4
        assert len(result.latencies) == 4

    def test_team_one_hybrid_delegate(self, monkeypatch):
        config = tiny_scale(num_cores=2)
        result = both_kernels(monkeypatch, config,
                              tpcc_traces(config), "hybrid",
                              team_size=1)
        assert result.transactions == 4


class TestEmptyTraces:
    def test_no_traces_is_a_loud_error(self):
        with pytest.raises(ValueError, match="at least one trace"):
            simulate(tiny_scale(2), [], "base")

    @pytest.mark.parametrize("scheduler", ["base", "strex"])
    def test_zero_event_trace_finishes_instantly(self, monkeypatch,
                                                 scheduler):
        trace = TransactionTrace(0, "empty", [], [], [], [])
        result = both_kernels(monkeypatch, tiny_scale(2), [trace],
                              scheduler)
        assert result.instructions == 0
        assert result.i_misses == 0
        assert result.latencies == [0]

    def test_mixed_empty_and_real_traces(self, monkeypatch):
        config = tiny_scale(2)
        traces = [TransactionTrace(0, "empty", [], [], [], [])] + \
            tpcc_traces(config, transactions=3)
        result = both_kernels(monkeypatch, config, traces, "strex")
        assert result.transactions == 4
        assert 0 in result.latencies


class TestSingleIblockWorkload:
    """Every event fetches the same block: after one compulsory miss
    the instruction stream must hit forever, under any scheduler."""

    @pytest.mark.parametrize("scheduler", ["base", "strex", "smt"])
    def test_one_hot_block(self, monkeypatch, scheduler):
        traces = synthetic_traces(3, 24, 1, 4, seed=9)
        config = tiny_scale(num_cores=2)
        result = both_kernels(monkeypatch, config, traces, scheduler)
        # One block per core at most: compulsory misses only.
        assert 1 <= result.i_misses <= config.num_cores
        assert result.instructions > 0

    def test_single_set_single_block_cache(self, monkeypatch):
        # The L1-I is exactly one block wide -- the block both always
        # hits (one hot block) and is the only eviction candidate.
        config_dict = tiny_scale(num_cores=1).to_dict()
        config_dict["l1i"] = dict(config_dict["l1i"],
                                  size_bytes=BLOCK_SIZE, assoc=1)
        config = SystemConfig.from_dict(config_dict)
        traces = synthetic_traces(2, 8, 1, 4, seed=9)
        result = both_kernels(monkeypatch, config, traces, "base")
        assert result.i_misses == 1


class TestZeroLatencyL2:
    def test_zero_latency_l2_and_noc(self, monkeypatch):
        config_dict = tiny_scale(num_cores=2).to_dict()
        config_dict["l2_slice"] = dict(config_dict["l2_slice"],
                                       hit_latency=0)
        config_dict["noc"] = {"hop_latency": 0, "router_latency": 0}
        config = SystemConfig.from_dict(config_dict)
        traces = tpcc_traces(config)
        result = both_kernels(monkeypatch, config, traces, "strex")
        assert result.cycles > 0
        assert result.l2_traffic == result.i_misses + result.d_misses

    def test_free_l2_is_never_slower(self, monkeypatch):
        base_dict = tiny_scale(num_cores=2).to_dict()
        free_dict = dict(base_dict)
        free_dict["l2_slice"] = dict(base_dict["l2_slice"],
                                     hit_latency=0)
        base = SystemConfig.from_dict(base_dict)
        free = SystemConfig.from_dict(free_dict)
        traces = tpcc_traces(base)
        slow = both_kernels(monkeypatch, base, traces, "base")
        fast = both_kernels(monkeypatch, free, traces, "base")
        assert fast.cycles <= slow.cycles
