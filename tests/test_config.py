"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    BLOCK_SIZE,
    CacheConfig,
    SystemConfig,
    default_scale,
    paper_scale,
    tiny_scale,
)


class TestCacheConfig:
    def test_num_blocks(self):
        config = CacheConfig(32 * 1024)
        assert config.num_blocks == 512

    def test_num_sets(self):
        config = CacheConfig(32 * 1024, assoc=8)
        assert config.num_sets == 64

    def test_block_size_default(self):
        assert CacheConfig(1024).block_bytes == BLOCK_SIZE

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(0)

    def test_rejects_negative_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, assoc=-1)

    def test_rejects_non_multiple_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, assoc=8, block_bytes=64)

    def test_fully_associative_allowed(self):
        config = CacheConfig(1024, assoc=16)
        assert config.num_sets == 1

    def test_frozen(self):
        config = CacheConfig(1024)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.size_bytes = 2048


class TestSystemConfig:
    def test_paper_scale_matches_table2(self):
        config = paper_scale()
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1i.assoc == 8
        assert config.l1i.block_bytes == 64
        assert config.l1i.hit_latency == 3
        assert config.l2_slice.size_bytes == 1024 * 1024
        assert config.l2_slice.assoc == 16
        assert config.l2_slice.hit_latency == 16

    def test_default_scale_preserves_ratios(self):
        paper = paper_scale()
        scaled = default_scale()
        paper_ratio = paper.l2_slice.size_bytes / paper.l1i.size_bytes
        scaled_ratio = scaled.l2_slice.size_bytes / scaled.l1i.size_bytes
        assert paper_ratio == scaled_ratio

    def test_tiny_scale_l1_blocks(self):
        assert tiny_scale().l1i_blocks == 32

    def test_with_cores(self):
        config = default_scale(num_cores=2)
        bigger = config.with_cores(16)
        assert bigger.num_cores == 16
        assert config.num_cores == 2
        assert bigger.l1i == config.l1i

    def test_with_strex(self):
        config = default_scale()
        tuned = config.with_strex(team_size=20)
        assert tuned.strex.team_size == 20
        assert config.strex.team_size == 10

    def test_with_l1_replacement(self):
        config = default_scale()
        tuned = config.with_l1_replacement("brrip")
        assert tuned.l1i.replacement == "brrip"
        assert tuned.l1d.replacement == "brrip"
        assert config.l1i.replacement == "lru"

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_phase_modulo(self):
        config = default_scale()
        assert config.strex.phase_modulo == 256

    def test_seed_default(self):
        assert default_scale().seed == 1013
