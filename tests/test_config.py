"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    BLOCK_SIZE,
    CacheConfig,
    SystemConfig,
    default_scale,
    paper_scale,
    tiny_scale,
)


class TestCacheConfig:
    def test_num_blocks(self):
        config = CacheConfig(32 * 1024)
        assert config.num_blocks == 512

    def test_num_sets(self):
        config = CacheConfig(32 * 1024, assoc=8)
        assert config.num_sets == 64

    def test_block_size_default(self):
        assert CacheConfig(1024).block_bytes == BLOCK_SIZE

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(0)

    def test_rejects_negative_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, assoc=-1)

    def test_rejects_non_multiple_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, assoc=8, block_bytes=64)

    def test_fully_associative_allowed(self):
        config = CacheConfig(1024, assoc=16)
        assert config.num_sets == 1

    def test_frozen(self):
        config = CacheConfig(1024)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.size_bytes = 2048


class TestSystemConfig:
    def test_paper_scale_matches_table2(self):
        config = paper_scale()
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1i.assoc == 8
        assert config.l1i.block_bytes == 64
        assert config.l1i.hit_latency == 3
        assert config.l2_slice.size_bytes == 1024 * 1024
        assert config.l2_slice.assoc == 16
        assert config.l2_slice.hit_latency == 16

    def test_default_scale_preserves_ratios(self):
        paper = paper_scale()
        scaled = default_scale()
        paper_ratio = paper.l2_slice.size_bytes / paper.l1i.size_bytes
        scaled_ratio = scaled.l2_slice.size_bytes / scaled.l1i.size_bytes
        assert paper_ratio == scaled_ratio

    def test_tiny_scale_l1_blocks(self):
        assert tiny_scale().l1i_blocks == 32

    def test_with_cores(self):
        config = default_scale(num_cores=2)
        bigger = config.with_cores(16)
        assert bigger.num_cores == 16
        assert config.num_cores == 2
        assert bigger.l1i == config.l1i

    def test_with_strex(self):
        config = default_scale()
        tuned = config.with_strex(team_size=20)
        assert tuned.strex.team_size == 20
        assert config.strex.team_size == 10

    def test_with_l1_replacement(self):
        config = default_scale()
        tuned = config.with_l1_replacement("brrip")
        assert tuned.l1i.replacement == "brrip"
        assert tuned.l1d.replacement == "brrip"
        assert config.l1i.replacement == "lru"

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_phase_modulo(self):
        config = default_scale()
        assert config.strex.phase_modulo == 256

    def test_seed_default(self):
        assert default_scale().seed == 1013


class TestSerialization:
    def test_roundtrip_default(self):
        config = default_scale(num_cores=8)
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_preserves_overrides(self):
        config = paper_scale(num_cores=16) \
            .with_strex(team_size=20, phase_bits=6) \
            .with_l1_replacement("brrip")
        rebuilt = SystemConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.strex.team_size == 20
        assert rebuilt.l1d.replacement == "brrip"

    def test_roundtrip_through_json(self):
        import json

        config = tiny_scale()
        blob = json.dumps(config.to_dict(), sort_keys=True)
        assert SystemConfig.from_dict(json.loads(blob)) == config

    def test_to_dict_is_canonical(self):
        """Equal configs serialize identically — the cache-key
        contract of repro.exp."""
        assert default_scale(num_cores=4).to_dict() == \
            default_scale(num_cores=4).to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        data = default_scale().to_dict()
        data["turbo"] = True
        with pytest.raises(ValueError, match="unknown SystemConfig"):
            SystemConfig.from_dict(data)

    def test_from_dict_defaults_missing_keys(self):
        rebuilt = SystemConfig.from_dict({"num_cores": 6})
        assert rebuilt == SystemConfig(num_cores=6)

    def test_scales_registry(self):
        from repro.config import SCALES

        assert set(SCALES) == {"paper", "default", "tiny"}
        assert SCALES["default"]() == default_scale()
