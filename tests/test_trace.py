"""Tests for repro.trace.trace."""

import pytest

from repro.trace.trace import (
    TraceBuilder,
    TransactionTrace,
    load_traces,
    save_traces,
)


def build_simple(txn_id=0, txn_type="T", events=((1, 10, -1, 0),)):
    builder = TraceBuilder(txn_id, txn_type)
    for iblock, ilen, dblock, dwrite in events:
        builder.append(iblock, ilen, dblock, dwrite)
    return builder.build()


class TestBuilder:
    def test_build_simple(self):
        trace = build_simple()
        assert len(trace) == 1
        assert trace.total_instructions == 10

    def test_empty_build_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TraceBuilder(0, "T").build()

    def test_zero_ilen_rejected(self):
        builder = TraceBuilder(0, "T")
        with pytest.raises(ValueError):
            builder.append(1, 0)

    def test_last_iblock(self):
        builder = TraceBuilder(0, "T")
        assert builder.last_iblock is None
        builder.append(42, 5)
        assert builder.last_iblock == 42

    def test_len(self):
        builder = TraceBuilder(0, "T")
        builder.append(1, 1)
        builder.append(2, 1)
        assert len(builder) == 2


class TestTrace:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            TransactionTrace(0, "T", [1, 2], [1], [-1, -1], [0, 0])

    def test_events_iteration(self):
        trace = build_simple(events=((1, 5, 7, 1), (2, 3, -1, 0)))
        events = list(trace.events())
        assert events == [(1, 5, 7, 1), (2, 3, -1, 0)]

    def test_unique_iblocks(self):
        trace = build_simple(events=((1, 5, -1, 0), (2, 5, -1, 0),
                                     (1, 5, -1, 0)))
        assert trace.unique_iblocks() == {1, 2}

    def test_footprint_units(self):
        trace = build_simple(events=tuple((i, 4, -1, 0)
                                          for i in range(64)))
        assert trace.footprint_units(32) == 2.0

    def test_numpy_views(self):
        trace = build_simple(events=((1, 5, -1, 0), (2, 3, -1, 0)))
        assert trace.iblock_array().tolist() == [1, 2]
        assert trace.ilen_array().sum() == 8

    def test_repr(self):
        trace = build_simple(txn_id=3, txn_type="Payment")
        text = repr(trace)
        assert "Payment" in text and "id=3" in text


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        traces = [
            build_simple(0, "A", ((1, 5, 7, 1), (2, 3, -1, 0))),
            build_simple(1, "B", ((9, 2, -1, 0),)),
        ]
        path = str(tmp_path / "traces.npz")
        save_traces(path, traces)
        loaded = load_traces(path)
        assert len(loaded) == 2
        assert loaded[0].txn_type == "A"
        assert loaded[1].txn_id == 1
        assert list(loaded[0].events()) == list(traces[0].events())
        assert loaded[1].total_instructions == 2

    def test_roundtrip_preserves_instruction_count(self, tmp_path,
                                                   tiny_tpcc):
        trace = tiny_tpcc.generate_trace("Payment", seed=5)
        path = str(tmp_path / "t.npz")
        save_traces(path, [trace])
        loaded = load_traces(path)[0]
        assert loaded.total_instructions == trace.total_instructions
        assert loaded.unique_iblocks() == trace.unique_iblocks()
