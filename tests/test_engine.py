"""Tests for repro.sim.engine and the baseline scheduler."""

import pytest

from repro.config import tiny_scale
from repro.sched.base import BaselineScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, ilen=10, txn_type="S", data=None):
    """A trace touching ``blocks`` in order; ``data`` maps event index
    to (dblock, dwrite)."""
    builder = TraceBuilder(txn_id, txn_type)
    data = data or {}
    for i, block in enumerate(blocks):
        dblock, dwrite = data.get(i, (-1, 0))
        builder.append(block, ilen, dblock, dwrite)
    return builder.build()


class TestRunEvents:
    def make_engine(self, traces, cores=1):
        config = tiny_scale(num_cores=cores)
        return SimulationEngine(config, traces, BaselineScheduler)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            self.make_engine([])

    def test_counts_instructions(self):
        trace = synthetic_trace(0, [1, 2, 3], ilen=10)
        engine = self.make_engine([trace])
        engine.run_events(0, engine.threads[0], 100)
        assert engine.total_instructions == 30
        assert engine.threads[0].finished

    def test_max_events_bounds_progress(self):
        trace = synthetic_trace(0, list(range(20)))
        engine = self.make_engine([trace])
        executed = engine.run_events(0, engine.threads[0], 5)
        assert executed == 5
        assert engine.threads[0].pos == 5

    def test_l1i_miss_charges_l2_latency(self):
        trace = synthetic_trace(0, [1], ilen=10)
        engine = self.make_engine([trace])
        engine.run_events(0, engine.threads[0], 10)
        miss_time = engine.core_time[0]

        trace2 = synthetic_trace(0, [1, 1], ilen=10)
        engine2 = self.make_engine([trace2])
        engine2.run_events(0, engine2.threads[0], 10)
        # Second event hits; its marginal cost is just ilen * cpi.
        cpi = engine2.config.core.base_cpi
        assert engine2.core_time[0] == pytest.approx(
            miss_time + int(10 * cpi), abs=1)

    def test_miss_log_collects_missed_blocks(self):
        trace = synthetic_trace(0, [1, 1, 2, 3, 2])
        engine = self.make_engine([trace])
        log = []
        engine.run_events(0, engine.threads[0], 10, miss_log=log)
        assert log == [1, 2, 3]

    def test_stop_after_misses(self):
        trace = synthetic_trace(0, list(range(10)))
        engine = self.make_engine([trace])
        log = []
        executed = engine.run_events(0, engine.threads[0], 10,
                                     miss_log=log, stop_after_misses=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_data_access_recorded(self):
        trace = synthetic_trace(0, [1, 2], data={1: (500, 1)})
        engine = self.make_engine([trace])
        engine.run_events(0, engine.threads[0], 10)
        assert engine.hier.l1d[0].stats.accesses == 1
        assert engine.hier.l1d[0].contains(500)

    def test_phase_tag_applied(self):
        trace = synthetic_trace(0, [7])
        engine = self.make_engine([trace])
        engine.run_events(0, engine.threads[0], 10, tag=42)
        assert engine.hier.l1i[0].tag_of(7) == 42


class TestBaselineScheduler:
    def run(self, traces, cores=2):
        config = tiny_scale(num_cores=cores)
        engine = SimulationEngine(config, traces, BaselineScheduler)
        return engine.run("test"), engine

    def test_all_threads_finish(self):
        traces = [synthetic_trace(i, list(range(i, i + 10)))
                  for i in range(5)]
        result, engine = self.run(traces)
        assert result.transactions == 5
        assert all(t.finished for t in engine.threads)
        assert len(result.latencies) == 5

    def test_single_thread_single_core(self):
        result, _ = self.run([synthetic_trace(0, [1, 2, 3])], cores=1)
        assert result.cycles > 0
        assert result.instructions == 30

    def test_work_spreads_across_cores(self):
        traces = [synthetic_trace(i, list(range(100)))
                  for i in range(4)]
        _, engine = self.run(traces, cores=2)
        assert engine.core_time[0] > 0
        assert engine.core_time[1] > 0

    def test_more_cores_smaller_makespan(self):
        traces = [synthetic_trace(i, list(range(i * 200, i * 200 + 150)))
                  for i in range(8)]
        one, _ = self.run(traces, cores=1)
        four, _ = self.run(traces, cores=4)
        assert four.cycles < one.cycles

    def test_throughput_uses_busy_time(self):
        traces = [synthetic_trace(i, list(range(50))) for i in range(4)]
        result, _ = self.run(traces, cores=4)
        assert result.busy_cycles <= result.cycles * 4
        assert result.throughput > 0

    def test_identical_back_to_back_transactions_hit(self):
        """The second identical transaction on one core reuses the
        first one's cache contents."""
        blocks = list(range(20))
        traces = [synthetic_trace(0, blocks), synthetic_trace(1, blocks)]
        result, engine = self.run(traces, cores=1)
        assert engine.hier.l1i[0].stats.misses == 20
        assert engine.hier.l1i[0].stats.hits == 20

    def test_result_metadata(self):
        result, _ = self.run([synthetic_trace(0, [1])], cores=2)
        assert result.scheduler == "base"
        assert result.workload == "test"
        assert result.num_cores == 2

    def test_summary_renders(self):
        result, _ = self.run([synthetic_trace(0, [1])])
        text = result.summary()
        assert "base" in text and "I-MPKI" in text


class TestCoherence:
    def test_write_invalidates_remote_sharer(self):
        reader = synthetic_trace(0, [1] * 4,
                                 data={0: (900, 0), 3: (900, 0)})
        writer = synthetic_trace(1, [50] * 2, data={0: (900, 1)})
        config = tiny_scale(num_cores=2)
        engine = SimulationEngine(config, [reader, writer],
                                  BaselineScheduler)
        # Drive manually: reader reads 900 on core 0, writer writes on 1.
        engine.run_events(0, engine.threads[0], 1)
        assert engine.hier.l1d[0].contains(900)
        engine.run_events(1, engine.threads[1], 1)
        assert not engine.hier.l1d[0].contains(900)

    def test_coherence_miss_classified(self):
        config = tiny_scale(num_cores=2)
        reader = synthetic_trace(0, [1, 2], data={0: (900, 0),
                                                  1: (900, 0)})
        writer = synthetic_trace(1, [50], data={0: (900, 1)})
        engine = SimulationEngine(config, [reader, writer],
                                  BaselineScheduler)
        engine.run_events(0, engine.threads[0], 1)  # core 0 reads
        engine.run_events(1, engine.threads[1], 1)  # core 1 writes
        engine.run_events(0, engine.threads[0], 1)  # core 0 re-reads
        assert engine.hier.coherence_misses[0] == 1

    def test_dirty_remote_forwarding_latency(self):
        config = tiny_scale(num_cores=2)
        writer = synthetic_trace(0, [1], data={0: (900, 1)})
        reader = synthetic_trace(1, [50], data={0: (900, 0)})
        engine = SimulationEngine(config, [writer, reader],
                                  BaselineScheduler)
        engine.run_events(0, engine.threads[0], 1)
        before = engine.core_time[1]
        engine.run_events(1, engine.threads[1], 1)
        # Miss + forward from remote owner: more than an L1 hit.
        assert engine.core_time[1] - before > 10
