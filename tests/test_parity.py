"""Differential parity: fast path vs ``REPRO_SIM_REFERENCE=1``.

The engine's specialized loops, flat cache layout, and age-counter
replacement must not change a single simulated number.  Each test here
generates one trace set, runs it through both implementations *in the
same process* (the path is latched when the engine is constructed, so
toggling the environment variable between constructions is enough), and
asserts the full :class:`RunResult` dicts are identical — cycles,
MPKIs, coherence misses, NoC hops, everything.

Trace generation itself is hash-seed dependent (pre-existing seed
behaviour), which is why both paths must consume the *same* trace
objects rather than regenerating per path.
"""

import dataclasses

import pytest

from repro.config import tiny_scale
from repro.fastpath import ENV_VAR, reference_mode
from repro.obs import TRACE_ENV
from repro.sim.api import SCHEDULERS, simulate
from repro.workloads import WORKLOADS

POLICIES = ("lru", "fifo", "random", "lip", "bip", "dip",
            "srrip", "brrip")
TRANSACTIONS = 8


def _traces(workload: str, config, transactions: int = TRANSACTIONS):
    suite = WORKLOADS[workload](config.l1i_blocks, 1013)
    return suite.generate_mix(transactions, seed=1013)


def _assert_parity(monkeypatch, config, traces, scheduler: str,
                   workload: str, **kwargs) -> None:
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert not reference_mode()
    fast = simulate(config, traces, scheduler, workload, **kwargs)
    monkeypatch.setenv(ENV_VAR, "1")
    assert reference_mode()
    ref = simulate(config, traces, scheduler, workload, **kwargs)
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert fast.to_dict() == ref.to_dict()


class TestSchedulerMatrix:
    """Every scheduler, both workload suites, default (LRU) caches."""

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_scheduler_parity(self, monkeypatch, scheduler, workload):
        config = tiny_scale()
        traces = _traces(workload, config)
        _assert_parity(monkeypatch, config, traces, scheduler, workload)


class TestReplacementMatrix:
    """Every replacement policy on all three cache levels.

    ``base`` exercises the tightest specialized loop; ``strex`` adds
    victim callbacks, cache flushes, and tag resets on top of it.
    """

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheduler", ("base", "strex"))
    def test_replacement_parity(self, monkeypatch, policy, scheduler):
        config = tiny_scale().with_l1_replacement(policy)
        config = dataclasses.replace(
            config,
            l2_slice=dataclasses.replace(config.l2_slice,
                                         replacement=policy),
        )
        traces = _traces("tpcc", config)
        _assert_parity(monkeypatch, config, traces, scheduler, "tpcc")


class TestOtherShapes:
    """Configurations off the common path."""

    def test_prefetcher_parity(self, monkeypatch):
        # An active prefetcher forces the general loop on the fast
        # path, so this pins down cache-layer (not loop) parity.
        config = tiny_scale()
        traces = _traces("tpcc", config)
        _assert_parity(monkeypatch, config, traces, "base", "tpcc",
                       prefetcher="nextline")
        _assert_parity(monkeypatch, config, traces, "strex", "tpcc",
                       prefetcher="tifs")

    def test_non_power_of_two_cores(self, monkeypatch):
        # 3 cores: non-square torus and modulo home-slice mapping.
        config = tiny_scale(num_cores=3)
        traces = _traces("tpcc", config)
        _assert_parity(monkeypatch, config, traces, "base", "tpcc")
        _assert_parity(monkeypatch, config, traces, "strex", "tpcc")

    def test_team_size_parity(self, monkeypatch):
        config = tiny_scale()
        traces = _traces("tpcc", config)
        _assert_parity(monkeypatch, config, traces, "strex", "tpcc",
                       team_size=2)


class TestTracedParity:
    """Arming ``REPRO_TRACE`` must never perturb the simulation.

    The observability layer is counter-only on the hot path (DESIGN
    decision 17); these tests pin the stronger user-visible claim: a
    traced run is byte-identical to an untraced one, under both
    kernels.
    """

    @pytest.mark.parametrize("scheduler", ("base", "strex"))
    def test_traced_runs_are_byte_identical(self, monkeypatch,
                                            tmp_path, scheduler):
        config = tiny_scale()
        traces = _traces("tpcc", config)
        monkeypatch.delenv(TRACE_ENV, raising=False)
        monkeypatch.delenv(ENV_VAR, raising=False)
        fast = simulate(config, traces, scheduler, "tpcc")
        monkeypatch.setenv(ENV_VAR, "1")
        ref = simulate(config, traces, scheduler, "tpcc")

        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "trace.jsonl"))
        monkeypatch.delenv(ENV_VAR, raising=False)
        fast_traced = simulate(config, traces, scheduler, "tpcc")
        monkeypatch.setenv(ENV_VAR, "1")
        ref_traced = simulate(config, traces, scheduler, "tpcc")

        assert fast_traced.to_dict() == fast.to_dict()
        assert ref_traced.to_dict() == ref.to_dict()
        assert fast.to_dict() == ref.to_dict()
        # The traced runs really were traced, not silently disarmed.
        assert (tmp_path / "trace.jsonl").exists()
