"""Tests for ``repro.verify``: case generation, invariant oracles,
the differential harness, shrinking, the replay corpus, and the
``repro fuzz`` command line.

Two contracts are under test (DESIGN.md decision 15):

* with ``REPRO_SIM_CHECK=1`` every engine audits its own accounting
  and raises :class:`InvariantViolation` at the first breach -- and a
  deliberately injected bookkeeping bug *is* flagged;
* :func:`run_case` runs every case through the fast AND the
  ``REPRO_SIM_REFERENCE=1`` kernels and requires byte-equal results --
  and a deliberate fast/reference divergence *is* flagged.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_fuzz_parser, main
from repro.config import BLOCK_SIZE, tiny_scale
from repro.fastpath import CHECK_ENV
from repro.sched.base import BaselineScheduler
from repro.sim.api import simulate
from repro.sim.engine import SimulationEngine
from repro.verify import (
    CaseGenerator,
    CasePools,
    FuzzCase,
    InvariantViolation,
    fuzz_run,
    load_case,
    load_corpus,
    make_checker,
    replay_cases,
    run_case,
    save_case,
    shrink_case,
    synthetic_traces,
)

CORPUS_DIR = Path(__file__).parent / "corpus"


def tiny_case(**overrides) -> FuzzCase:
    defaults = dict(name="t", config=tiny_scale(2).to_dict(),
                    scheduler="strex", workload="tpcc",
                    transactions=3, seed=5)
    defaults.update(overrides)
    return FuzzCase(**defaults)


def l1i_sets(case: FuzzCase) -> int:
    section = case.config["l1i"]
    return section["size_bytes"] // BLOCK_SIZE // section["assoc"]


class TestFuzzCase:
    def test_round_trips_through_json(self):
        case = tiny_case(team_size=2, note="hand-built")
        blob = json.dumps(case.to_dict(), sort_keys=True)
        again = FuzzCase.from_dict(json.loads(blob))
        assert again == case
        assert again.to_dict()["schema"] == 1

    def test_rejects_unknown_schema_and_keys(self):
        data = tiny_case().to_dict()
        with pytest.raises(ValueError, match="schema"):
            FuzzCase.from_dict(dict(data, schema=99))
        with pytest.raises(ValueError, match="unknown FuzzCase keys"):
            FuzzCase.from_dict(dict(data, surprise=1))

    def test_validates_names_and_dimensions(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            tiny_case(scheduler="zeus")
        with pytest.raises(ValueError, match="unknown workload"):
            tiny_case(workload="tpch")
        with pytest.raises(ValueError, match="team_size"):
            tiny_case(scheduler="base", team_size=2)
        with pytest.raises(ValueError, match="transactions"):
            tiny_case(transactions=0)
        with pytest.raises(ValueError, match="dimensions"):
            tiny_case(workload="synthetic", events=0)

    def test_build_traces_deterministic(self):
        case = tiny_case(workload="synthetic", transactions=4)
        a = case.build_traces()
        b = case.build_traces()
        assert [t.iblocks for t in a] == [t.iblocks for t in b]
        assert len(a) == 4

    def test_describe_names_the_case(self):
        text = tiny_case(team_size=2).describe()
        assert "strex" in text
        assert "team=2" in text


class TestSyntheticTraces:
    def test_deterministic_in_seed(self):
        a = synthetic_traces(3, 24, 16, 16, seed=9)
        b = synthetic_traces(3, 24, 16, 16, seed=9)
        assert [t.iblocks for t in a] == [t.iblocks for t in b]
        assert [t.iblocks for t in a] != \
            [t.iblocks for t in synthetic_traces(3, 24, 16, 16, seed=10)]

    def test_degenerate_dimensions(self):
        (trace,) = synthetic_traces(1, 1, 1, 1, seed=3)
        assert len(trace) == 1
        assert trace.iblocks == [0]

    def test_blocks_stay_in_universe(self):
        for trace in synthetic_traces(5, 48, 7, 3, seed=11):
            assert all(0 <= b < 7 for b in trace.iblocks)
            assert all(d < 3 for d in trace.dblocks)


class TestCaseGenerator:
    def test_stream_is_deterministic(self):
        a = [c.to_dict() for c in CaseGenerator(3).cases(10)]
        b = [c.to_dict() for c in CaseGenerator(3).cases(10)]
        assert a == b
        assert a != [c.to_dict() for c in CaseGenerator(4).cases(10)]

    def test_cases_are_independent_of_call_order(self):
        # One private RNG per index: case(7) is the same whether or
        # not cases 0..6 were generated first.
        stream = list(CaseGenerator(3).cases(8))
        assert CaseGenerator(3).case(7).to_dict() == \
            stream[7].to_dict()

    def test_covers_the_hostile_corner(self):
        cases = list(CaseGenerator(3).cases(60))
        assert any(c.config["num_cores"] == 1 for c in cases)
        assert any(c.team_size == 1 for c in cases)
        assert any(l1i_sets(c) in (3, 5, 7, 12) for c in cases)
        assert any(c.config["l1i"]["hit_latency"] == 0 for c in cases)
        assert any(c.config["l2_slice"]["hit_latency"] == 0
                   for c in cases)
        assert any(c.workload == "synthetic" for c in cases)
        assert {c.scheduler for c in cases} == \
            {"base", "strex", "slicc", "hybrid", "smt"}
        assert len({c.config["l1i"]["replacement"]
                    for c in cases}) >= 6

    def test_pools_narrow_the_stream(self):
        pools = CasePools(schedulers=("strex",), cores=(1,),
                          workloads=("synthetic",))
        for case in CaseGenerator(5, pools).cases(12):
            assert case.scheduler == "strex"
            assert case.config["num_cores"] == 1
            assert case.workload == "synthetic"

    def test_pools_reject_unknown_names(self):
        with pytest.raises(ValueError, match="unknown schedulers"):
            CasePools(schedulers=("zeus",))
        with pytest.raises(ValueError, match="non-empty"):
            CasePools(cores=())

    def test_pools_from_shared_grid_flags(self):
        # ``repro fuzz`` reuses the sweep-grid parser factoring; an
        # unset axis keeps the full hostile pool.
        args = build_fuzz_parser().parse_args(
            ["run", "--schedulers", "strex", "--cores", "1", "3"])
        pools = CasePools.from_grid_args(args)
        assert pools.schedulers == ("strex",)
        assert pools.cores == (1, 3)
        assert pools.workloads == CasePools().workloads
        assert all(c.scheduler == "strex"
                   for c in CaseGenerator(1, pools).cases(6))


class TestOracles:
    def test_checker_only_when_armed(self, monkeypatch, tiny_config):
        traces = tiny_case().build_traces()
        monkeypatch.delenv(CHECK_ENV, raising=False)
        simulate(tiny_config, traces, "base")  # disarmed: no checker
        monkeypatch.setenv(CHECK_ENV, "1")
        simulate(tiny_config, traces, "base")  # armed: audits clean

    def test_make_checker_latches_the_env(self, monkeypatch,
                                          tiny_config):
        traces = tiny_case(transactions=1).build_traces()
        engine = SimulationEngine(tiny_config, traces,
                                  BaselineScheduler)
        assert engine.checker is None
        monkeypatch.setenv(CHECK_ENV, "1")
        assert make_checker(engine) is not None

    @pytest.mark.parametrize("scheduler", ["base", "strex", "slicc",
                                           "hybrid", "smt"])
    def test_every_scheduler_audits_clean(self, monkeypatch, scheduler,
                                          tiny_config):
        monkeypatch.setenv(CHECK_ENV, "1")
        traces = tiny_case().build_traces()
        result = simulate(tiny_config, traces, scheduler)
        assert result.transactions == len(traces)

    def test_non_age_policies_audit_clean(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV, "1")
        case = tiny_case()
        config = dict(case.config)
        config["l1i"] = dict(config["l1i"], replacement="srrip")
        case = case.replace(config=config)
        simulate(case.build_config(), case.build_traces(), "strex")

    def test_injected_accounting_bug_is_flagged(self, monkeypatch,
                                                tiny_config):
        # Leak one instruction per slice out of the per-thread books:
        # the instruction-conservation oracle must fire at finalize.
        monkeypatch.setenv(CHECK_ENV, "1")
        original = SimulationEngine.run_events

        def leaky(self, core, thread, max_events, **kwargs):
            executed = original(self, core, thread, max_events,
                                **kwargs)
            self.total_instructions += 1
            return executed

        monkeypatch.setattr(SimulationEngine, "run_events", leaky)
        with pytest.raises(InvariantViolation,
                           match=r"\[instruction-conservation\]"):
            simulate(tiny_config, tiny_case().build_traces(), "strex")

    def test_violation_names_its_oracle(self):
        with pytest.raises(InvariantViolation, match=r"^\[demo\]"):
            raise InvariantViolation("[demo] detail")
        assert issubclass(InvariantViolation, AssertionError)


class TestRunCase:
    def test_clean_case_is_ok(self):
        outcome = run_case(tiny_case())
        assert outcome.ok
        assert outcome.status == "ok"

    def test_unbuildable_case_is_an_error(self):
        outcome = run_case(tiny_case(config={"num_cores": "many"}))
        assert outcome.status == "error"
        assert "construction failed" in outcome.detail

    def test_kernel_divergence_is_a_mismatch(self, monkeypatch):
        # Perturb only the general event loop -- with no prefetcher
        # the fast kernel never enters it, so only the reference run
        # moves and the byte-equality bar must flag the divergence.
        original = SimulationEngine._run_events_general

        def slower(self, core, *args, **kwargs):
            executed = original(self, core, *args, **kwargs)
            self.core_time[core] += 1
            return executed

        monkeypatch.setattr(SimulationEngine, "_run_events_general",
                            slower)
        outcome = run_case(tiny_case())
        assert outcome.status == "mismatch"
        assert "cycles" in outcome.detail

    def test_oracle_violation_is_classified(self, monkeypatch):
        original = SimulationEngine.run_events

        def leaky(self, core, thread, max_events, **kwargs):
            executed = original(self, core, thread, max_events,
                                **kwargs)
            self.total_instructions += 1
            return executed

        monkeypatch.setattr(SimulationEngine, "run_events", leaky)
        outcome = run_case(tiny_case())
        assert outcome.status == "violation"
        assert outcome.kernel == "fast"
        assert "[instruction-conservation]" in outcome.detail
        # Disarmed, the same bug hits both kernels identically and
        # the differential harness alone is blind to it.
        assert run_case(tiny_case(), check=False).ok

    def test_outcome_serializes(self):
        outcome = run_case(tiny_case(transactions=1))
        data = outcome.to_dict()
        assert data["status"] == "ok"
        assert data["case"]["name"] == "t"


class TestShrinking:
    def test_converges_to_the_minimal_case(self):
        case = tiny_case(scheduler="smt", workload="synthetic",
                         transactions=4, events=24, blocks=16,
                         data_blocks=16)
        shrunk, attempts = shrink_case(case, is_failing=lambda c: True)
        assert shrunk.transactions == 1
        assert shrunk.scheduler == "base"
        assert shrunk.config["num_cores"] == 1
        assert shrunk.events == 1
        assert attempts <= 80

    def test_deterministic(self):
        case = tiny_case(scheduler="strex", team_size=2)
        a, _ = shrink_case(case, is_failing=lambda c: True)
        b, _ = shrink_case(case, is_failing=lambda c: True)
        assert a == b

    def test_keeps_the_failure_failing(self):
        # Only multi-core cases "fail": the shrinker must stop at 2
        # cores, never hand back a passing 1-core repro.
        case = tiny_case(transactions=4)

        def is_failing(candidate):
            return candidate.config["num_cores"] >= 2

        shrunk, _ = shrink_case(case, is_failing=is_failing)
        assert shrunk.config["num_cores"] == 2
        assert shrunk.transactions == 1

    def test_predicate_crash_counts_as_failing(self):
        case = tiny_case(transactions=4)

        def explodes(candidate):
            raise RuntimeError("still broken")

        shrunk, _ = shrink_case(case, is_failing=explodes,
                                max_attempts=10)
        assert shrunk != case


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        case = tiny_case(name="saved", team_size=2)
        path = save_case(case, tmp_path)
        assert path.name == "saved.json"
        assert load_case(path) == case
        assert load_corpus(tmp_path) == [(path, case)]

    def test_load_corpus_sorted_by_filename(self, tmp_path):
        save_case(tiny_case(name="zz"), tmp_path)
        save_case(tiny_case(name="aa"), tmp_path)
        names = [case.name for _, case in load_corpus(tmp_path)]
        assert names == ["aa", "zz"]

    def test_committed_corpus_replays_green(self):
        pairs = load_corpus(CORPUS_DIR)
        assert len(pairs) >= 10, "the committed corpus shrank"
        report = replay_cases([case for _, case in pairs])
        failing = [o.describe() for o in report.outcomes if not o.ok]
        assert not failing, failing
        # The corpus must keep covering its designed-in edges.
        cases = [case for _, case in pairs]
        assert any(c.config["num_cores"] == 1 for c in cases)
        assert any(c.team_size == 1 for c in cases)
        assert any(l1i_sets(c) not in (1, 2, 4, 8, 16) for c in cases)
        assert any(c.config["l2_slice"]["hit_latency"] == 0
                   for c in cases)

    def test_corpus_replays_green_with_tracing_armed(self, tmp_path,
                                                     monkeypatch):
        """One full corpus pass with ``REPRO_TRACE`` armed: the
        hostile geometries must stay byte-equal across kernels while
        every simulation is being traced (tracing must never perturb
        the simulation, even in the corners)."""
        from repro.obs import TRACE_ENV

        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "fuzz.jsonl"))
        pairs = load_corpus(CORPUS_DIR)
        report = replay_cases([case for _, case in pairs])
        failing = [o.describe() for o in report.outcomes if not o.ok]
        assert not failing, failing
        assert (tmp_path / "fuzz.jsonl").exists()

    def test_traced_corpus_results_identical_to_untraced(
            self, tmp_path, monkeypatch):
        """Byte-identical ``RunResult``s with and without the sink,
        spot-checked on two hostile corpus cases under both kernels."""
        from repro.exp.diff import result_blob
        from repro.fastpath import ENV_VAR
        from repro.obs import TRACE_ENV

        pairs = load_corpus(CORPUS_DIR)[:2]
        for _, case in pairs:
            config = case.build_config()
            traces = case.build_traces()
            for reference in (False, True):
                if reference:
                    monkeypatch.setenv(ENV_VAR, "1")
                else:
                    monkeypatch.delenv(ENV_VAR, raising=False)
                monkeypatch.delenv(TRACE_ENV, raising=False)
                plain = simulate(config, traces, case.scheduler,
                                 case.workload,
                                 team_size=case.team_size)
                monkeypatch.setenv(
                    TRACE_ENV, str(tmp_path / "spot.jsonl"))
                traced = simulate(config, traces, case.scheduler,
                                  case.workload,
                                  team_size=case.team_size)
                assert result_blob(traced) == result_blob(plain), \
                    case.name


class TestCampaigns:
    def test_fuzz_run_reports_clean(self):
        report = fuzz_run(4, seed=7)
        assert report.ok
        assert report.exit_code() == 0
        assert len(report.outcomes) == 4
        text = report.format_text()
        assert "4 ok" in text
        assert "[seed 7]" in text

    def test_time_budget_truncates_loudly(self):
        report = fuzz_run(50, seed=7, time_budget_s=0.0)
        assert len(report.outcomes) < 50
        assert "time budget hit" in report.format_text()

    def test_failures_are_shrunk_and_saved(self, monkeypatch,
                                           tmp_path):
        original = SimulationEngine._run_events_general

        def slower(self, core, *args, **kwargs):
            executed = original(self, core, *args, **kwargs)
            self.core_time[core] += 1
            return executed

        monkeypatch.setattr(SimulationEngine, "_run_events_general",
                            slower)
        report = replay_cases([tiny_case(name="bad")], shrink=True,
                              save_dir=tmp_path)
        assert report.exit_code() == 1
        (failure,) = report.failures
        assert failure.shrunk.name == "bad-shrunk"
        assert failure.saved_to == tmp_path / "bad-shrunk.json"
        saved = load_case(failure.saved_to)
        assert "shrunk from bad" in saved.note
        assert "repro saved" in report.format_text()


class TestFuzzCli:
    def test_run_prints_seed_banner(self, capsys):
        code = main(["fuzz", "run", "--cases", "2", "--seed", "11"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz seed 11" in out
        assert "--seed 11" in out
        assert "2 ok" in out

    def test_run_with_narrowed_pools(self, capsys):
        code = main(["fuzz", "run", "--cases", "2", "--seed", "3",
                     "--schedulers", "base", "--cores", "1"])
        assert code == 0
        assert "2 ok" in capsys.readouterr().out

    def test_corpus_replays_committed_cases(self, capsys):
        code = main(["fuzz", "corpus", "--corpus-dir",
                     str(CORPUS_DIR)])
        out = capsys.readouterr().out
        assert code == 0
        assert "one-core-torus" in out
        assert "status" in out

    def test_empty_corpus_exits_2(self, capsys, tmp_path):
        code = main(["fuzz", "corpus", "--corpus-dir", str(tmp_path)])
        assert code == 2
        assert "no corpus cases" in capsys.readouterr().out

    def test_replay_single_file(self, capsys):
        code = main(["fuzz", "replay",
                     str(CORPUS_DIR / "one-core-torus.json")])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, capsys, tmp_path):
        assert main(["fuzz", "run", str(tmp_path)]) == 2
        assert main(["fuzz", "replay"]) == 2
        err = capsys.readouterr().err
        assert "fuzz replay" in err
