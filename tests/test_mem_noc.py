"""Tests for repro.mem.dram and repro.noc.torus."""

import pytest

from repro.config import MemoryConfig, NocConfig
from repro.mem.dram import DramModel
from repro.noc.torus import TorusNetwork, grid_shape


class TestDram:
    def test_first_access_is_row_miss(self):
        dram = DramModel(MemoryConfig())
        latency = dram.access(0)
        assert latency == MemoryConfig().base_latency
        assert dram.row_misses == 1

    def test_same_row_hits(self):
        config = MemoryConfig()
        dram = DramModel(config)
        dram.access(0)
        latency = dram.access(1)  # same row (row spans 128 blocks)
        assert latency == config.row_hit_latency
        assert dram.row_hits == 1

    def test_row_conflict_in_same_bank(self):
        config = MemoryConfig()
        dram = DramModel(config)
        total_banks = config.num_channels * config.num_banks
        blocks_per_row = config.row_bytes // 64
        dram.access(0)
        # A different row mapping to the same bank.
        conflict_block = total_banks * blocks_per_row
        assert dram.access(conflict_block) == config.base_latency

    def test_closed_page_never_hits(self):
        config = MemoryConfig(open_page=False)
        dram = DramModel(config)
        dram.access(0)
        assert dram.access(1) == config.base_latency
        assert dram.row_hits == 0

    def test_accesses_counter(self):
        dram = DramModel(MemoryConfig())
        for block in range(5):
            dram.access(block)
        assert dram.accesses == 5

    def test_snapshot(self):
        dram = DramModel(MemoryConfig())
        dram.access(0)
        snap = dram.snapshot()
        assert snap["accesses"] == 1
        assert snap["row_misses"] == 1


class TestGridShape:
    @pytest.mark.parametrize("n,shape", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)),
        (16, (4, 4)), (6, (2, 3)), (12, (3, 4)),
    ])
    def test_near_square(self, n, shape):
        assert grid_shape(n) == shape

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestTorus:
    def test_self_distance_zero(self):
        torus = TorusNetwork(16, NocConfig())
        assert torus.hop_distance(3, 3) == 0

    def test_neighbor_distance(self):
        torus = TorusNetwork(16, NocConfig())  # 4x4
        assert torus.hop_distance(0, 1) == 1
        assert torus.hop_distance(0, 4) == 1

    def test_wraparound(self):
        torus = TorusNetwork(16, NocConfig())  # 4x4
        # Node 0 (0,0) to node 3 (0,3): wrap distance 1, not 3.
        assert torus.hop_distance(0, 3) == 1

    def test_max_distance_4x4(self):
        torus = TorusNetwork(16, NocConfig())
        worst = max(torus.hop_distance(0, d) for d in range(16))
        assert worst == 4  # 2 + 2 on a 4x4 torus

    def test_symmetry(self):
        torus = TorusNetwork(8, NocConfig())
        for a in range(8):
            for b in range(8):
                assert torus.hop_distance(a, b) == torus.hop_distance(b, a)

    def test_latency_counts_traffic(self):
        torus = TorusNetwork(4, NocConfig(hop_latency=2))
        latency = torus.latency(0, 1)
        assert latency == 2
        assert torus.messages == 1
        assert torus.total_hops == 1

    def test_mean_hops(self):
        torus = TorusNetwork(4, NocConfig())
        torus.latency(0, 1)
        torus.latency(0, 0)
        assert torus.mean_hops == 0.5

    def test_mean_hops_no_traffic(self):
        assert TorusNetwork(4, NocConfig()).mean_hops == 0.0

    def test_out_of_range_node(self):
        torus = TorusNetwork(4, NocConfig())
        with pytest.raises(ValueError):
            torus.coordinates(4)

    def test_triangle_inequality(self):
        torus = TorusNetwork(12, NocConfig())
        for a in range(12):
            for b in range(12):
                for c in range(12):
                    assert torus.hop_distance(a, c) <= \
                        torus.hop_distance(a, b) + torus.hop_distance(b, c)
