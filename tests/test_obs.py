"""Tests for ``repro.obs``: spans, metrics, sinks, and the guarantees
instrumentation must keep.

The load-bearing properties:

* span nesting/timing/tags behave (parents contain children, ids link
  up, errors tag the span on the way out);
* the JSONL sink stays parseable under SIGKILL (whole-line atomic
  appends; at most one torn trailing line per killed writer);
* histogram buckets sit exactly on the documented log2 edges, so
  registries merged across processes always align;
* metrics merged from a sharded multi-process run equal a
  single-process run of the same sweep (the merge-equivalence
  property that makes cross-process aggregation trustworthy);
* a disarmed tracer costs nothing observable: no sink, no counters,
  and byte-identical simulation results (the parity half also lives in
  ``tests/test_parity.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import obs
from repro.config import tiny_scale
from repro.exp import ResultCache, RunSpec, Runner, run_all_shards
from repro.obs import (
    NUM_BUCKETS,
    Histogram,
    MetricsRegistry,
    Tracer,
    bucket_bounds,
    bucket_index,
)
from repro.obs.report import format_tree, load_trace, summarize
from repro.sim.api import simulate
from repro.workloads import WORKLOADS

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="kill-injection needs the fork start method")


def tiny_specs(n_schedulers=2) -> list:
    schedulers = ("base", "strex", "slicc", "hybrid")[:n_schedulers]
    return [
        RunSpec(workload="tpcc", scheduler=s, cores=2, transactions=3,
                seed=7, scale="tiny")
        for s in schedulers
    ]


# ---------------------------------------------------------------------
# Span properties
# ---------------------------------------------------------------------

class TestSpans:
    def test_nesting_links_parent_and_child(self):
        tracer = Tracer()
        with tracer.span("outer", kind="sweep") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.children == [inner]
        assert outer.span_id != inner.span_id
        assert outer.span_id.startswith(f"{os.getpid()}-")

    def test_timing_is_monotonic_and_contains_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.005)
        assert inner.dur_s > 0
        assert outer.dur_s >= inner.dur_s
        assert outer.start_s <= inner.start_s

    def test_tags_and_counters(self):
        tracer = Tracer()
        with tracer.span("s", a=1, dropped=None) as span:
            span.tag(b="x", also_dropped=None)
            span.add("hits")
            span.add("hits", 2)
        assert span.tags == {"a": 1, "b": "x"}
        assert span.counters == {"hits": 3}

    def test_exception_tags_error_and_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        names = [s.name for s in tracer.ring]
        assert names == ["failing", "outer"]
        failing = tracer.ring[0]
        assert failing.tags["error"] == "ValueError"
        # Both spans closed: the stack is clean for the next root.
        assert tracer.current() is None

    def test_tracer_add_hits_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.add("n")
            with tracer.span("inner") as inner:
                tracer.add("n", 4)
        assert outer.counters == {"n": 1}
        assert inner.counters == {"n": 4}
        tracer.add("n")  # no open span: silently dropped

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(ring_capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.ring] == ["s2", "s3", "s4"]


# ---------------------------------------------------------------------
# The JSONL sink
# ---------------------------------------------------------------------

class TestSink:
    def test_spans_and_metrics_round_trip(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink)
        with tracer.span("outer", label="x") as outer:
            outer.add("k", 2)
            with tracer.span("inner"):
                pass
        tracer.metrics.inc("c", 3)
        tracer.metrics.observe("h", 10)
        tracer.flush_metrics()
        data = load_trace(sink)
        assert data.torn == 0
        # Children are written before parents (written at close).
        assert [s.name for s in data.spans] == ["inner", "outer"]
        outer_rec = data.spans[1]
        assert outer_rec.counters == {"k": 2}
        assert outer_rec.tags == {"label": "x"}
        assert data.spans[0].parent_id == outer_rec.span_id
        assert data.metrics.counters == {"c": 3}
        assert data.metrics.histograms["h"].count == 1

    def test_flush_writes_deltas_not_snapshots(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink)
        tracer.metrics.inc("c", 2)
        tracer.flush_metrics()
        tracer.metrics.inc("c", 5)
        tracer.flush_metrics()
        tracer.flush_metrics()  # nothing new: no third record
        lines = sink.read_text().strip().splitlines()
        deltas = [json.loads(line)["counters"]["c"] for line in lines]
        assert deltas == [2, 5]
        # Summing every record reproduces the cumulative value.
        assert load_trace(sink).metrics.counters == {"c": 7}

    def test_reader_skips_torn_trailing_line(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink)
        for i in range(3):
            with tracer.span(f"s{i}", payload="x" * 64):
                pass
        blob = sink.read_bytes()
        sink.write_bytes(blob[: len(blob) - 40])  # tear the last line
        data = load_trace(sink)
        assert data.torn == 1
        assert [s.name for s in data.spans] == ["s0", "s1"]

    def test_reader_skips_garbage_and_wrong_kind(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink)
        with tracer.span("good"):
            pass
        with open(sink, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "mystery"}\n')
            handle.write('{"kind": "span"}\n')  # span without an id
        data = load_trace(sink)
        assert [s.name for s in data.spans] == ["good"]
        assert data.torn == 3

    @needs_fork
    def test_sink_stays_parseable_after_sigkill(self, tmp_path):
        """A writer killed mid-stream tears at most its last line."""
        sink = tmp_path / "trace.jsonl"
        ready = tmp_path / "ready"

        def writer() -> None:
            tracer = Tracer(sink=sink)
            i = 0
            while True:
                with tracer.span(f"w{i}", pad="y" * 256) as span:
                    span.add("i", i)
                if i == 20:
                    ready.write_text("go")
                i += 1

        process = multiprocessing.get_context("fork").Process(
            target=writer)
        process.start()
        deadline = time.time() + 30
        while not ready.exists():
            time.sleep(0.005)
            assert time.time() < deadline, "writer never warmed up"
        os.kill(process.pid, signal.SIGKILL)
        process.join()

        # Another process appending afterwards must not be corrupted
        # by whatever the killed writer left behind...
        survivor = Tracer(sink=sink)
        with survivor.span("survivor"):
            pass
        # ...but the torn tail means the file may interleave a partial
        # line before the survivor's record; every *complete* line
        # parses and the reader recovers everything else.
        data = load_trace(sink)
        assert data.torn <= 1
        assert len(data.spans) >= 21
        assert data.spans[-1].name == "survivor"
        complete = [
            line
            for line in sink.read_bytes().split(b"\n")[:-1]
            if line.startswith(b"{") and line.endswith(b"}")
        ]
        for line in complete:
            json.loads(line)


# ---------------------------------------------------------------------
# Histogram bucket edges
# ---------------------------------------------------------------------

class TestHistogramBuckets:
    @pytest.mark.parametrize("value,bucket", [
        (-5, 0), (0, 0), (0.5, 0), (0.999, 0),
        (1, 1), (1.5, 1), (1.999, 1),
        (2, 2), (3, 2), (3.999, 2),
        (4, 3), (1024, 11), (1025, 11),
        (2 ** 40, 41),
        (2 ** 62, 63), (2 ** 80, 63), (float("inf"), 63),
        (float("nan"), 0),
    ])
    def test_bucket_edges(self, value, bucket):
        assert bucket_index(value) == bucket

    def test_bounds_invert_the_index(self):
        for idx in range(1, NUM_BUCKETS - 1):
            lo, hi = bucket_bounds(idx)
            assert bucket_index(lo) == idx
            assert bucket_index(hi - 1e-9 * hi) == idx
        assert bucket_bounds(0) == (0.0, 1.0)
        assert bucket_bounds(NUM_BUCKETS - 1)[1] == float("inf")

    def test_histogram_counts_and_merge(self):
        a, b = Histogram(), Histogram()
        for v in (0, 1, 2, 3):
            a.observe(v)
        for v in (3, 1024):
            b.observe(v)
        a.merge(b)
        assert a.count == 6
        assert a.total == 1033
        assert a.buckets == {0: 1, 1: 1, 2: 3, 11: 1}

    def test_registry_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("only_b")
        a.set_gauge("g", 1.5)
        b.set_gauge("g", 0.5)
        a.observe("h", 2)
        b.observe("h", 2)
        a.merge(b)
        assert a.counters == {"c": 5, "only_b": 1}
        assert a.gauges == {"g": 1.5}  # max, order-independent
        assert a.histograms["h"].buckets == {2: 2}

    def test_registry_round_trips_through_dict(self):
        reg = MetricsRegistry()
        reg.inc("c", 7)
        reg.set_gauge("g", 2.25)
        reg.observe("h", 5)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(reg.to_dict())))
        assert clone.to_dict() == reg.to_dict()


# ---------------------------------------------------------------------
# Cross-process merge equivalence
# ---------------------------------------------------------------------

#: Counters that must be partition-invariant: each sweep cell is
#: simulated exactly once no matter how the sweep is split across
#: processes.  (Wall-time histograms are *not* in this set: timing
#: varies run to run even when the work is identical.)
DETERMINISTIC_COUNTERS = (
    "exp.cells.executed", "sim.runs", "sim.events", "sim.instructions",
)


class TestCrossProcessMergeEquivalence:
    def metrics_for(self, sink) -> dict:
        merged = load_trace(sink).metrics
        return {
            name: merged.counters.get(name, 0)
            for name in DETERMINISTIC_COUNTERS
        }

    @needs_fork
    def test_merged_shards_equal_single_process(self, tmp_path,
                                                monkeypatch):
        specs = tiny_specs(4)

        solo_sink = tmp_path / "solo.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(solo_sink))
        Runner(cache=ResultCache(tmp_path / "solo-cache")).run(specs)
        solo = self.metrics_for(solo_sink)

        shard_sink = tmp_path / "shards.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(shard_sink))
        run_all_shards(specs, tmp_path / "shard-cache", count=3)
        sharded = self.metrics_for(shard_sink)

        assert solo == sharded
        assert solo["exp.cells.executed"] == len(specs)
        assert solo["sim.runs"] == len(specs)
        assert solo["sim.events"] > 0


# ---------------------------------------------------------------------
# Disarmed overhead guard
# ---------------------------------------------------------------------

class TestDisarmed:
    @pytest.fixture(autouse=True)
    def no_trace_env(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)

    def test_no_tracer_and_null_span(self):
        assert obs.tracer() is None
        span = obs.span("anything", tag=1)
        assert span is obs.NULL_SPAN
        assert not span.armed
        with span as inner:
            inner.add("c")
            inner.tag(x=1)
        # Module-level helpers are all no-ops.
        obs.add("c")
        obs.metric_inc("m")
        obs.metric_observe("h", 1.0)
        obs.metric_gauge("g", 1.0)
        obs.flush()

    def test_instrumented_stack_leaves_no_state(self, tmp_path,
                                                monkeypatch):
        """Counters stay zero and nothing is written when disarmed."""
        monkeypatch.chdir(tmp_path)  # any stray sink would land here
        Runner(cache=ResultCache(tmp_path / "cache")).run(tiny_specs())
        assert obs.tracer() is None
        # Arm a fresh in-memory tracer afterwards: had the disarmed
        # run leaked state anywhere, it would show up here.
        with obs.use(Tracer()) as tracer:
            assert not tracer.metrics
            assert not tracer.ring
        leftovers = [
            p for p in tmp_path.iterdir() if p.suffix == ".jsonl"
        ]
        assert leftovers == []

    def test_disarmed_run_is_byte_identical_to_armed(self, tmp_path,
                                                     monkeypatch):
        config = tiny_scale(num_cores=2)
        suite = WORKLOADS["tpcc"](config.l1i_blocks, 7)
        traces = suite.generate_mix(4, seed=7)
        plain = simulate(config, traces, "strex", "tpcc")
        monkeypatch.setenv(
            obs.TRACE_ENV, str(tmp_path / "armed.jsonl"))
        armed = simulate(config, traces, "strex", "tpcc")
        assert plain.to_dict() == armed.to_dict()


# ---------------------------------------------------------------------
# Report plumbing over real runs
# ---------------------------------------------------------------------

class TestReport:
    def test_summary_reconciles_with_manifest(self, tmp_path,
                                              monkeypatch):
        """Span totals must agree with the manifest's own accounting:
        cells executed/hit per the trace == rows the manifest holds,
        and one sim.run span per executed simulation cell."""
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(sink))
        specs = tiny_specs()
        runner = Runner(cache=ResultCache(tmp_path / "cache"))
        runner.run(specs)
        runner.run(specs)  # warm rerun: all hits
        summary = summarize(load_trace(sink))
        rows = runner.manifest.read()
        hits = sum(1 for row in rows if row.hit)
        misses = sum(1 for row in rows if not row.hit)
        assert summary["sweep"]["misses"] == misses == len(specs)
        assert summary["sweep"]["hits"] == hits == len(specs)
        assert summary["spans"]["cell"]["count"] == misses
        assert summary["kernel"]["runs"] == misses
        assert summary["metrics"]["counters"]["exp.cells.executed"] \
            == misses
        assert summary["metrics"]["counters"]["exp.cells.hit"] == hits
        cells = {row["cell"] for row in summary["cells"]}
        assert cells == {spec.describe() for spec in specs}

    def test_tree_renders_each_process(self, tmp_path, monkeypatch):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(sink))
        Runner(cache=ResultCache(tmp_path / "cache")).run(tiny_specs())
        text = format_tree(load_trace(sink))
        assert "sweep" in text
        assert "cell" in text
        assert "sim.run" in text
