"""Tests for the repro.exp experiment-orchestration subsystem:
specs, cache keys, the disk cache, the manifest, and the runner
(serial, parallel, retry, timeout)."""

import json
import time

import pytest

import repro.exp.runner as runner_mod
from repro.analysis.overlap import OverlapResult
from repro.core.fptable import FootprintResult
from repro.exp import (
    Manifest,
    ManifestEntry,
    ResultCache,
    RunError,
    RunSpec,
    Runner,
    SimTimeoutError,
    SweepSpec,
    code_fingerprint,
    execute_spec,
    spec_key,
    summarize_entries,
)
from repro.sim.results import RunResult


def tiny_spec(**overrides) -> RunSpec:
    defaults = dict(workload="tpcc", scheduler="base", cores=2,
                    transactions=4, seed=7, scale="tiny")
    defaults.update(overrides)
    return RunSpec(**defaults)


def tiny_sweep(**overrides) -> SweepSpec:
    defaults = dict(workloads=("tpcc", "mapreduce"),
                    schedulers=("base", "strex"), cores=(2,),
                    seeds=(7,), scales=("tiny",), transactions=4)
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestRunSpec:
    def test_validates_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            tiny_spec(workload="tpch")

    def test_validates_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            tiny_spec(scheduler="zeus")

    def test_validates_prefetcher(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            tiny_spec(prefetcher="magic")

    def test_validates_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            tiny_spec(scale="huge")

    def test_rejects_team_size_for_base(self):
        with pytest.raises(ValueError, match="team_size"):
            tiny_spec(scheduler="base", team_size=4)

    def test_team_size_allowed_for_strex_and_hybrid(self):
        assert tiny_spec(scheduler="strex", team_size=4).team_size == 4
        assert tiny_spec(scheduler="hybrid", team_size=4).team_size == 4

    def test_roundtrip(self):
        spec = tiny_spec(scheduler="strex", team_size=6,
                         replacement="bip")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = tiny_spec().to_dict()
        data["warehouses"] = 10
        with pytest.raises(ValueError, match="unknown RunSpec keys"):
            RunSpec.from_dict(data)

    def test_build_config_applies_replacement(self):
        config = tiny_spec(replacement="bip", cores=4).build_config()
        assert config.num_cores == 4
        assert config.l1i.replacement == "bip"
        assert config.l1d.replacement == "bip"

    def test_mix_seed_defaults_to_seed(self):
        assert tiny_spec(seed=9).effective_mix_seed() == 9
        assert tiny_spec(seed=9, mix_seed=3).effective_mix_seed() == 3


class TestSweepSpec:
    def test_expansion_order_is_deterministic(self):
        sweep = tiny_sweep()
        first = sweep.expand()
        assert first == sweep.expand()
        # Workload-major order.
        assert [s.workload for s in first] == \
            ["tpcc", "tpcc", "mapreduce", "mapreduce"]
        assert len(sweep) == 4

    def test_team_sizes_only_apply_to_team_schedulers(self):
        sweep = tiny_sweep(schedulers=("base", "strex"),
                           team_sizes=(2, 8))
        specs = sweep.expand()
        base = [s for s in specs if s.scheduler == "base"]
        strex = [s for s in specs if s.scheduler == "strex"]
        # One deduped base cell, one strex cell per team size.
        assert len(base) == 2 and all(s.team_size is None for s in base)
        assert sorted(s.team_size for s in strex) == [2, 2, 8, 8]

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="axis"):
            tiny_sweep(cores=())

    def test_rejects_string_axis(self):
        with pytest.raises(TypeError):
            tiny_sweep(workloads="tpcc")


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        assert spec_key(tiny_spec()) == spec_key(tiny_spec())

    def test_every_axis_changes_the_key(self):
        base = spec_key(tiny_spec())
        variants = [
            tiny_spec(workload="tpce"),
            tiny_spec(scheduler="strex"),
            tiny_spec(prefetcher="nextline"),
            tiny_spec(cores=4),
            tiny_spec(transactions=8),
            tiny_spec(seed=8),
            tiny_spec(mix_seed=3),
            tiny_spec(scale="default"),
            tiny_spec(replacement="bip"),
            tiny_spec(scheduler="strex", team_size=4),
        ]
        keys = {spec_key(v) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_content_addressing_ignores_spelling(self):
        """mix_seed=None means "use seed" — the two spellings address
        the same content, so they share a cache entry."""
        assert spec_key(tiny_spec(seed=9)) == \
            spec_key(tiny_spec(seed=9, mix_seed=9))

    def test_key_includes_code_fingerprint(self):
        assert len(code_fingerprint()) == 64
        assert code_fingerprint() == code_fingerprint()


class TestResultCache:
    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = execute_spec(spec)
        key = spec_key(spec)
        cache.put(key, result, spec)
        assert key in cache
        assert cache.get(key) == result

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{truncated")
        assert cache.get(key) is None
        assert not path.exists()

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec_key(spec), execute_spec(spec), spec)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestManifest:
    def test_record_and_read(self, tmp_path):
        manifest = Manifest(tmp_path / "m.jsonl")
        entry = ManifestEntry(key="k", spec={"workload": "tpcc"},
                              hit=False, wall_s=1.5, worker=42)
        manifest.record(entry)
        manifest.record(ManifestEntry(key="k", spec={}, hit=True,
                                      wall_s=0.0))
        entries = manifest.read()
        assert entries[0] == entry
        assert entries[1].hit is True

    def test_read_skips_torn_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        Manifest(path).record(ManifestEntry(key="k", spec={}, hit=True,
                                            wall_s=0.0))
        with open(path, "a") as handle:
            handle.write('{"key": "torn')
        assert len(Manifest(path).read()) == 1

    def test_tail_streams_and_holds_back_partial_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = Manifest(path)
        manifest.record(ManifestEntry(key="k1", spec={}, hit=False,
                                      wall_s=0.1))
        lines, offset = manifest.tail(0)
        assert len(lines) == 1
        with open(path, "a") as handle:
            handle.write('{"key": "mid-write')
        assert manifest.tail(offset) == ([], offset)

    def test_tail_skips_torn_row_glued_by_a_relaunched_shard(
            self, tmp_path):
        """A SIGKILLed shard leaves a partial row; its relaunch then
        appends a fresh row, gluing the fragment to the next newline.
        The glued garbage must be skipped with a warning — not
        relayed into the shared manifest, where reading it back would
        raise."""
        path = tmp_path / "m.jsonl"
        manifest = Manifest(path)
        manifest.record(ManifestEntry(key="k1", spec={}, hit=False,
                                      wall_s=0.1))
        with open(path, "a") as handle:
            handle.write('{"key": "killed-mid-')  # no newline
        manifest.record(ManifestEntry(key="k2", spec={}, hit=False,
                                      wall_s=0.2))
        with pytest.warns(RuntimeWarning, match="torn row"):
            lines, offset = manifest.tail(0)
        assert [json.loads(line)["key"] for line in lines] == ["k1"]
        manifest.record(ManifestEntry(key="k3", spec={}, hit=True,
                                      wall_s=0.0))
        more, _ = manifest.tail(offset)
        assert [json.loads(line)["key"] for line in more] == ["k3"]


class TestRunner:
    def test_results_align_with_specs(self, tmp_path):
        sweep = tiny_sweep()
        specs = sweep.expand()
        results = Runner(cache=ResultCache(tmp_path)).run(sweep)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert result.scheduler == spec.scheduler
            assert result.transactions == spec.transactions

    def test_second_run_is_all_cache_hits(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        first = runner.run(tiny_sweep())
        assert (runner.hits, runner.misses) == (0, 4)
        second = runner.run(tiny_sweep())
        assert (runner.hits, runner.misses) == (4, 0)
        assert first == second

    def test_parallel_equals_serial(self, tmp_path):
        sweep = tiny_sweep()
        serial = Runner(jobs=1).run(sweep)
        parallel = Runner(jobs=2).run(sweep)
        assert serial == parallel

    def test_parallel_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        parallel = Runner(jobs=2, cache=cache)
        first = parallel.run(tiny_sweep())
        assert parallel.misses == 4
        warm = Runner(jobs=2, cache=cache)
        assert warm.run(tiny_sweep()) == first
        assert (warm.hits, warm.misses) == (4, 0)

    def test_manifest_records_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        manifest = Manifest(tmp_path / "manifest.jsonl")
        Runner(cache=cache, manifest=manifest).run(tiny_sweep())
        Runner(cache=cache, manifest=manifest).run(tiny_sweep())
        entries = manifest.read()
        assert len(entries) == 8
        assert [e.hit for e in entries] == [False] * 4 + [True] * 4
        misses = [e for e in entries if not e.hit]
        assert all(e.wall_s > 0 for e in misses)
        assert all(e.worker is not None for e in misses)
        assert all(len(e.key) == 64 for e in entries)

    def test_deterministic_error_fails_fast(self, monkeypatch):
        calls = []

        def boom(spec):
            calls.append(spec)
            raise ValueError("deterministic failure")

        monkeypatch.setattr(runner_mod, "execute_spec", boom)
        with pytest.raises(RunError, match="failed after 1 attempt"):
            Runner(retries=3).run([tiny_spec()])
        assert len(calls) == 1

    def test_transient_error_is_retried(self, monkeypatch):
        real = execute_spec
        calls = []

        def flaky(spec):
            calls.append(spec)
            if len(calls) < 3:
                raise OSError("worker lost")
            return real(spec)

        monkeypatch.setattr(runner_mod, "execute_spec", flaky)
        runner = Runner(retries=2)
        results = runner.run([tiny_spec()])
        assert len(calls) == 3
        assert results[0] == real(tiny_spec())
        assert runner.entries[0].attempts == 3

    def test_retries_exhausted_raises(self, monkeypatch):
        def always_down(spec):
            raise OSError("worker lost")

        monkeypatch.setattr(runner_mod, "execute_spec", always_down)
        with pytest.raises(RunError, match="failed after 2 attempt"):
            Runner(retries=1).run([tiny_spec()])

    def test_timeout_interrupts_a_wedged_run(self, monkeypatch):
        def wedged(spec):
            time.sleep(5.0)

        monkeypatch.setattr(runner_mod, "execute_spec", wedged)
        runner = Runner(timeout=0.05, retries=0)
        start = time.perf_counter()
        with pytest.raises(RunError) as excinfo:
            runner.run([tiny_spec()])
        assert time.perf_counter() - start < 2.0
        assert isinstance(excinfo.value.__cause__, SimTimeoutError)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            Runner(retries=-1)


class TestExecuteSpec:
    def test_team_size_reaches_the_scheduler(self):
        small = execute_spec(tiny_spec(scheduler="strex", team_size=2,
                                       cores=1, transactions=8))
        large = execute_spec(tiny_spec(scheduler="strex", team_size=8,
                                       cores=1, transactions=8))
        assert small.transactions == large.transactions == 8
        assert large.mean_latency > small.mean_latency

    def test_prefetcher_recorded_in_scheduler_label(self):
        run = execute_spec(tiny_spec(prefetcher="nextline"))
        assert run.scheduler == "base+nextline"

    def test_result_serializes_through_json(self):
        result = execute_spec(tiny_spec())
        blob = json.dumps(result.to_dict())
        assert RunResult.from_dict(json.loads(blob)) == result


class TestOverrides:
    def test_strex_overrides_reach_the_config(self):
        spec = tiny_spec(scheduler="strex",
                         strex_overrides={"phase_bits": 2, "window": 5})
        config = spec.build_config()
        assert config.strex.phase_bits == 2
        assert config.strex.window == 5

    def test_cache_overrides_apply_to_both_l1s(self):
        config = tiny_spec(cache_overrides={"assoc": 2}).build_config()
        assert config.l1i.assoc == 2
        assert config.l1d.assoc == 2

    def test_hybrid_overrides_reach_the_config(self):
        spec = tiny_spec(scheduler="hybrid",
                         hybrid_overrides={"slack_units": 4})
        assert spec.build_config().hybrid.slack_units == 4

    def test_strex_overrides_rejected_for_base(self):
        with pytest.raises(ValueError, match="strex_overrides"):
            tiny_spec(scheduler="base",
                      strex_overrides={"phase_bits": 2})

    def test_hybrid_overrides_rejected_for_strex(self):
        with pytest.raises(ValueError, match="hybrid_overrides"):
            tiny_spec(scheduler="strex",
                      hybrid_overrides={"slack_units": 4})

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown StrexConfig"):
            tiny_spec(scheduler="strex",
                      strex_overrides={"phase_bitz": 2})

    def test_non_scalar_value_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            tiny_spec(scheduler="strex",
                      strex_overrides={"phase_bits": [2]})

    def test_team_size_conflict_rejected(self):
        with pytest.raises(ValueError, match="pick one"):
            tiny_spec(scheduler="strex", team_size=4,
                      strex_overrides={"team_size": 8})

    def test_replacement_conflict_rejected(self):
        with pytest.raises(ValueError, match="pick one"):
            tiny_spec(replacement="bip",
                      cache_overrides={"replacement": "lru"})

    def test_describe_names_the_knobs(self):
        spec = tiny_spec(scheduler="strex",
                         strex_overrides={"phase_bits": 2})
        assert "strex{phase_bits=2}" in spec.describe()

    def test_roundtrip_with_overrides(self):
        spec = tiny_spec(scheduler="hybrid", team_size=6,
                         strex_overrides={"window": 5},
                         hybrid_overrides={"slack_units": 4})
        data = json.loads(json.dumps(spec.to_dict()))
        assert RunSpec.from_dict(data) == spec

    def test_override_changes_key_default_spelling_does_not(self):
        bare = tiny_spec(scheduler="strex")
        assert spec_key(tiny_spec(
            scheduler="strex", strex_overrides={"window": 5},
        )) != spec_key(bare)
        # window=30 is the StrexConfig default: same expanded config,
        # same content address.
        assert spec_key(tiny_spec(
            scheduler="strex", strex_overrides={"window": 30},
        )) == spec_key(bare)


class TestModes:
    def test_typed_modes_require_txn_type(self):
        with pytest.raises(ValueError, match="requires txn_type"):
            tiny_spec(mode="uniform")

    def test_mix_rejects_txn_type(self):
        with pytest.raises(ValueError, match="txn_type"):
            tiny_spec(txn_type="NewOrder")

    def test_replicas_only_for_identical(self):
        with pytest.raises(ValueError, match="replicas"):
            tiny_spec(replicas=2)
        with pytest.raises(ValueError, match="replicas"):
            tiny_spec(mode="identical", txn_type="NewOrder", replicas=0)

    def test_analysis_modes_reject_schedulers(self):
        with pytest.raises(ValueError, match="ignores the scheduler"):
            tiny_spec(mode="overlap", txn_type="NewOrder",
                      scheduler="strex")
        with pytest.raises(ValueError, match="ignores the scheduler"):
            tiny_spec(mode="fptable", prefetcher="pif")

    def test_overlap_needs_two_traces(self):
        with pytest.raises(ValueError, match="at least two"):
            tiny_spec(mode="overlap", txn_type="NewOrder",
                      transactions=1)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            tiny_spec(mode="profile")

    def test_uniform_simulates_one_type(self):
        result = execute_spec(tiny_spec(mode="uniform",
                                        txn_type="Payment"))
        assert isinstance(result, RunResult)
        assert result.transactions == 4

    def test_identical_replicates(self):
        result = execute_spec(tiny_spec(
            mode="identical", txn_type="NewOrder", transactions=2,
            replicas=3))
        assert isinstance(result, RunResult)
        assert result.transactions == 6

    def test_overlap_returns_overlap_result(self):
        result = execute_spec(tiny_spec(mode="overlap",
                                        txn_type="NewOrder"))
        assert isinstance(result, OverlapResult)
        assert result.txn_type == "NewOrder"
        assert result.intervals
        for bands in (result.summarize(), result.summarize_early()):
            assert all(0.0 <= v <= 1.0 for v in bands.values())

    def test_fptable_returns_footprint_result(self):
        result = execute_spec(tiny_spec(mode="fptable",
                                        transactions=2))
        assert isinstance(result, FootprintResult)
        assert result.units("NewOrder") >= 1
        assert "Payment" in result.known_types()

    def test_analysis_results_cache_and_roundtrip(self, tmp_path):
        specs = [
            tiny_spec(mode="overlap", txn_type="NewOrder"),
            tiny_spec(mode="fptable", transactions=2),
            tiny_spec(),
        ]
        runner = Runner(cache=ResultCache(tmp_path))
        first = runner.run(specs)
        assert (runner.hits, runner.misses) == (0, 3)
        second = runner.run(specs)
        assert (runner.hits, runner.misses) == (3, 0)
        assert first == second
        assert isinstance(second[0], OverlapResult)
        assert isinstance(second[1], FootprintResult)
        assert isinstance(second[2], RunResult)


class TestSweepOverrides:
    def test_override_grid_expands_as_axes(self):
        sweep = tiny_sweep(workloads=("tpcc",),
                           schedulers=("strex",),
                           strex_overrides={"phase_bits": (2, 4),
                                            "window": (5,)})
        specs = sweep.expand()
        assert len(specs) == 2
        assert [dict(s.strex_overrides) for s in specs] == [
            {"phase_bits": 2, "window": 5},
            {"phase_bits": 4, "window": 5},
        ]

    def test_non_team_schedulers_collapse_override_cells(self):
        sweep = tiny_sweep(workloads=("tpcc",),
                           schedulers=("base", "strex"),
                           strex_overrides={"phase_bits": (2, 4)})
        specs = sweep.expand()
        base = [s for s in specs if s.scheduler == "base"]
        strex = [s for s in specs if s.scheduler == "strex"]
        assert len(base) == 1 and base[0].strex_overrides is None
        assert len(strex) == 2

    def test_override_grid_without_team_scheduler_is_an_error(self):
        with pytest.raises(ValueError, match="strex_overrides require"):
            tiny_sweep(schedulers=("base",),
                       strex_overrides={"phase_bits": (2,)})

    def test_hybrid_grid_without_hybrid_is_an_error(self):
        with pytest.raises(ValueError, match="hybrid_overrides require"):
            tiny_sweep(schedulers=("base", "strex"),
                       hybrid_overrides={"slack_units": (4,)})

    def test_empty_override_axis_is_an_error(self):
        with pytest.raises(ValueError, match="empty"):
            tiny_sweep(schedulers=("strex",),
                       strex_overrides={"phase_bits": ()})

    def test_typed_mode_sweep(self):
        sweep = tiny_sweep(workloads=("tpcc",), schedulers=("base",),
                           mode="uniform",
                           txn_types=("NewOrder", "Payment"))
        specs = sweep.expand()
        assert [s.txn_type for s in specs] == ["NewOrder", "Payment"]
        assert all(s.mode == "uniform" for s in specs)


class TestManifestSummary:
    def test_aggregates(self):
        entries = [
            ManifestEntry(key="k1", spec={"workload": "tpcc",
                                          "scheduler": "base"},
                          hit=False, wall_s=2.0),
            ManifestEntry(key="k1", spec={"workload": "tpcc",
                                          "scheduler": "base"},
                          hit=True, wall_s=0.0),
            ManifestEntry(key="k2", spec={"workload": "tpcc",
                                          "scheduler": "strex"},
                          hit=False, wall_s=0.5, attempts=3),
            ManifestEntry(key="k3", spec={"workload": "tpce",
                                          "scheduler": "base"},
                          hit=True, wall_s=0.0),
        ]
        summary = summarize_entries(entries, top=2)
        assert (summary.runs, summary.hits, summary.misses) == (4, 2, 2)
        assert summary.hit_rate == 0.5
        assert summary.wall_s == 2.5
        # k1's hit is credited its executed wall; k3 never executed.
        assert summary.saved_s == 2.0
        assert summary.retried == 1
        assert summary.groups[("tpcc", "base")]["runs"] == 2
        assert summary.slowest[0][0] == 2.0
        assert summary.slowest[0][2] == "k1"

    def test_to_dict_is_json_and_has_hit_rate(self):
        summary = summarize_entries([
            ManifestEntry(key="k", spec={}, hit=True, wall_s=0.0),
        ])
        data = json.loads(json.dumps(summary.to_dict()))
        assert data["hit_rate"] == 1.0
        assert data["runs"] == 1

    def test_real_runner_manifest_summarizes(self, tmp_path):
        cache = ResultCache(tmp_path)
        manifest = Manifest(tmp_path / "manifest.jsonl")
        Runner(cache=cache, manifest=manifest).run(tiny_sweep())
        Runner(cache=cache, manifest=manifest).run(tiny_sweep())
        summary = summarize_entries(manifest.read())
        assert summary.runs == 8
        assert summary.hit_rate == 0.5
        assert summary.saved_s > 0
        assert summary.slowest
