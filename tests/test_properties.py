"""Cross-cutting property-based tests (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import CacheConfig, MemoryConfig, NocConfig, tiny_scale
from repro.exp import ShardSpec, SweepSpec, partition, spec_key
from repro.mem.dram import DramModel
from repro.noc.torus import TorusNetwork, grid_shape
from repro.sched.base import BaselineScheduler
from repro.sched.slicc import SliccScheduler
from repro.sched.strex import StrexScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 7)
    return builder.build()


@st.composite
def trace_sets(draw):
    """A few transactions of 1-2 types with random block streams."""
    num_types = draw(st.integers(1, 2))
    traces = []
    txn_id = 0
    for t in range(num_types):
        base = 10_000 * (t + 1)
        length = draw(st.integers(5, 120))
        shared = [base + draw(st.integers(0, 90)) for _ in range(length)]
        for _ in range(draw(st.integers(1, 4))):
            # Instances perturb the shared stream slightly.
            stream = list(shared)
            if draw(st.booleans()):
                stream.append(base + draw(st.integers(0, 90)))
            traces.append(synthetic_trace(txn_id, stream, f"T{t}"))
            txn_id += 1
    return traces


@given(trace_sets(), st.integers(1, 4),
       st.sampled_from(["base", "strex", "slicc"]))
@settings(max_examples=60, deadline=None)
def test_every_scheduler_conserves_work(traces, cores, scheduler_name):
    """Property: every scheduler runs every thread to completion,
    executes exactly the trace's instructions, and records a latency
    for each transaction."""
    schedulers = {
        "base": BaselineScheduler,
        "strex": StrexScheduler,
        "slicc": SliccScheduler,
    }
    config = tiny_scale(num_cores=cores)
    engine = SimulationEngine(config, traces,
                              schedulers[scheduler_name])
    result = engine.run("prop")
    expected = sum(t.total_instructions for t in traces)
    assert result.instructions == expected
    assert all(t.finished for t in engine.threads)
    assert len(result.latencies) == len(traces)
    assert result.cycles > 0
    # Misses never exceed accesses; accesses == number of events.
    events = sum(len(t) for t in traces)
    assert result.i_misses <= events


@given(st.lists(st.integers(0, 63), min_size=1, max_size=400))
@settings(max_examples=50, deadline=None)
def test_lru_cache_matches_reference_model(blocks):
    """The Cache under LRU behaves exactly like a reference model built
    from a dict of last-use timestamps."""
    cache = Cache(CacheConfig(512, assoc=4), rng=random.Random(1))
    num_sets = cache.num_sets
    reference = {}  # block -> last use time
    time = 0
    for block in blocks:
        set_index = block % num_sets
        resident = [b for b in reference if b % num_sets == set_index]
        expect_hit = block in reference
        if not expect_hit and len(resident) == 4:
            victim = min(resident, key=reference.get)
            del reference[victim]
        reference[block] = time
        time += 1
        assert cache.access(block) is expect_hit
    assert set(cache.resident_blocks()) == set(reference)


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_dram_latencies_are_bounded(blocks):
    config = MemoryConfig()
    dram = DramModel(config)
    for block in blocks:
        latency = dram.access(block)
        assert latency in (config.base_latency, config.row_hit_latency)
    assert dram.accesses == len(blocks)


@given(st.integers(1, 64))
@settings(max_examples=64, deadline=None)
def test_torus_distance_bound(num_nodes):
    """Hop distance never exceeds the torus diameter."""
    torus = TorusNetwork(num_nodes, NocConfig())
    rows, cols = grid_shape(num_nodes)
    diameter = rows // 2 + cols // 2
    for src in range(num_nodes):
        for dst in range(num_nodes):
            assert torus.hop_distance(src, dst) <= diameter


@st.composite
def sweep_specs(draw):
    """Random valid SweepSpecs over the cheap-to-validate axes."""
    schedulers = tuple(draw(st.lists(
        st.sampled_from(["base", "strex", "slicc", "hybrid"]),
        min_size=1, max_size=3, unique=True)))
    team_sizes = (None,)
    if any(s in ("strex", "hybrid") for s in schedulers):
        team_sizes = draw(st.sampled_from([(None,), (2,), (None, 4)]))
    return SweepSpec(
        workloads=tuple(draw(st.lists(
            st.sampled_from(["tpcc", "tpce", "mapreduce"]),
            min_size=1, max_size=2, unique=True))),
        schedulers=schedulers,
        cores=tuple(draw(st.lists(st.integers(1, 8), min_size=1,
                                  max_size=2, unique=True))),
        team_sizes=team_sizes,
        seeds=tuple(draw(st.lists(st.integers(0, 10_000), min_size=1,
                                  max_size=3, unique=True))),
        scales=("tiny",),
        transactions=draw(st.integers(1, 8)),
    )


@given(sweep_specs())
@settings(max_examples=25, deadline=None)
def test_shard_assignment_is_a_partition(sweep):
    """Property: for any sweep, every expanded cell's cache key lands
    in exactly one of N hash-range shards, for several N — sharding
    never drops or duplicates a cell."""
    specs = sweep.expand()
    keys = [spec_key(spec) for spec in specs]
    for count in (1, 2, 3, 7):
        shards = [ShardSpec(i, count) for i in range(count)]
        for key in keys:
            owners = [s.index for s in shards if s.selects(key)]
            assert owners == [ShardSpec.assign(key, count)]
        _, by_shard = partition(specs, count)
        indices = sorted(i for owned in by_shard.values()
                         for i in owned)
        assert indices == list(range(len(specs)))
        for shard_index, owned in by_shard.items():
            for idx in owned:
                assert ShardSpec(shard_index, count).selects(keys[idx])


@given(trace_sets())
@settings(max_examples=30, deadline=None)
def test_strex_team_misses_not_worse_than_double_base(traces):
    """Sanity bound: STREX never pathologically inflates instruction
    misses (forward-progress guarantee keeps it near the baseline even
    on adversarial random streams)."""
    config = tiny_scale(num_cores=1)
    base = SimulationEngine(config, traces, BaselineScheduler).run("x")
    strex = SimulationEngine(config, traces, StrexScheduler).run("x")
    assert strex.i_misses <= base.i_misses * 2 + 64
