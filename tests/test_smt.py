"""Tests for the 2-way SMT baseline scheduler (Section 4.4.4)."""

import pytest

from repro.config import tiny_scale
from repro.sched.base import BaselineScheduler
from repro.sched.smt import SmtBaselineScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 5)
    return builder.build()


class TestSmt:
    def test_rejects_zero_ways(self):
        traces = [synthetic_trace(0, [1])]
        with pytest.raises(ValueError):
            SimulationEngine(tiny_scale(), traces,
                             lambda e: SmtBaselineScheduler(e, ways=0))

    def test_all_threads_finish(self):
        traces = [synthetic_trace(i, list(range(i * 50, i * 50 + 30)))
                  for i in range(6)]
        engine = SimulationEngine(tiny_scale(num_cores=2), traces,
                                  SmtBaselineScheduler)
        result = engine.run("x")
        assert result.transactions == 6
        assert all(t.finished for t in engine.threads)

    def test_two_contexts_per_core(self):
        traces = [synthetic_trace(i, list(range(100))) for i in range(8)]
        engine = SimulationEngine(tiny_scale(num_cores=2), traces,
                                  SmtBaselineScheduler)
        scheduler = engine.scheduler
        scheduler.start()
        assert all(len(c) == 2 for c in scheduler._contexts)

    def test_contexts_interleave(self):
        """Both contexts make progress before either finishes."""
        traces = [synthetic_trace(i, list(range(i * 1000, i * 1000 + 64)))
                  for i in range(2)]
        engine = SimulationEngine(tiny_scale(num_cores=1), traces,
                                  SmtBaselineScheduler)
        scheduler = engine.scheduler
        scheduler.start()
        for _ in range(4):
            scheduler.run_slice(0)
        positions = [t.pos for t in engine.threads]
        assert all(0 < pos < 64 for pos in positions)

    def test_context_switch_is_free(self):
        """SMT context rotation charges no cycles (unlike STREX)."""
        blocks = list(range(2000, 2016))
        traces = [synthetic_trace(i, blocks * 4) for i in range(2)]
        config = tiny_scale(num_cores=1)
        smt = SimulationEngine(config, traces,
                               SmtBaselineScheduler).run("x")
        base = SimulationEngine(config, traces,
                                BaselineScheduler).run("x")
        # Same footprint, fits the cache: identical cycles either way.
        assert smt.cycles == pytest.approx(base.cycles, rel=0.02)

    def test_shared_l1_inflates_data_misses(self, tiny_tpcc):
        traces = tiny_tpcc.generate_mix(12, seed=31)
        config = tiny_scale(num_cores=2)
        base = SimulationEngine(config, traces,
                                BaselineScheduler).run("x")
        smt = SimulationEngine(config, traces,
                               SmtBaselineScheduler).run("x")
        assert smt.d_mpki > base.d_mpki
