"""Edge cases for the schedulers and engine."""

import pytest

from repro.config import tiny_scale
from repro.sched.base import BaselineScheduler
from repro.sched.hybrid import HybridScheduler
from repro.sched.slicc import SliccScheduler
from repro.sched.strex import StrexScheduler
from repro.sim.engine import SimulationEngine
from repro.trace.trace import TraceBuilder

ALL_SCHEDULERS = [BaselineScheduler, StrexScheduler, SliccScheduler,
                  HybridScheduler]


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 5)
    return builder.build()


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
class TestDegenerateInputs:
    def test_single_event_trace(self, scheduler):
        engine = SimulationEngine(tiny_scale(num_cores=2),
                                  [synthetic_trace(0, [1])], scheduler)
        result = engine.run("x")
        assert result.transactions == 1
        assert result.instructions == 5

    def test_one_thread_many_cores(self, scheduler):
        traces = [synthetic_trace(0, list(range(2000, 2100)))]
        engine = SimulationEngine(tiny_scale(num_cores=4), traces,
                                  scheduler)
        result = engine.run("x")
        assert result.transactions == 1

    def test_more_threads_than_everything(self, scheduler):
        traces = [synthetic_trace(i, [3000 + i, 3001 + i])
                  for i in range(40)]
        engine = SimulationEngine(tiny_scale(num_cores=2), traces,
                                  scheduler)
        result = engine.run("x")
        assert result.transactions == 40
        assert len(result.latencies) == 40

    def test_many_types_few_cores(self, scheduler):
        traces = [
            synthetic_trace(i, [(i % 7) * 1000 + j for j in range(30)],
                            txn_type=f"T{i % 7}")
            for i in range(14)
        ]
        engine = SimulationEngine(tiny_scale(num_cores=2), traces,
                                  scheduler)
        result = engine.run("x")
        assert result.transactions == 14


class TestStrexEdge:
    def test_repeating_single_block(self):
        """A degenerate trace touching one block forever never context
        switches (no evictions at all)."""
        traces = [synthetic_trace(i, [42] * 200) for i in range(4)]
        engine = SimulationEngine(tiny_scale(num_cores=1), traces,
                                  StrexScheduler)
        result = engine.run("x")
        assert result.context_switches == 0
        assert result.i_misses == 1

    def test_alternating_conflict_blocks(self):
        """Blocks mapping to one set force constant evictions; progress
        is still guaranteed (Section 4.4.1)."""
        sets = tiny_scale().l1i.num_sets
        blocks = [1000 + i * sets for i in range(12)] * 10
        traces = [synthetic_trace(i, blocks) for i in range(3)]
        engine = SimulationEngine(tiny_scale(num_cores=1), traces,
                                  StrexScheduler)
        result = engine.run("x")
        assert result.transactions == 3

    def test_team_larger_than_pool(self):
        traces = [synthetic_trace(i, [2000 + j for j in range(50)])
                  for i in range(3)]
        engine = SimulationEngine(
            tiny_scale(num_cores=1), traces,
            lambda e: StrexScheduler(e, team_size=50),
        )
        result = engine.run("x")
        assert result.transactions == 3
        assert engine.scheduler.teams_formed == 1


class TestSliccEdge:
    def test_fewer_threads_than_cores(self):
        traces = [synthetic_trace(0, [2000 + i for i in range(100)])]
        engine = SimulationEngine(tiny_scale(num_cores=4), traces,
                                  SliccScheduler)
        result = engine.run("x")
        assert result.transactions == 1

    def test_single_core_slicc_never_migrates(self):
        traces = [synthetic_trace(i, [2000 + j for j in range(100)])
                  for i in range(3)]
        engine = SimulationEngine(tiny_scale(num_cores=1), traces,
                                  SliccScheduler)
        result = engine.run("x")
        assert result.migrations == 0
        assert result.transactions == 3


class TestHybridEdge:
    def test_single_type_pool(self):
        traces = [synthetic_trace(i, [2000 + j for j in range(40)],
                                  txn_type="only")
                  for i in range(4)]
        engine = SimulationEngine(tiny_scale(num_cores=2), traces,
                                  HybridScheduler)
        result = engine.run("x")
        assert result.transactions == 4
        assert engine.scheduler.decision in ("strex", "slicc")

    def test_decision_uses_cores(self):
        traces = [synthetic_trace(i, [2000 + j for j in range(160)],
                                  txn_type="big")
                  for i in range(4)]
        small = SimulationEngine(tiny_scale(num_cores=2), traces,
                                 HybridScheduler)
        big = SimulationEngine(tiny_scale(num_cores=8), traces,
                               HybridScheduler)
        assert small.scheduler.decision == "strex"  # 5 units > 2 cores
        assert big.scheduler.decision == "slicc"    # 5 units <= 8 cores
