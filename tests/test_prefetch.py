"""Tests for the instruction prefetchers."""

from repro.config import tiny_scale
from repro.prefetch.base import NoPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import PifIdealPrefetcher
from repro.prefetch.tifs import TifsPrefetcher
from repro.sim.api import simulate
from repro.trace.trace import TraceBuilder


def synthetic_trace(txn_id, blocks, txn_type="S"):
    builder = TraceBuilder(txn_id, txn_type)
    for block in blocks:
        builder.append(block, 10)
    return builder.build()


class TestNoPrefetcher:
    def test_never_covers(self):
        prefetcher = NoPrefetcher(2)
        assert prefetcher.covers(0, 123) is False

    def test_coverage_zero_without_misses(self):
        assert NoPrefetcher(1).coverage == 0.0

    def test_record_tracks_ratio(self):
        prefetcher = NoPrefetcher(1)
        prefetcher.record(True)
        prefetcher.record(False)
        assert prefetcher.coverage == 0.5
        snap = prefetcher.snapshot()
        assert snap["covered_misses"] == 1


class TestNextLine:
    def test_covers_sequential_blocks(self):
        prefetcher = NextLinePrefetcher(1, depth=2)
        prefetcher.on_fetch(0, 100, False)
        assert prefetcher.covers(0, 101)
        assert prefetcher.covers(0, 102)
        assert not prefetcher.covers(0, 104)

    def test_does_not_cover_jumps(self):
        prefetcher = NextLinePrefetcher(1)
        prefetcher.on_fetch(0, 100, False)
        assert not prefetcher.covers(0, 500)

    def test_buffer_bounded(self):
        prefetcher = NextLinePrefetcher(1, depth=1, buffer_blocks=4)
        for block in range(100, 120):
            prefetcher.on_fetch(0, block, False)
        assert len(prefetcher._armed[0]) <= 4

    def test_per_core_isolation(self):
        prefetcher = NextLinePrefetcher(2)
        prefetcher.on_fetch(0, 100, False)
        assert not prefetcher.covers(1, 101)

    def test_sequential_code_mostly_covered(self):
        """A straight-line run: all but the first block are covered."""
        trace = synthetic_trace(0, [2000 + i for i in range(64)])
        result = simulate(tiny_scale(num_cores=1), [trace],
                          prefetcher="nextline")
        assert result.extra["prefetch_coverage"] > 0.9

    def test_speeds_up_baseline(self, tiny_tpcc):
        traces = tiny_tpcc.generate_uniform("Payment", 6, seed=51)
        config = tiny_scale(num_cores=1)
        base = simulate(config, traces, "base")
        nextline = simulate(config, traces, "base",
                            prefetcher="nextline")
        assert nextline.cycles < base.cycles
        assert nextline.scheduler == "base+nextline"


class TestPifIdeal:
    def test_covers_everything(self):
        prefetcher = PifIdealPrefetcher(1)
        assert prefetcher.covers(0, 1)
        assert prefetcher.covers(0, 99999)

    def test_no_instruction_stalls(self):
        """PIF-No-Overhead: instruction misses are counted (traffic) but
        never stall, so cycles equal the compute+data time."""
        blocks = [2000 + i for i in range(200)]
        trace = synthetic_trace(0, blocks)
        config = tiny_scale(num_cores=1)
        pif = simulate(config, [trace], prefetcher="pif")
        base = simulate(config, [trace])
        assert pif.i_misses == base.i_misses  # same demand traffic
        assert pif.cycles < base.cycles

    def test_l2_traffic_still_generated(self):
        blocks = [2000 + i for i in range(200)]
        trace = synthetic_trace(0, blocks)
        pif = simulate(tiny_scale(num_cores=1), [trace],
                       prefetcher="pif")
        assert pif.l2_traffic >= 200

    def test_comparable_to_strex(self, tiny_tpcc):
        """PIF removes stalls but pays per-miss L2 contention, so STREX
        lands in the same performance band (the paper reports STREX
        within 5% of PIF for TPC-C and 9% *better* for TPC-E)."""
        traces = tiny_tpcc.generate_uniform("Payment", 8, seed=53)
        config = tiny_scale(num_cores=1)
        pif = simulate(config, traces, "base", prefetcher="pif")
        strex = simulate(config, traces, "strex")
        ratio = pif.cycles / strex.cycles
        assert 0.8 < ratio < 1.2, ratio


class TestTifs:
    def test_replays_recorded_stream(self):
        prefetcher = TifsPrefetcher(1, stream_length=4)
        stream = [100, 205, 317, 428, 533]
        for block in stream:
            prefetcher.on_fetch(0, block, False)
        # Re-encounter the head: the recorded successors are armed.
        prefetcher.on_fetch(0, 100, False)
        assert prefetcher.covers(0, 205)
        assert prefetcher.covers(0, 533)

    def test_no_coverage_on_first_pass(self):
        prefetcher = TifsPrefetcher(1)
        prefetcher.on_fetch(0, 100, False)
        assert not prefetcher.covers(0, 205)

    def test_hits_do_not_pollute_history(self):
        prefetcher = TifsPrefetcher(1)
        prefetcher.on_fetch(0, 100, True)
        assert 100 not in prefetcher._history[0]

    def test_history_bounded(self):
        prefetcher = TifsPrefetcher(1, history_heads=16)
        for block in range(100):
            prefetcher.on_fetch(0, block * 7, False)
        assert len(prefetcher._history[0]) <= 16

    def test_covers_looping_code(self):
        """Second iteration of a loop is covered once recorded."""
        prefetcher = TifsPrefetcher(1, stream_length=8)
        loop = [100, 220, 340, 460]
        for _ in range(2):
            for block in loop:
                prefetcher.on_fetch(0, block, False)
        covered = sum(prefetcher.covers(0, b) for b in loop[1:])
        assert covered >= 2
