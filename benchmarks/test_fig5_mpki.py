"""Figure 5: L1 instruction and data MPKI for Base, SLICC, and STREX
over 2-16 cores on TPC-C-1, TPC-C-10, TPC-E, and MapReduce.

Shape checks (paper, Section 5.2):
- baseline I-MPKI is practically independent of the core count;
- STREX reduces I-MPKI by ~30-45% for the OLTP workloads, roughly
  independent of cores;
- baseline D-MPKI grows with cores (coherence); STREX reduces it;
- SLICC's I-MPKI improves as cores grow, its D-MPKI always exceeds the
  baseline's;
- MapReduce is unaffected (within noise) by every technique.
"""

from __future__ import annotations

from common import (
    CORE_COUNTS,
    PAPER_SHAPES,
    WORKLOAD_KEYS,
    bench_spec,
    reduction,
    run_grid,
    write_report,
)
from repro.analysis.report import format_table

SCHEDULERS = ("base", "slicc", "strex")


def run_fig5():
    cells = [(name, cores, scheduler)
             for name in WORKLOAD_KEYS
             for cores in CORE_COUNTS
             for scheduler in SCHEDULERS]
    runs = run_grid([bench_spec(name, cores, scheduler)
                     for name, cores, scheduler in cells],
                    name="fig5")
    results = dict(zip(cells, runs))
    rows = [[name, cores, scheduler,
             round(run.i_mpki, 2), round(run.d_mpki, 2)]
            for (name, cores, scheduler), run in results.items()]
    report = format_table(
        ["workload", "cores", "scheduler", "I-MPKI", "D-MPKI"], rows)
    write_report("fig5_mpki.txt", report)
    return results, report


def test_fig5_mpki(benchmark):
    results, report = benchmark.pedantic(run_fig5, rounds=1,
                                         iterations=1)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for name in ("TPC-C-1", "TPC-C-10", "TPC-E"):
        base_impki = [results[(name, c, "base")].i_mpki
                      for c in CORE_COUNTS]
        strex_impki = [results[(name, c, "strex")].i_mpki
                       for c in CORE_COUNTS]
        # Baseline I-MPKI ~constant across cores.
        assert max(base_impki) - min(base_impki) < 0.1 * max(base_impki)
        # STREX cuts instruction misses substantially at every count.
        for c in CORE_COUNTS:
            cut = reduction(results[(name, c, "base")],
                            results[(name, c, "strex")], "i_mpki")
            assert 20.0 < cut < 60.0, (name, c, cut)
        # STREX's I-MPKI is insensitive to the core count (<2% in the
        # paper; we allow a little more noise).
        assert max(strex_impki) - min(strex_impki) \
            < 0.12 * max(strex_impki)
        # Baseline data misses grow with cores (coherence).  STREX keeps
        # data misses at baseline level (paper: a 13% reduction; our
        # substrate's lighter data traffic leaves STREX within a few
        # percent of the baseline instead -- see EXPERIMENTS.md) while
        # SLICC inflates them substantially.
        base_d = [results[(name, c, "base")].d_mpki for c in CORE_COUNTS]
        assert base_d[-1] > base_d[0]
        assert results[(name, 16, "strex")].d_mpki < \
            results[(name, 16, "base")].d_mpki * 1.08
        # SLICC: instruction misses fall as cores grow; data misses
        # always exceed the baseline.
        slicc_i = [results[(name, c, "slicc")].i_mpki
                   for c in CORE_COUNTS]
        assert slicc_i[-1] < slicc_i[0]
        for c in CORE_COUNTS:
            assert results[(name, c, "slicc")].d_mpki > \
                results[(name, c, "base")].d_mpki

    # MapReduce: unaffected by every technique.  I-MPKI is near zero
    # (the footprint fits the L1-I), so the tolerance is absolute: a
    # 0.1-MPKI cold-start difference is noise, not an effect.
    for c in CORE_COUNTS:
        base = results[("MapReduce", c, "base")]
        for scheduler in ("slicc", "strex"):
            other = results[("MapReduce", c, scheduler)]
            assert abs(other.i_mpki - base.i_mpki) <= \
                max(0.1, 0.05 * base.i_mpki)
            assert abs(other.d_mpki - base.d_mpki) <= \
                0.1 * base.d_mpki + 0.05
