"""Table 4: hardware component storage costs.

Computed from the field widths of the paper's Table 4 at the paper-scale
system (32 KiB L1-I, 20-entry thread queue, 30-entry team table); the
totals must reproduce the paper's bit counts, and STREX's storage must
be under 2% of PIF's ~40 KiB/core (Section 5.6).
"""

from __future__ import annotations

from common import write_report
from repro.analysis.report import format_table
from repro.config import paper_scale
from repro.core.hwcost import HardwareCostModel


def run_table4():
    model = HardwareCostModel(paper_scale(), max_team_size=20,
                              formation_window=30)
    return model.breakdown()


def test_table4_hwcost(benchmark):
    breakdown = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    rows = [[key, value] for key, value in breakdown.items()]
    report = format_table(["component", "value"], rows)
    write_report("table4_hwcost.txt", report)
    print("\n" + report)

    # Paper Table 4 totals.
    assert breakdown["thread_scheduler_total_bits"] == 5324  # 665.5 B
    assert breakdown["team_table_bits"] == 1800              # 225 B
    assert breakdown["slicc_monitor_bits"] == 2208           # 276 B
    assert breakdown["hybrid_total_bytes"] == 1166.5
    # Abstract: <2% of PIF's storage.
    assert breakdown["fraction_of_pif"] < 0.025
