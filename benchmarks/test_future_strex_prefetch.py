"""Future-work extension (Section 4.4.3): combining STREX with an
instruction prefetcher.

The paper conjectures: "STREX can avoid many of the misses that PIF has
to incur... PIF could reduce execution time for the lead transaction,
thus improving performance when used in conjunction with STREX.  An
investigation of a possible combination of the two techniques is left
for future work."  This bench runs that investigation in our framework.

Shape checks:
- STREX+PIF outperforms STREX alone (the lead's misses are covered);
- STREX+PIF cuts L2 demand traffic well below PIF alone (STREX removes
  the misses PIF would have had to prefetch, shrinking PIF's bandwidth
  bill -- the paper's stated synergy);
- STREX+next-line also improves on STREX alone.
"""

from __future__ import annotations

from common import config_for, make_workloads, traces_for, write_report
from repro.analysis.report import format_table
from repro.sim.api import simulate

CORES = 8

COMBOS = (
    ("base", "base", "none"),
    ("pif", "base", "pif"),
    ("strex", "strex", "none"),
    ("strex+nextline", "strex", "nextline"),
    ("strex+pif", "strex", "pif"),
)


def run_future():
    workload = make_workloads(["TPC-C-1"])["TPC-C-1"]
    traces = traces_for(workload, CORES)
    config = config_for(CORES)
    results = {}
    for label, scheduler, prefetcher in COMBOS:
        results[label] = simulate(config, traces, scheduler, "TPC-C-1",
                                  prefetcher=prefetcher)
    return results


def test_future_strex_prefetch(benchmark):
    results = benchmark.pedantic(run_future, rounds=1, iterations=1)
    base = results["base"]
    rows = [
        [label, round(run.i_mpki, 2),
         round(run.relative_throughput(base), 3), run.l2_traffic]
        for label, run in results.items()
    ]
    report = format_table(
        ["scheme", "I-MPKI", "rel. throughput", "L2 demand traffic"],
        rows)
    write_report("future_strex_prefetch.txt", report)
    print("\n" + report)

    assert results["strex+pif"].relative_throughput(base) > \
        results["strex"].relative_throughput(base)
    assert results["strex+nextline"].relative_throughput(base) > \
        results["strex"].relative_throughput(base)
    # The synergy: STREX removes most of the traffic PIF would prefetch.
    assert results["strex+pif"].l2_traffic < \
        results["pif"].l2_traffic * 0.85
