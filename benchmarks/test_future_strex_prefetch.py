"""Future-work extension (Section 4.4.3): combining STREX with an
instruction prefetcher.

The paper conjectures: "STREX can avoid many of the misses that PIF has
to incur... PIF could reduce execution time for the lead transaction,
thus improving performance when used in conjunction with STREX.  An
investigation of a possible combination of the two techniques is left
for future work."  This bench runs that investigation in our framework,
as a scheduler × prefetcher grid through ``run_grid``.

Shape checks:
- STREX+PIF outperforms STREX alone (the lead's misses are covered);
- STREX+PIF cuts L2 demand traffic well below PIF alone (STREX removes
  the misses PIF would have had to prefetch, shrinking PIF's bandwidth
  bill -- the paper's stated synergy);
- STREX+next-line also improves on STREX alone.
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, run_grid, write_report
from repro.analysis.report import format_table

CORES = 8

COMBOS = (
    ("base", "base", "none"),
    ("pif", "base", "pif"),
    ("strex", "strex", "none"),
    ("strex+nextline", "strex", "nextline"),
    ("strex+pif", "strex", "pif"),
)


def run_future():
    runs = run_grid([
        bench_spec("TPC-C-1", CORES, scheduler, prefetcher)
        for _, scheduler, prefetcher in COMBOS
    ], name="future_prefetch")
    return {label: run
            for (label, _, _), run in zip(COMBOS, runs)}


def test_future_strex_prefetch(benchmark):
    results = benchmark.pedantic(run_future, rounds=1, iterations=1)
    base = results["base"]
    rows = [
        [label, round(run.i_mpki, 2),
         round(run.relative_throughput(base), 3), run.l2_traffic]
        for label, run in results.items()
    ]
    report = format_table(
        ["scheme", "I-MPKI", "rel. throughput", "L2 demand traffic"],
        rows)
    write_report("future_strex_prefetch.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    assert results["strex+pif"].relative_throughput(base) > \
        results["strex"].relative_throughput(base)
    assert results["strex+nextline"].relative_throughput(base) > \
        results["strex"].relative_throughput(base)
    # The synergy: STREX removes most of the traffic PIF would prefetch.
    assert results["strex+pif"].l2_traffic < \
        results["pif"].l2_traffic * 0.85
