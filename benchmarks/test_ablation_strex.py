"""Ablations for STREX's design choices (beyond the paper's own
experiments; DESIGN.md decision 6).

Swept knobs, on TPC-C at 8 cores:
- context-switch cost (the save/restore-to-L2 assumption);
- the forward-progress floor (Section 4.4.2's implementation option);
- phaseID tag width (the 8-bit PIDT entry of Table 4);
- team-formation window (the 30-transaction pool of Section 4.3).

Each knob is a declarative ``SweepSpec`` with a ``strex_overrides``
grid — the override values are folded into the materialized config and
therefore into the content-addressed cache key, so every ablation cell
is cached and shared with any other sweep that lands on the same
configuration.

Shape checks:
- STREX keeps beating the baseline even with a 4x context-switch cost;
- disabling the progress floor inflates context switches dramatically;
- narrow phase tags (2-bit) still work (the counter wraps, old tags
  alias rarely);
- a window of 1 degenerates team formation to strays and erases most
  of the benefit.
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, bench_sweep, run_grid, \
    write_report
from repro.analysis.report import format_table

CORES = 8

#: knob -> swept values (defaults: ctx 120, floor auto, bits 8, win 30).
ABLATION_GRIDS = {
    "context_switch_cycles": (0, 480),
    "min_progress_events": (0,),
    "phase_bits": (2,),
    "window": (1, 100),
}


def ablation_specs():
    """(label, RunSpec) cells: baseline, default STREX, one declarative
    sweep per ablation knob."""
    cells = [
        ("base", bench_spec("TPC-C-1", CORES)),
        ("default", bench_spec("TPC-C-1", CORES, "strex")),
    ]
    for knob, values in ABLATION_GRIDS.items():
        sweep = bench_sweep(
            ["TPC-C-1"], cores=(CORES,), schedulers=("strex",),
            strex_overrides={knob: values},
        )
        for spec in sweep.expand():
            (name, value), = spec.strex_overrides
            cells.append((f"{name}={value}", spec))
    return cells


def run_ablation():
    cells = ablation_specs()
    runs = run_grid([spec for _, spec in cells], name="ablation")
    raw = {label: run for (label, _), run in zip(cells, runs)}
    base = raw.pop("base")
    return {
        label: {
            "i_mpki": run.i_mpki,
            "rel_thr": run.relative_throughput(base),
            "ctx": run.context_switches,
        }
        for label, run in raw.items()
    }


def test_ablation_strex(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(r["i_mpki"], 2), round(r["rel_thr"], 3), r["ctx"]]
        for label, r in results.items()
    ]
    report = format_table(
        ["variant", "I-MPKI", "rel. throughput", "ctx switches"], rows)
    write_report("ablation_strex.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    default = results["default"]
    # Robust to expensive context switches.
    assert results["context_switch_cycles=480"]["rel_thr"] > 1.0
    assert results["context_switch_cycles=0"]["rel_thr"] >= \
        default["rel_thr"]
    # The progress floor is what keeps switch counts sane.
    assert results["min_progress_events=0"]["ctx"] > default["ctx"] * 2
    # Narrow tags still synchronize phases.
    assert results["phase_bits=2"]["i_mpki"] < default["i_mpki"] * 1.15
    # No window -> no teams -> benefit largely gone.
    assert results["window=1"]["i_mpki"] > default["i_mpki"] * 1.2
    # A bigger window doesn't hurt.
    assert results["window=100"]["rel_thr"] > default["rel_thr"] * 0.9
