"""Ablations for STREX's design choices (beyond the paper's own
experiments; DESIGN.md decision 6).

Swept knobs, on TPC-C at 8 cores:
- context-switch cost (the save/restore-to-L2 assumption);
- the forward-progress floor (Section 4.4.2's implementation option);
- phaseID tag width (the 8-bit PIDT entry of Table 4);
- team-formation window (the 30-transaction pool of Section 4.3).

Shape checks:
- STREX keeps beating the baseline even with a 4x context-switch cost;
- disabling the progress floor inflates context switches dramatically;
- narrow phase tags (2-bit) still work (the counter wraps, old tags
  alias rarely);
- a window of 1 degenerates team formation to strays and erases most
  of the benefit.
"""

from __future__ import annotations

from common import config_for, make_workloads, traces_for, write_report
from repro.analysis.report import format_table
from repro.sim.api import simulate

CORES = 8


def run_ablation():
    workload = make_workloads(["TPC-C-1"])["TPC-C-1"]
    traces = traces_for(workload, CORES)
    base_config = config_for(CORES)
    base = simulate(base_config, traces, "base", "TPC-C-1")

    variants = {
        "default": {},
        "ctx_cost=0": {"context_switch_cycles": 0},
        "ctx_cost=480": {"context_switch_cycles": 480},
        "no_progress_floor": {"min_progress_events": 0},
        "phase_bits=2": {"phase_bits": 2},
        "window=1": {"window": 1},
        "window=100": {"window": 100},
    }
    results = {}
    for label, overrides in variants.items():
        config = base_config.with_strex(**overrides) if overrides \
            else base_config
        run = simulate(config, traces, "strex", "TPC-C-1")
        results[label] = {
            "i_mpki": run.i_mpki,
            "rel_thr": run.relative_throughput(base),
            "ctx": run.context_switches,
        }
    return results


def test_ablation_strex(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(r["i_mpki"], 2), round(r["rel_thr"], 3), r["ctx"]]
        for label, r in results.items()
    ]
    report = format_table(
        ["variant", "I-MPKI", "rel. throughput", "ctx switches"], rows)
    write_report("ablation_strex.txt", report)
    print("\n" + report)

    default = results["default"]
    # Robust to expensive context switches.
    assert results["ctx_cost=480"]["rel_thr"] > 1.0
    assert results["ctx_cost=0"]["rel_thr"] >= default["rel_thr"]
    # The progress floor is what keeps switch counts sane.
    assert results["no_progress_floor"]["ctx"] > default["ctx"] * 2
    # Narrow tags still synchronize phases.
    assert results["phase_bits=2"]["i_mpki"] < default["i_mpki"] * 1.15
    # No window -> no teams -> benefit largely gone.
    assert results["window=1"]["i_mpki"] > default["i_mpki"] * 1.2
    # A bigger window doesn't hurt.
    assert results["window=100"]["rel_thr"] > default["rel_thr"] * 0.9
