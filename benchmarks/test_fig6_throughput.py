"""Figure 6: relative throughput of Base, Next-line, PIF-No-Overhead,
SLICC, STREX, and the STREX+SLICC hybrid, normalized to each workload's
2-core baseline.

Shape checks (Section 5.3):
- STREX consistently improves throughput over the baseline for OLTP
  workloads at every core count, and beats the next-line prefetcher;
- SLICC degrades/barely improves at low core counts and overtakes STREX
  only once the aggregate L1-I covers the footprint (16 cores for
  TPC-C; around 8 for TPC-E);
- STREX is within striking distance of the idealized PIF;
- the hybrid closely follows the best of STREX and SLICC;
- MapReduce is unaffected by every technique.
"""

from __future__ import annotations

from common import (
    CORE_COUNTS,
    PAPER_SHAPES,
    WORKLOAD_KEYS,
    bench_spec,
    run_grid,
    write_report,
)
from repro.analysis.report import format_table

SCHEMES = (
    ("base", "base", "none"),
    ("nextline", "base", "nextline"),
    ("pif", "base", "pif"),
    ("slicc", "slicc", "none"),
    ("strex", "strex", "none"),
    ("hybrid", "hybrid", "none"),
)


def run_fig6():
    cells = [(name, cores, scheme)
             for name in WORKLOAD_KEYS
             for cores in CORE_COUNTS
             for scheme in SCHEMES]
    runs = run_grid([
        bench_spec(name, cores, scheduler, prefetcher=prefetcher)
        for name, cores, (label, scheduler, prefetcher) in cells],
        name="fig6")
    return {(name, cores, label): run
            for (name, cores, (label, _, _)), run in zip(cells, runs)}


def test_fig6_throughput(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    rows = []
    relative = {}
    for name in ("TPC-C-1", "TPC-C-10", "TPC-E", "MapReduce"):
        for cores in CORE_COUNTS:
            base = results[(name, cores, "base")]
            row = [name, cores]
            for label, _, _ in SCHEMES:
                value = results[(name, cores, label)] \
                    .relative_throughput(base)
                relative[(name, cores, label)] = value
                row.append(round(value, 3))
            rows.append(row)
    headers = ["workload", "cores"] + [s[0] for s in SCHEMES]
    report = format_table(headers, rows)
    write_report("fig6_throughput.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for name in ("TPC-C-1", "TPC-C-10", "TPC-E"):
        for cores in CORE_COUNTS:
            strex = relative[(name, cores, "strex")]
            nextline = relative[(name, cores, "nextline")]
            slicc = relative[(name, cores, "slicc")]
            hybrid = relative[(name, cores, "hybrid")]
            pif = relative[(name, cores, "pif")]
            # STREX beats base and next-line everywhere.
            assert strex > 1.08, (name, cores, strex)
            assert strex > nextline, (name, cores)
            # STREX stays within reach of the idealized PIF (the paper
            # reports 95-109% of PIF's performance).
            assert strex > pif * 0.75, (name, cores, strex, pif)
            # Hybrid tracks the better of STREX and SLICC.
            assert hybrid > max(strex, slicc) * 0.85, (name, cores)
        # SLICC loses badly to STREX at 2 cores and catches up to (or
        # passes) it by 16 -- the crossover shape of Fig. 6.  Strict
        # ordering at 16 cores is within batch noise (the paper reports
        # +8-21%; we land between -3% and +2% depending on the batch),
        # so the check is "parity or better" plus a strong rise.
        assert relative[(name, 2, "slicc")] < \
            relative[(name, 2, "strex")] * 0.85
        assert relative[(name, 2, "slicc")] < 1.1
        assert relative[(name, 16, "slicc")] > \
            relative[(name, 16, "strex")] * 0.95
        assert relative[(name, 16, "slicc")] > \
            relative[(name, 2, "slicc")] * 1.25

    for cores in CORE_COUNTS:
        for label, _, _ in SCHEMES:
            value = relative[("MapReduce", cores, label)]
            assert 0.93 < value < 1.07, ("MapReduce", cores, label, value)
