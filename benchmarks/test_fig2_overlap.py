"""Figure 2: temporal overlap analysis for New Order and Payment.

Sixteen same-type transactions run concurrently on 16 cores with
private L1-Is; every 100 instructions per core, each touched block's
overlap (how many caches contain it) is bucketed into {1, <5, <10,
>=10}.

Shape checks (Section 2.2):
- more than 70% of the blocks touched during an interval appear in at
  least five caches;
- ~40% or more appear in at least ten;
- fewer than ~10% are private to a single transaction.
"""

from __future__ import annotations

from common import SEED, config_for, make_workloads, write_report
from repro.analysis.overlap import BANDS, OverlapAnalysis, summarize
from repro.analysis.report import format_table


def run_fig2():
    workload = make_workloads(["TPC-C-1"])["TPC-C-1"]
    analysis = OverlapAnalysis(config_for(16), interval_instructions=100)
    results = {}
    for txn_type in ("NewOrder", "Payment"):
        traces = workload.generate_uniform(txn_type, 16, seed=SEED)
        intervals = analysis.run(traces)
        early = summarize(intervals[: max(1, len(intervals) // 3)])
        results[txn_type] = (intervals, summarize(intervals), early)
    return results


def test_fig2_overlap(benchmark):
    results = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    rows = []
    series_lines = []
    for txn_type, (intervals, summary, _early) in results.items():
        rows.append([txn_type] + [round(summary[b], 3) for b in BANDS])
        series_lines.append(f"\n{txn_type} time series "
                            f"(K-instructions: band fractions):")
        step = max(1, len(intervals) // 20)
        for interval in intervals[::step]:
            bands = " ".join(
                f"{band}={interval.fraction(band):.2f}" for band in BANDS
            )
            series_lines.append(
                f"  {interval.kilo_instructions:8.1f}  {bands}")
    report = format_table(["type"] + list(BANDS), rows) \
        + "\n" + "\n".join(series_lines)
    write_report("fig2_overlap.txt", report)
    print("\n" + report)

    for txn_type, (_, summary, early) in results.items():
        assert summary["five_or_more"] > 0.70, (txn_type, summary)
        # ">=10 most of the time": clearly true early, >=35% averaged
        # over the whole run (divergence grows toward the end, as the
        # paper's own series show).
        assert early[">=10"] > 0.40, (txn_type, early)
        assert summary[">=10"] > 0.30, (txn_type, summary)
        assert summary["1"] < 0.10, (txn_type, summary)
