"""Figure 2: temporal overlap analysis for New Order and Payment.

Sixteen same-type transactions run concurrently on 16 cores with
private L1-Is; every 100 instructions per core, each touched block's
overlap (how many caches contain it) is bucketed into {1, <5, <10,
>=10}.

The experiment runs as ``RunSpec(mode="overlap")`` cells through
``run_grid``, so the interval series are cached next to the simulation
results (an ``OverlapResult`` per transaction type).

Shape checks (Section 2.2):
- more than 70% of the blocks touched during an interval appear in at
  least five caches;
- ~40% or more appear in at least ten;
- fewer than ~10% are private to a single transaction.
"""

from __future__ import annotations

from common import PAPER_SHAPES, SEED, bench_spec, run_grid, write_report
from repro.analysis.overlap import BANDS
from repro.analysis.report import format_table

TXN_TYPES = ("NewOrder", "Payment")
CONCURRENT = 16


def run_fig2():
    specs = [
        bench_spec("TPC-C-1", CONCURRENT, mode="overlap",
                   txn_type=txn_type, transactions=CONCURRENT,
                   mix_seed=SEED)
        for txn_type in TXN_TYPES
    ]
    return dict(zip(TXN_TYPES, run_grid(specs, name="fig2")))


def test_fig2_overlap(benchmark):
    results = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    rows = []
    series_lines = []
    for txn_type, overlap in results.items():
        summary = overlap.summarize()
        rows.append([txn_type] + [round(summary[b], 3) for b in BANDS])
        series_lines.append(f"\n{txn_type} time series "
                            f"(K-instructions: band fractions):")
        step = max(1, len(overlap.intervals) // 20)
        for interval in overlap.intervals[::step]:
            bands = " ".join(
                f"{band}={interval.fraction(band):.2f}" for band in BANDS
            )
            series_lines.append(
                f"  {interval.kilo_instructions:8.1f}  {bands}")
    report = format_table(["type"] + list(BANDS), rows) \
        + "\n" + "\n".join(series_lines)
    write_report("fig2_overlap.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for txn_type, overlap in results.items():
        summary = overlap.summarize()
        early = overlap.summarize_early()
        assert summary["five_or_more"] > 0.70, (txn_type, summary)
        # ">=10 most of the time": clearly true early, >=35% averaged
        # over the whole run (divergence grows toward the end, as the
        # paper's own series show).
        assert early[">=10"] > 0.40, (txn_type, early)
        assert summary[">=10"] > 0.30, (txn_type, summary)
        assert summary["1"] < 0.10, (txn_type, summary)
