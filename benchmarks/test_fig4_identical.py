"""Figure 4: I-MPKI with the optimal synchronization algorithm for
identical transactions (CTX-Identical) versus the baseline.

Ten randomly chosen instances per transaction type, each replicated ten
times (a hypothetical 100-transaction workload), executed on one core.

Shape check (Section 4.1.1): the synchronized execution reduces I-MPKI
significantly for every TPC-C and TPC-E transaction type.
"""

from __future__ import annotations

import os

from common import config_for, make_workloads, write_report
from repro.analysis.report import format_table
from repro.core.identical import compare_identical

INSTANCES = int(os.environ.get("REPRO_BENCH_FIG4_INSTANCES", "6"))
REPLICAS = int(os.environ.get("REPRO_BENCH_FIG4_REPLICAS", "6"))


def run_fig4():
    config = config_for(1)
    suites = make_workloads(["TPC-C-1", "TPC-E"])
    results = {}
    for label in ("TPC-C-1", "TPC-E"):
        workload = suites[label]
        for txn_type in workload.type_names():
            base, sync = compare_identical(
                workload, txn_type, config,
                instances=INSTANCES, replicas=REPLICAS,
            )
            results[(label, txn_type)] = (base.i_mpki, sync.i_mpki)
    return results


def test_fig4_identical(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    rows = [
        [suite, txn_type, round(base, 2), round(sync, 2),
         f"{100 * (1 - sync / base):.0f}%"]
        for (suite, txn_type), (base, sync) in results.items()
    ]
    report = format_table(
        ["suite", "type", "baseline I-MPKI", "CTX-identical I-MPKI",
         "reduction"], rows)
    write_report("fig4_identical.txt", report)
    print("\n" + report)

    for (suite, txn_type), (base, sync) in results.items():
        assert sync < base * 0.6, (suite, txn_type, base, sync)
