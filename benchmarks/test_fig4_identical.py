"""Figure 4: I-MPKI with the optimal synchronization algorithm for
identical transactions (CTX-Identical) versus the baseline.

Random instances per transaction type, each replicated several times
(the paper's hypothetical 100-transaction workload), executed on one
core.  Each (type, scheduler) cell is a ``RunSpec(mode="identical")``
run through ``run_grid``: the baseline executes the replicas back to
back, the synchronized run time-multiplexes them as a STREX team.

Shape check (Section 4.1.1): the synchronized execution reduces I-MPKI
significantly for every TPC-C and TPC-E transaction type.
"""

from __future__ import annotations

import os

from common import PAPER_SHAPES, SEED, bench_spec, make_workloads, \
    run_grid, write_report
from repro.analysis.report import format_table

INSTANCES = int(os.environ.get("REPRO_BENCH_FIG4_INSTANCES", "6"))
REPLICAS = int(os.environ.get("REPRO_BENCH_FIG4_REPLICAS", "6"))
TEAM_SIZE = 10


def run_fig4():
    suites = make_workloads(["TPC-C-1", "TPC-E"])
    cells = []
    for label in ("TPC-C-1", "TPC-E"):
        for txn_type in suites[label].type_names():
            common = dict(mode="identical", txn_type=txn_type,
                          transactions=INSTANCES, replicas=REPLICAS,
                          mix_seed=SEED)
            cells.append(((label, txn_type),
                          bench_spec(label, 1, **common),
                          bench_spec(label, 1, "strex",
                                     team_size=TEAM_SIZE, **common)))
    flat = [spec for _, base, sync in cells for spec in (base, sync)]
    runs = iter(run_grid(flat, name="fig4"))
    return {
        key: (next(runs).i_mpki, next(runs).i_mpki)
        for key, _, _ in cells
    }


def test_fig4_identical(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    rows = [
        [suite, txn_type, round(base, 2), round(sync, 2),
         f"{100 * (1 - sync / base):.0f}%"]
        for (suite, txn_type), (base, sync) in results.items()
    ]
    report = format_table(
        ["suite", "type", "baseline I-MPKI", "CTX-identical I-MPKI",
         "reduction"], rows)
    write_report("fig4_identical.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for (suite, txn_type), (base, sync) in results.items():
        assert sync < base * 0.6, (suite, txn_type, base, sync)
