"""Figure 7: TPC-C transaction latency distribution as a function of
team size (STREX-2T..20T) and of core count (SLICC-2..16), plus the
baseline.

All cells run through ``run_grid``; the baseline and STREX team-size
runs are the *same* content-addressed cells Fig. 8 sweeps, so whichever
bench runs first pays for them and the other is served from cache.

Shape checks (Section 5.4):
- larger STREX teams shift the distribution toward longer latencies
  (mean latency grows with team size beyond small teams);
- SLICC latencies shrink as cores are added.
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, run_grid, write_report
from repro.analysis.latency import LatencyDistribution, \
    compare_distributions

TEAM_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
SLICC_CORES = (2, 4, 8, 16)
STREX_CORES = 16  # STREX latency is independent of the core count


def run_fig7():
    cells = [("Baseline", bench_spec("TPC-C-10", STREX_CORES))]
    cells += [
        (f"STREX-{team_size}T",
         bench_spec("TPC-C-10", STREX_CORES, "strex",
                    team_size=team_size))
        for team_size in TEAM_SIZES
    ]
    cells += [
        (f"SLICC-{cores}", bench_spec("TPC-C-10", cores, "slicc"))
        for cores in SLICC_CORES
    ]
    runs = run_grid([spec for _, spec in cells], name="fig7")
    return [
        LatencyDistribution(label, run.latencies)
        for (label, _), run in zip(cells, runs)
    ]


def test_fig7_latency(benchmark):
    distributions = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    report = compare_distributions(distributions)
    write_report("fig7_latency.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    by_label = {d.label: d for d in distributions}
    # Larger teams -> longer mean latency (compare small vs large).
    assert by_label["STREX-20T"].mean_mcycles > \
        by_label["STREX-4T"].mean_mcycles
    assert by_label["STREX-16T"].mean_mcycles > \
        by_label["STREX-2T"].mean_mcycles
    # The latency tail also stretches with team size.
    assert by_label["STREX-20T"].p95_mcycles > \
        by_label["STREX-4T"].p95_mcycles
    # SLICC latencies shrink with more cores.
    assert by_label["SLICC-16"].mean_mcycles < \
        by_label["SLICC-2"].mean_mcycles
