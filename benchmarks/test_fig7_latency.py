"""Figure 7: TPC-C transaction latency distribution as a function of
team size (STREX-2T..20T) and of core count (SLICC-2..16), plus the
baseline.

Shape checks (Section 5.4):
- larger STREX teams shift the distribution toward longer latencies
  (mean latency grows with team size beyond small teams);
- SLICC latencies shrink as cores are added.
"""

from __future__ import annotations

from common import config_for, make_workloads, traces_for, write_report
from repro.analysis.latency import LatencyDistribution, compare_distributions
from repro.sim.api import simulate

TEAM_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
SLICC_CORES = (2, 4, 8, 16)
STREX_CORES = 16  # STREX latency is independent of the core count


def run_fig7():
    workload = make_workloads(["TPC-C-10"])["TPC-C-10"]
    traces = traces_for(workload, STREX_CORES)
    distributions = []

    base = simulate(config_for(STREX_CORES), traces, "base", "TPC-C-10")
    distributions.append(LatencyDistribution("Baseline", base.latencies))

    for team_size in TEAM_SIZES:
        run = simulate(config_for(STREX_CORES), traces, "strex",
                       "TPC-C-10", team_size=team_size)
        distributions.append(
            LatencyDistribution(f"STREX-{team_size}T", run.latencies))

    for cores in SLICC_CORES:
        run = simulate(config_for(cores), traces, "slicc", "TPC-C-10")
        distributions.append(
            LatencyDistribution(f"SLICC-{cores}", run.latencies))
    return distributions


def test_fig7_latency(benchmark):
    distributions = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    report = compare_distributions(distributions)
    write_report("fig7_latency.txt", report)
    print("\n" + report)

    by_label = {d.label: d for d in distributions}
    # Larger teams -> longer mean latency (compare small vs large).
    assert by_label["STREX-20T"].mean_mcycles > \
        by_label["STREX-4T"].mean_mcycles
    assert by_label["STREX-16T"].mean_mcycles > \
        by_label["STREX-2T"].mean_mcycles
    # The latency tail also stretches with team size.
    assert by_label["STREX-20T"].p95_mcycles > \
        by_label["STREX-4T"].p95_mcycles
    # SLICC latencies shrink with more cores.
    assert by_label["SLICC-16"].mean_mcycles < \
        by_label["SLICC-2"].mean_mcycles
