"""Figure 8: overall throughput for a range of team-size values
(TPC-C-10 and TPC-E), relative to the baseline.

Shape checks (Section 5.4):
- throughput increases with team size (the largest teams give the
  biggest improvements over the baseline);
- even small teams beat the baseline.
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, run_grid, write_report
from repro.analysis.report import format_table

TEAM_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
CORES = 16
WORKLOADS = ("TPC-C-10", "TPC-E")


def run_fig8():
    cells = [(name, team_size)
             for name in WORKLOADS
             for team_size in ("base",) + TEAM_SIZES]
    runs = run_grid([
        bench_spec(name, CORES) if team_size == "base"
        else bench_spec(name, CORES, "strex", team_size=team_size)
        for name, team_size in cells], name="fig8")
    raw = dict(zip(cells, runs))
    results = {}
    for name in WORKLOADS:
        base = raw[(name, "base")]
        results[(name, "base")] = 1.0
        for team_size in TEAM_SIZES:
            results[(name, team_size)] = \
                raw[(name, team_size)].relative_throughput(base)
    return results


def test_fig8_teamsize(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rows = []
    for name in ("TPC-C-10", "TPC-E"):
        row = [name, results[(name, "base")]]
        for team_size in TEAM_SIZES:
            row.append(round(results[(name, team_size)], 3))
        rows.append(row)
    headers = ["workload", "base"] + [f"{t}T" for t in TEAM_SIZES]
    report = format_table(headers, rows)
    write_report("fig8_teamsize.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for name in ("TPC-C-10", "TPC-E"):
        series = [results[(name, t)] for t in TEAM_SIZES]
        # All team sizes beat the baseline.
        assert min(series) > 1.0, (name, series)
        # The largest teams give the biggest improvement.
        assert results[(name, 20)] == max(series) or \
            results[(name, 16)] == max(series), (name, series)
        # Broad upward trend: 20T clearly above 2T.
        assert results[(name, 20)] > results[(name, 2)] * 1.05
