"""Figure 8: overall throughput for a range of team-size values
(TPC-C-10 and TPC-E), relative to the baseline.

Shape checks (Section 5.4):
- throughput increases with team size (the largest teams give the
  biggest improvements over the baseline);
- even small teams beat the baseline.
"""

from __future__ import annotations

from common import config_for, make_workloads, traces_for, write_report
from repro.analysis.report import format_table
from repro.sim.api import simulate

TEAM_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
CORES = 16


def run_fig8():
    suites = make_workloads(["TPC-C-10", "TPC-E"])
    results = {}
    for name, workload in suites.items():
        traces = traces_for(workload, CORES)
        config = config_for(CORES)
        base = simulate(config, traces, "base", name)
        results[(name, "base")] = 1.0
        for team_size in TEAM_SIZES:
            run = simulate(config, traces, "strex", name,
                           team_size=team_size)
            results[(name, team_size)] = run.relative_throughput(base)
    return results


def test_fig8_teamsize(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rows = []
    for name in ("TPC-C-10", "TPC-E"):
        row = [name, results[(name, "base")]]
        for team_size in TEAM_SIZES:
            row.append(round(results[(name, team_size)], 3))
        rows.append(row)
    headers = ["workload", "base"] + [f"{t}T" for t in TEAM_SIZES]
    report = format_table(headers, rows)
    write_report("fig8_teamsize.txt", report)
    print("\n" + report)

    for name in ("TPC-C-10", "TPC-E"):
        series = [results[(name, t)] for t in TEAM_SIZES]
        # All team sizes beat the baseline.
        assert min(series) > 1.0, (name, series)
        # The largest teams give the biggest improvement.
        assert results[(name, 20)] == max(series) or \
            results[(name, 16)] == max(series), (name, series)
        # Broad upward trend: 20T clearly above 2T.
        assert results[(name, 20)] > results[(name, 2)] * 1.05
