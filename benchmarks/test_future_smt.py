"""Section 4.4.4's SMT observation, reproduced.

The paper cites measurements that 2-way SMT increases L1 instruction
misses (+15% TPC-C / +7% TPC-E) and data misses (+10% / +16%) because
two transactions share each core's L1s.  This bench interleaves two
contexts per core over the same L1s and checks the same direction and
rough magnitude.  Both cells per workload are ordinary ``run_grid``
cells (the ``smt`` scheduler is registered like any other), so they
cache and parallelize with the rest of the suite.

(The paper leaves STREX-under-SMT for future work; the miss inflation
here quantifies the locality loss STREX would have to win back.)
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, run_grid, write_report
from repro.analysis.report import format_table

CORES = 4
WORKLOADS = ("TPC-C-1", "TPC-E")


def run_smt():
    cells = [(label, scheduler)
             for label in WORKLOADS
             for scheduler in ("base", "smt")]
    runs = run_grid([bench_spec(label, CORES, scheduler)
                     for label, scheduler in cells],
                    name="future_smt")
    raw = dict(zip(cells, runs))
    return {label: (raw[(label, "base")], raw[(label, "smt")])
            for label in WORKLOADS}


def test_future_smt(benchmark):
    results = benchmark.pedantic(run_smt, rounds=1, iterations=1)
    rows = []
    for name, (base, smt) in results.items():
        i_delta = 100 * (smt.i_mpki / base.i_mpki - 1)
        d_delta = 100 * (smt.d_mpki / base.d_mpki - 1)
        rows.append([name, round(base.i_mpki, 2), round(smt.i_mpki, 2),
                     f"{i_delta:+.1f}%", round(base.d_mpki, 2),
                     round(smt.d_mpki, 2), f"{d_delta:+.1f}%"])
    report = format_table(
        ["workload", "base I", "SMT-2 I", "delta", "base D", "SMT-2 D",
         "delta"], rows)
    write_report("future_smt.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for name, (base, smt) in results.items():
        # Paper: +10..16% data misses; reproduced in direction.
        assert smt.d_mpki > base.d_mpki, name
        # Paper: +7..15% instruction misses.  Our block-granularity
        # model cannot show the fetch-slot-level thrash behind that
        # number -- interleaved transactions share the storage-engine
        # code constructively instead -- so we only check that the
        # instruction side stays in a sane band and record the measured
        # delta in the report (see EXPERIMENTS.md).
        assert 0.75 * base.i_mpki < smt.i_mpki < 1.6 * base.i_mpki, name
