"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper at the
``default_scale`` system (8 KiB L1s; footprints in L1-size units match
Table 3, see DESIGN.md).  Each writes a text report to
``benchmarks/out/`` and asserts the paper's qualitative shape.

Set ``REPRO_BENCH_TXNS_PER_CORE`` to trade accuracy for runtime
(default 10 transactions per core).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.config import SystemConfig, default_scale
from repro.sim.results import RunResult
from repro.trace.trace import TransactionTrace
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

OUT_DIR = Path(__file__).parent / "out"

#: Core counts evaluated throughout the paper's Section 5.
CORE_COUNTS = (2, 4, 8, 16)

TXNS_PER_CORE = int(os.environ.get("REPRO_BENCH_TXNS_PER_CORE", "10"))

#: Master seed for all benchmark workloads.
SEED = 20130623  # ISCA'13


def config_for(cores: int) -> SystemConfig:
    """The benchmark system at a given core count."""
    return default_scale(num_cores=cores)


def txn_count(cores: int) -> int:
    """Transactions per run: sized for the largest core count so the
    *same* batch serves every core count (per-count resampling would
    add workload noise to cross-core-count comparisons)."""
    del cores
    return max(40, TXNS_PER_CORE * max(CORE_COUNTS))


def make_workloads(which: List[str] | None = None) -> Dict[str, object]:
    """Build the paper's Table 1 workload suites."""
    blocks = default_scale().l1i_blocks
    suites = {}
    wanted = which or ["TPC-C-1", "TPC-C-10", "TPC-E", "MapReduce"]
    if "TPC-C-1" in wanted:
        suites["TPC-C-1"] = TpccWorkload(blocks, warehouses=1, seed=SEED)
    if "TPC-C-10" in wanted:
        suites["TPC-C-10"] = TpccWorkload(blocks, warehouses=10,
                                          seed=SEED)
    if "TPC-E" in wanted:
        suites["TPC-E"] = TpceWorkload(blocks, seed=SEED)
    if "MapReduce" in wanted:
        suites["MapReduce"] = MapReduceWorkload(blocks, seed=SEED)
    return suites


def traces_for(workload, cores: int = 16) -> List[TransactionTrace]:
    """The benchmark batch (identical for every core count)."""
    return workload.generate_mix(txn_count(cores), seed=SEED + 16)


def write_report(name: str, text: str) -> Path:
    """Persist a figure/table report under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + "\n")
    return path


def reduction(base: RunResult, other: RunResult,
              metric: str = "i_mpki") -> float:
    """Percent reduction of a metric relative to a baseline run."""
    before = getattr(base, metric)
    after = getattr(other, metric)
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before
