"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper at the
``default_scale`` system (8 KiB L1s; footprints in L1-size units match
Table 3, see DESIGN.md).  Each writes a text report to
``benchmarks/out/`` and asserts the paper's qualitative shape.

All simulation grids route through :func:`run_grid` — the ``repro.exp``
runner with its content-addressed cache — so a warm rerun of the whole
suite is served almost entirely from ``benchmarks/out/.cache`` (see
``python -m repro manifest`` for the audit trail).

Environment knobs:

* ``REPRO_BENCH_TXNS_PER_CORE`` — trade accuracy for runtime
  (default 10 transactions per core).
* ``REPRO_BENCH_JOBS`` — worker processes for grids (0 = in-process).
* ``REPRO_BENCH_CACHE=0`` — force every benchmark to re-simulate.
* ``REPRO_BENCH_SCALE`` — system preset for every bench (default
  ``default``).  ``tiny`` is the CI smoke setting: it exercises the
  full orchestration/caching path in seconds, but the paper's shape
  assertions are calibrated at ``default`` scale, so benches gate them
  on :data:`PAPER_SHAPES`.
* ``REPRO_BENCH_SHARD=i/N`` — compute only hash-range shard ``i`` of
  every grid (see :class:`repro.exp.ShardSpec`).  CI matrix jobs use
  this to split paper-scale grids: each job pays for its slice of the
  cells, and a bench whose grid was only partially computed skips its
  result-consuming assertions instead of failing on the holes.  Merge
  the per-job caches with ``python -m repro shard --merge`` (or share
  the cache directory) to get full results.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import SCALES, SystemConfig
from repro.exp import (
    Manifest,
    ResultCache,
    Runner,
    RunSpec,
    ShardSpec,
    SweepSpec,
)
from repro.trace.trace import TransactionTrace
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

OUT_DIR = Path(__file__).parent / "out"

#: Content-addressed result cache shared by every benchmark (keys fold
#: in a fingerprint of the repro source, so simulator edits invalidate
#: stale entries automatically).
CACHE_DIR = OUT_DIR / ".cache"

#: Core counts evaluated throughout the paper's Section 5.
CORE_COUNTS = (2, 4, 8, 16)

TXNS_PER_CORE = int(os.environ.get("REPRO_BENCH_TXNS_PER_CORE", "10"))

#: Worker processes for grid-style benchmarks (0 = in-process).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))

#: Set REPRO_BENCH_CACHE=0 to force every benchmark to re-simulate.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"

#: System preset every bench runs at (see module docstring).
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")
if BENCH_SCALE not in SCALES:
    raise ValueError(
        f"REPRO_BENCH_SCALE={BENCH_SCALE!r} is not a preset; "
        f"choose from {sorted(SCALES)}"
    )

#: The paper's quantitative shape checks only hold at the calibrated
#: ``default`` scale; at other scales benches still run (and cache)
#: every grid but skip those assertions.
PAPER_SHAPES = BENCH_SCALE == "default"

#: Optional "i/N" hash-range shard of every benchmark grid (parsed
#: eagerly so a typo fails at import, like REPRO_BENCH_SCALE).
BENCH_SHARD = os.environ.get("REPRO_BENCH_SHARD")
_SHARD = ShardSpec.parse(BENCH_SHARD) if BENCH_SHARD else None

#: Master seed for all benchmark workloads.
SEED = 20130623  # ISCA'13

#: Benchmark display label -> repro.workloads registry name.
WORKLOAD_KEYS = {
    "TPC-C-1": "tpcc",
    "TPC-C-10": "tpcc10",
    "TPC-E": "tpce",
    "MapReduce": "mapreduce",
}


def config_for(cores: int) -> SystemConfig:
    """The benchmark system at a given core count."""
    return SCALES[BENCH_SCALE](num_cores=cores)


def txn_count(cores: int) -> int:
    """Transactions per run: sized for the largest core count so the
    *same* batch serves every core count (per-count resampling would
    add workload noise to cross-core-count comparisons)."""
    del cores
    return max(40, TXNS_PER_CORE * max(CORE_COUNTS))


def make_workloads(which: List[str] | None = None) -> Dict[str, object]:
    """Build the paper's Table 1 workload suites."""
    blocks = config_for(4).l1i_blocks
    suites = {}
    wanted = which or ["TPC-C-1", "TPC-C-10", "TPC-E", "MapReduce"]
    if "TPC-C-1" in wanted:
        suites["TPC-C-1"] = TpccWorkload(blocks, warehouses=1, seed=SEED)
    if "TPC-C-10" in wanted:
        suites["TPC-C-10"] = TpccWorkload(blocks, warehouses=10,
                                          seed=SEED)
    if "TPC-E" in wanted:
        suites["TPC-E"] = TpceWorkload(blocks, seed=SEED)
    if "MapReduce" in wanted:
        suites["MapReduce"] = MapReduceWorkload(blocks, seed=SEED)
    return suites


def traces_for(workload, cores: int = 16) -> List[TransactionTrace]:
    """The benchmark batch (identical for every core count)."""
    return workload.generate_mix(txn_count(cores), seed=SEED + 16)


def write_report(name: str, text: str) -> Path:
    """Persist a figure/table report under benchmarks/out/.

    The write is atomic (temp file in ``out/`` + ``os.replace``) so a
    killed or concurrently-running benchmark can never leave a
    truncated report behind.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    fd, tmp = tempfile.mkstemp(dir=OUT_DIR, prefix=f".{name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def bench_spec(label: str, cores: int, scheduler: str = "base",
               prefetcher: str = "none",
               team_size: Optional[int] = None,
               replacement: Optional[str] = None,
               **extra) -> RunSpec:
    """A :class:`RunSpec` matching the classic benchmark setup.

    Reproduces exactly what the pre-``repro.exp`` benchmarks did by
    hand: the :data:`BENCH_SCALE` system, workload seeded with
    :data:`SEED`, and a batch of ``txn_count(cores)`` transactions
    drawn with mix seed ``SEED + 16`` (identical for every core count).
    ``extra`` passes through to :class:`RunSpec` (modes, overrides,
    ``txn_type``...).
    """
    return RunSpec(
        workload=WORKLOAD_KEYS[label],
        scheduler=scheduler,
        prefetcher=prefetcher,
        cores=cores,
        transactions=extra.pop("transactions", txn_count(cores)),
        seed=SEED,
        mix_seed=extra.pop("mix_seed", SEED + 16),
        team_size=team_size,
        scale=BENCH_SCALE,
        replacement=replacement,
        **extra,
    )


def bench_sweep(labels: Sequence[str], **kwargs) -> SweepSpec:
    """A :class:`SweepSpec` over benchmark workloads with the same
    conventions as :func:`bench_spec` (seeds, scale, batch size).

    ``cores`` (tuple) and any SweepSpec axis/override grid pass
    through; ``transactions`` defaults to the shared benchmark batch
    size so sweep cells share cache entries with :func:`bench_spec`
    cells.
    """
    cores = kwargs.pop("cores", (4,))
    batch = max(txn_count(c) for c in cores)
    return SweepSpec(
        workloads=tuple(WORKLOAD_KEYS[label] for label in labels),
        cores=tuple(cores),
        seeds=(SEED,),
        scales=(BENCH_SCALE,),
        transactions=kwargs.pop("transactions", batch),
        mix_seed=kwargs.pop("mix_seed", SEED + 16),
        **kwargs,
    )


def run_grid(specs: Sequence[RunSpec], jobs: Optional[int] = None,
             use_cache: Optional[bool] = None,
             name: Optional[str] = None) -> List:
    """Run benchmark specs through the ``repro.exp`` runner.

    Results align positionally with ``specs``.  Parallelism defaults
    to ``REPRO_BENCH_JOBS`` (0 = in-process) and caching to
    ``REPRO_BENCH_CACHE`` (on unless set to ``0``); the shared cache
    lives in ``benchmarks/out/.cache`` with its run manifest.

    ``name`` labels the grid for auditing: the sweep's manifest rows
    are *also* recorded to ``<cache>/audit/<name>.jsonl``, a
    per-bench manifest suitable for ``repro diff`` (the shared
    manifest interleaves every bench; the audit manifest isolates one
    figure's cells, so two checkouts' figures diff directly)::

        python -m repro diff old/.cache/audit/fig5.jsonl \\
            benchmarks/out/.cache/audit/fig5.jsonl

    Under ``REPRO_BENCH_SHARD=i/N`` only the shard's cells are
    computed (into the shared cache — per-job on CI, so the cache
    artifact is this job's slice).  If that leaves holes in the grid,
    the calling bench is *skipped* after the cells are paid for: the
    split jobs populate the cache, and any executor that sees the
    merged cache (or owns every cell) runs the assertions.
    """
    jobs = BENCH_JOBS if jobs is None else jobs
    use_cache = BENCH_CACHE if use_cache is None else use_cache
    cache = ResultCache(CACHE_DIR) if use_cache else None
    runner = Runner(jobs=jobs, cache=cache, shard=_SHARD)
    results = runner.run(specs)
    if name is not None and cache is not None:
        audit = Manifest(CACHE_DIR / "audit" / f"{name}.jsonl")
        for entry in runner.entries:
            audit.record(entry)
    if _SHARD is not None and runner.skipped:
        import pytest

        pytest.skip(
            f"REPRO_BENCH_SHARD={BENCH_SHARD}: computed "
            f"{len(specs) - runner.skipped}/{len(specs)} cell(s) of "
            f"this grid into {CACHE_DIR}; merge shard caches for the "
            f"full grid")
    return results


def reduction(base, other, metric: str = "i_mpki") -> float:
    """Percent reduction of a metric relative to a baseline run."""
    before = getattr(base, metric)
    after = getattr(other, metric)
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before
