"""Scale-invariance check: the headline STREX result at the paper's
full Table 2 system (32 KiB L1s, 1 MiB/core L2).

All other benches run the proportionally scaled 8 KiB-L1 preset for
speed; this one verifies that the scaling substitution is sound by
reproducing the base-vs-STREX comparison at the paper's actual cache
sizes (footprints are defined in L1-size units, so Table 3 holds at
either scale).
"""

from __future__ import annotations

from common import SEED, write_report
from repro.analysis.report import format_table
from repro.config import paper_scale
from repro.core.fptable import profile_fptable
from repro.sim.api import simulate
from repro.workloads.tpcc import TpccWorkload

CORES = 4
TRANSACTIONS = 40


def run_paper_scale():
    config = paper_scale(num_cores=CORES)
    workload = TpccWorkload(config.l1i_blocks, warehouses=1, seed=SEED)
    traces = workload.generate_mix(TRANSACTIONS, seed=SEED)
    base = simulate(config, traces, "base", workload.name)
    strex = simulate(config, traces, "strex", workload.name)
    table = profile_fptable(traces, config)
    return base, strex, table


def test_paper_scale(benchmark):
    base, strex, table = benchmark.pedantic(run_paper_scale, rounds=1,
                                            iterations=1)
    rows = [
        ["I-MPKI", round(base.i_mpki, 2), round(strex.i_mpki, 2)],
        ["D-MPKI", round(base.d_mpki, 2), round(strex.d_mpki, 2)],
        ["rel. throughput", 1.0,
         round(strex.relative_throughput(base), 3)],
    ]
    report = format_table(["metric", "base (32 KiB L1)", "STREX"], rows)
    report += "\nfootprints: " + str(table.as_dict())
    write_report("paper_scale.txt", report)
    print("\n" + report)

    # The same shapes as at the scaled preset.
    assert strex.i_mpki < base.i_mpki * 0.75
    assert strex.relative_throughput(base) > 1.1
    # Footprints in L1 units are scale-invariant (Table 3 values).
    assert table.units("NewOrder") == 14
    assert table.units("Payment") == 14
