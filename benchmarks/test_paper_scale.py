"""Scale-invariance check: the headline STREX result at the paper's
full Table 2 system (32 KiB L1s, 1 MiB/core L2).

All other benches run the proportionally scaled 8 KiB-L1 preset for
speed; this one verifies that the scaling substitution is sound by
reproducing the base-vs-STREX comparison at the paper's actual cache
sizes (footprints are defined in L1-size units, so Table 3 holds at
either scale).

The grid runs through ``run_grid`` at ``scale="paper"`` regardless of
``REPRO_BENCH_SCALE``, so the expensive full-fidelity cells are paid
for once and reruns (locally and in CI) are cache hits; the footprint
profile rides along as a cached ``mode="fptable"`` cell.
"""

from __future__ import annotations

from common import SEED, run_grid, write_report
from repro.analysis.report import format_table
from repro.exp import RunSpec, SweepSpec

CORES = 4
TRANSACTIONS = 40
FP_SAMPLES = 3


def run_paper_scale():
    sweep = SweepSpec(
        workloads=("tpcc",),
        schedulers=("base", "strex"),
        cores=(CORES,),
        seeds=(SEED,),
        scales=("paper",),
        transactions=TRANSACTIONS,
        mix_seed=SEED,
    )
    profile = RunSpec(workload="tpcc", mode="fptable", cores=CORES,
                      transactions=FP_SAMPLES, seed=SEED, mix_seed=SEED,
                      scale="paper")
    base, strex, table = run_grid(sweep.expand() + [profile])
    return base, strex, table


def test_paper_scale(benchmark):
    base, strex, table = benchmark.pedantic(run_paper_scale, rounds=1,
                                            iterations=1)
    rows = [
        ["I-MPKI", round(base.i_mpki, 2), round(strex.i_mpki, 2)],
        ["D-MPKI", round(base.d_mpki, 2), round(strex.d_mpki, 2)],
        ["rel. throughput", 1.0,
         round(strex.relative_throughput(base), 3)],
    ]
    report = format_table(["metric", "base (32 KiB L1)", "STREX"], rows)
    report += "\nfootprints: " + str(table.as_dict())
    write_report("paper_scale.txt", report)
    print("\n" + report)

    # The same shapes as at the scaled preset.  (Always asserted: this
    # bench pins its own scale, so REPRO_BENCH_SCALE does not apply.)
    assert strex.i_mpki < base.i_mpki * 0.75
    assert strex.relative_throughput(base) > 1.1
    # Footprints in L1 units are scale-invariant (Table 3 values).
    assert table.units("NewOrder") == 14
    assert table.units("Payment") == 14
