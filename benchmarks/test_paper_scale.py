"""Scale-invariance check: STREX at the paper's full Table 2 system
(32 KiB L1s, 1 MiB/core L2).

All other benches run the proportionally scaled 8 KiB-L1 preset for
speed; this one verifies that the scaling substitution is sound by
reproducing the scheduler comparison at the paper's actual cache
sizes (footprints are defined in L1-size units, so Table 3 holds at
either scale).

Two widths, both pinned to ``scale="paper"`` regardless of
``REPRO_BENCH_SCALE``:

* default — the headline base-vs-STREX pair at 4 cores (cheap enough
  for a local run);
* ``REPRO_BENCH_SCALE=paper`` — the fuller Table 2 grid, every
  scheduler × 2/4/8 cores.  At ~4-6 s per cell this is the grid
  cross-process sharding exists for: CI splits it across matrix jobs
  with ``REPRO_BENCH_SHARD=i/N`` (each job pays for its hash-range
  slice of the cells and skips the assertions until the grid is
  whole), and a warm shared cache makes every later run free.

The grid runs through ``run_grid`` so the full-fidelity cells are paid
for once; the footprint profile rides along as a cached
``mode="fptable"`` cell.
"""

from __future__ import annotations

from common import BENCH_SCALE, SEED, run_grid, write_report
from repro.analysis.report import format_table
from repro.exp import RunSpec, SweepSpec

#: The full grid is opt-in: REPRO_BENCH_SCALE=paper widens from the
#: headline pair to schedulers × core counts (the CI paper-grid matrix
#: job sets it; the smoke job stays tiny).
FULL_GRID = BENCH_SCALE == "paper"

SCHEDULERS = ("base", "strex", "slicc", "hybrid") if FULL_GRID \
    else ("base", "strex")
CORES = (2, 4, 8) if FULL_GRID else (4,)
TRANSACTIONS = 40
FP_SAMPLES = 3


def run_paper_scale():
    sweep = SweepSpec(
        workloads=("tpcc",),
        schedulers=SCHEDULERS,
        cores=CORES,
        seeds=(SEED,),
        scales=("paper",),
        transactions=TRANSACTIONS,
        mix_seed=SEED,
    )
    profile = RunSpec(workload="tpcc", mode="fptable", cores=4,
                      transactions=FP_SAMPLES, seed=SEED, mix_seed=SEED,
                      scale="paper")
    specs = sweep.expand()
    runs = run_grid(specs + [profile], name="paper_scale")
    grid = {(spec.scheduler, spec.cores): run
            for spec, run in zip(specs, runs[:-1])}
    return grid, runs[-1]


def test_paper_scale(benchmark):
    grid, table = benchmark.pedantic(run_paper_scale, rounds=1,
                                     iterations=1)
    rows = []
    for cores in CORES:
        base = grid[("base", cores)]
        row = [cores, round(base.i_mpki, 2)]
        for scheduler in SCHEDULERS[1:]:
            run = grid[(scheduler, cores)]
            row += [round(run.i_mpki, 2),
                    round(run.relative_throughput(base), 3)]
        rows.append(row)
    headers = ["cores", "base I-MPKI"]
    for scheduler in SCHEDULERS[1:]:
        headers += [f"{scheduler} I-MPKI", f"{scheduler} rel-thr"]
    report = format_table(headers, rows)
    report += "\nfootprints: " + str(table.as_dict())
    write_report("paper_scale.txt", report)
    print("\n" + report)

    # The same shapes as at the scaled preset.  (Always asserted: this
    # bench pins its own scale, so REPRO_BENCH_SCALE does not apply to
    # the cells — it only selects the grid width.)
    for cores in CORES:
        base = grid[("base", cores)]
        strex = grid[("strex", cores)]
        assert strex.i_mpki < base.i_mpki * 0.75, cores
        assert strex.relative_throughput(base) > 1.1, cores
    if FULL_GRID:
        # Fig. 6's shapes hold at full fidelity too: SLICC loses to
        # STREX at 2 cores and climbs as the aggregate L1-I grows;
        # the hybrid tracks the better of the two.
        for cores in CORES:
            base = grid[("base", cores)]
            strex = grid[("strex", cores)].relative_throughput(base)
            slicc = grid[("slicc", cores)].relative_throughput(base)
            hybrid = grid[("hybrid", cores)].relative_throughput(base)
            assert grid[("slicc", cores)].i_mpki < base.i_mpki, cores
            assert hybrid > max(strex, slicc) * 0.85, cores
        base2 = grid[("base", 2)]
        base8 = grid[("base", 8)]
        assert grid[("slicc", 2)].relative_throughput(base2) < \
            grid[("strex", 2)].relative_throughput(base2) * 0.85
        assert grid[("slicc", 8)].relative_throughput(base8) > \
            grid[("slicc", 2)].relative_throughput(base2) * 1.25
    # Footprints in L1 units are scale-invariant (Table 3 values).
    assert table.units("NewOrder") == 14
    assert table.units("Payment") == 14
