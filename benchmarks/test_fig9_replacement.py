"""Figure 9: state-of-the-art replacement policies versus STREX, on
eight cores (TPC-C and TPC-E).

Policies: LRU, LIP, BIP, SRRIP, BRRIP standalone, and STREX combined
with LRU, BIP, and BRRIP.

Shape checks (Section 5.7):
- STREX+LRU reduces I-MPKI well below the best standalone policy;
- combining STREX with the anti-thrash policies (BIP/BRRIP) does not
  improve on STREX+LRU (they fight STREX's phase structure).
"""

from __future__ import annotations

from common import PAPER_SHAPES, bench_spec, run_grid, write_report
from repro.analysis.report import format_table

STANDALONE = ("lru", "lip", "bip", "srrip", "brrip")
WITH_STREX = ("lru", "bip", "brrip")
CORES = 8
WORKLOADS = ("TPC-C-10", "TPC-E")


def run_fig9():
    cells = ([(name, "base", policy)
              for name in WORKLOADS for policy in STANDALONE]
             + [(name, "strex", policy)
                for name in WORKLOADS for policy in WITH_STREX])
    runs = run_grid([
        bench_spec(name, CORES, scheduler, replacement=policy)
        for name, scheduler, policy in cells], name="fig9")
    return {cell: run.i_mpki for cell, run in zip(cells, runs)}


def test_fig9_replacement(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = []
    for (name, scheduler, policy), i_mpki in sorted(results.items()):
        rows.append([name, scheduler, policy.upper(), round(i_mpki, 2)])
    report = format_table(["workload", "scheduler", "policy", "I-MPKI"],
                          rows)
    write_report("fig9_replacement.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for name in ("TPC-C-10", "TPC-E"):
        best_standalone = min(results[(name, "base", p)]
                              for p in STANDALONE)
        strex_lru = results[(name, "strex", "lru")]
        # STREX+LRU beats every standalone replacement policy by a wide
        # margin (paper: >35% for TPC-C, >45% for TPC-E).
        assert strex_lru < best_standalone * 0.80, (
            name, strex_lru, best_standalone)
        # Anti-thrash insertion policies do not help STREX.
        for policy in ("bip", "brrip"):
            assert results[(name, "strex", policy)] > strex_lru * 0.95, (
                name, policy)
