"""Table 3: FPTable -- instruction footprint per transaction type, in
L1-I size units.

The footprints are profiled with the phaseID-table mechanism of Section
5.5 and must match the paper's values exactly (the workloads are
calibrated to them):

    TPC-C: Delivery 12, New Order 14, Order 11, Payment 14, Stock 11
    TPC-E: Broker 7, Customer 9, Market 9, Security 5,
           Tr_Stat 9, Tr_Upd 8, Tr_Look 8
"""

from __future__ import annotations

from common import SEED, config_for, make_workloads, write_report
from repro.analysis.report import format_table
from repro.core.fptable import PAPER_FPTABLE, profile_fptable


def run_table3():
    config = config_for(4)
    suites = make_workloads(["TPC-C-1", "TPC-E"])
    tables = {}
    for label, paper_key in (("TPC-C-1", "TPC-C"), ("TPC-E", "TPC-E")):
        workload = suites[label]
        traces = []
        for name in workload.type_names():
            traces += workload.generate_uniform(name, 5, seed=SEED)
        tables[paper_key] = profile_fptable(traces, config,
                                            samples_per_type=5)
    return tables


def test_table3_fptable(benchmark):
    tables = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = []
    for suite, table in tables.items():
        for name in table.known_types():
            rows.append([suite, name, table.units(name),
                         PAPER_FPTABLE[suite][name]])
    report = format_table(
        ["suite", "transaction", "measured units", "paper units"], rows)
    write_report("table3_fptable.txt", report)
    print("\n" + report)

    for suite, table in tables.items():
        assert table.as_dict() == PAPER_FPTABLE[suite]
    # The hybrid switch points implied by Table 3 (Section 5.5.1).
    assert tables["TPC-C"].median_units() == 12
    assert tables["TPC-E"].median_units() == 8
