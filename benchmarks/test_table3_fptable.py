"""Table 3: FPTable -- instruction footprint per transaction type, in
L1-I size units.

The footprints are profiled with the phaseID-table mechanism of Section
5.5 and must match the paper's values exactly (the workloads are
calibrated to them):

    TPC-C: Delivery 12, New Order 14, Order 11, Payment 14, Stock 11
    TPC-E: Broker 7, Customer 9, Market 9, Security 5,
           Tr_Stat 9, Tr_Upd 8, Tr_Look 8

Each suite's profile is one cached ``RunSpec(mode="fptable")`` cell
(a ``FootprintResult``) run through ``run_grid``.
"""

from __future__ import annotations

from common import PAPER_SHAPES, SEED, bench_spec, run_grid, write_report
from repro.analysis.report import format_table
from repro.core.fptable import PAPER_FPTABLE

SAMPLES_PER_TYPE = 5

SUITES = (("TPC-C-1", "TPC-C"), ("TPC-E", "TPC-E"))


def run_table3():
    specs = [
        bench_spec(label, 4, mode="fptable",
                   transactions=SAMPLES_PER_TYPE, mix_seed=SEED)
        for label, _ in SUITES
    ]
    return {paper_key: table
            for (_, paper_key), table in zip(SUITES, run_grid(specs, name="table3"))}


def test_table3_fptable(benchmark):
    tables = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = []
    for suite, table in tables.items():
        for name in table.known_types():
            rows.append([suite, name, table.units(name),
                         PAPER_FPTABLE[suite][name]])
    report = format_table(
        ["suite", "transaction", "measured units", "paper units"], rows)
    write_report("table3_fptable.txt", report)
    print("\n" + report)

    if not PAPER_SHAPES:
        return
    for suite, table in tables.items():
        assert table.as_dict() == PAPER_FPTABLE[suite]
    # The hybrid switch points implied by Table 3 (Section 5.5.1).
    assert tables["TPC-C"].median_units() == 12
    assert tables["TPC-E"].median_units() == 8
