"""2D torus interconnect (Table 2: 1-cycle hop latency).

The simulated CMP places one core and one NUCA L2 slice at each node of a
near-square 2D torus.  The only quantity the timing model needs is the
hop distance between a requesting core and the slice holding a block,
which on a torus is the wrap-around Manhattan distance.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.config import NocConfig


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """Near-square (rows, cols) factorization of ``num_nodes``.

    Prefers the factor pair closest to square, e.g. 16 -> (4, 4),
    8 -> (2, 4), 2 -> (1, 2).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    best = (1, num_nodes)
    for rows in range(1, int(math.isqrt(num_nodes)) + 1):
        if num_nodes % rows == 0:
            best = (rows, num_nodes // rows)
    return best


class TorusNetwork:
    """Hop-latency model of a 2D torus with ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, config: NocConfig):
        self.num_nodes = num_nodes
        self.config = config
        self.rows, self.cols = grid_shape(num_nodes)
        self.messages = 0
        self.total_hops = 0
        # The topology is static, so hop distances and latencies are
        # precomputed once for the engine's specialized loops, which
        # index the tables directly.  latency() itself keeps the
        # arithmetic form: it serves the reference path, whose
        # performance is the benchmark baseline.
        self._hops = [
            [self.hop_distance(src, dst) for dst in range(num_nodes)]
            for src in range(num_nodes)
        ]
        self._latency = [
            [hops * config.hop_latency + config.router_latency
             for hops in row]
            for row in self._hops
        ]

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(row, col) of a node."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return divmod(node, self.cols)

    def hop_distance(self, src: int, dst: int) -> int:
        """Wrap-around Manhattan distance between two nodes."""
        r1, c1 = self.coordinates(src)
        r2, c2 = self.coordinates(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        dr = min(dr, self.rows - dr)
        dc = min(dc, self.cols - dc)
        return dr + dc

    def latency(self, src: int, dst: int) -> int:
        """One-way message latency in cycles; records traffic stats."""
        hops = self.hop_distance(src, dst)
        self.messages += 1
        self.total_hops += hops
        return hops * self.config.hop_latency \
            + self.config.router_latency

    @property
    def mean_hops(self) -> float:
        """Average hops per message so far."""
        if not self.messages:
            return 0.0
        return self.total_hops / self.messages
