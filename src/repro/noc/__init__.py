"""On-chip interconnect models."""

from repro.noc.torus import TorusNetwork, grid_shape

__all__ = ["TorusNetwork", "grid_shape"]
