"""Kernel mode flags: fast/reference selection and invariant checking.

The simulator ships two implementations of its hot path (flat-array
caches + age-counter replacement + specialized event loops, versus the
original per-set structures + recency stacks + general loop).  Both
produce bit-identical :class:`~repro.sim.results.RunResult` metrics;
the reference path exists so differential tests can prove it.

Selection is via the environment::

    REPRO_SIM_REFERENCE=1 python -m repro ...

Independently, ``REPRO_SIM_CHECK=1`` arms the invariant oracles of
:mod:`repro.verify.oracles`: every engine then audits its own
accounting (miss/access conservation, cycle monotonicity, phase-tag
ranges, totals reconciliation) and raises
:class:`~repro.verify.oracles.InvariantViolation` on the first breach.

Both flags are read at *construction* time of each cache / engine, so
a simulation never mixes paths mid-run and never arms checking
mid-run.
"""

from __future__ import annotations

import os

#: Environment variable selecting the reference (pre-optimization)
#: simulation path.  Any value other than empty/"0" enables it.
ENV_VAR = "REPRO_SIM_REFERENCE"

#: Environment variable arming the engine's invariant oracles.
#: Any value other than empty/"0" enables them.
CHECK_ENV = "REPRO_SIM_CHECK"

#: Environment variable disabling the batch replay layer (hit-run
#: fast-forwarding and warm-slice memoization, :mod:`repro.sim.batch`).
#: Any value other than empty/"0" forces the scalar loops; results are
#: byte-identical either way -- this is an escape hatch and an A/B
#: switch for the differential tests, not a semantic knob.
NOBATCH_ENV = "REPRO_SIM_NOBATCH"


def reference_mode() -> bool:
    """True when the reference simulation path is requested."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def check_mode() -> bool:
    """True when the engine's invariant oracles are armed."""
    return os.environ.get(CHECK_ENV, "") not in ("", "0")


def nobatch_mode() -> bool:
    """True when batch replay (FF + memoization) is disabled."""
    return os.environ.get(NOBATCH_ENV, "") not in ("", "0")
