"""Fast-path / reference-path selection for the simulation kernel.

The simulator ships two implementations of its hot path (flat-array
caches + age-counter replacement + specialized event loops, versus the
original per-set structures + recency stacks + general loop).  Both
produce bit-identical :class:`~repro.sim.results.RunResult` metrics;
the reference path exists so differential tests can prove it.

Selection is via the environment::

    REPRO_SIM_REFERENCE=1 python -m repro ...

The flag is read at *construction* time of each cache / engine, so a
simulation never mixes paths mid-run.
"""

from __future__ import annotations

import os

#: Environment variable selecting the reference (pre-optimization)
#: simulation path.  Any value other than empty/"0" enables it.
ENV_VAR = "REPRO_SIM_REFERENCE"


def reference_mode() -> bool:
    """True when the reference simulation path is requested."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")
