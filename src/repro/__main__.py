"""Command-line interface: ``python -m repro``.

Runs one simulation (or a core sweep) of a chosen workload under a
chosen scheduler and prints the paper's metrics.  The ``sweep``
subcommand expands a full parameter grid and drives it through the
``repro.exp`` runner (parallel workers + content-addressed result
cache).

The ``shard`` subcommand splits a sweep across processes or machines
by hash-range of the content-addressed cache key: ``--shard i/N`` runs
one slice into a private cache directory (on any machine), ``--merge``
unions shard caches back into the shared one with conflict detection,
and ``--all`` orchestrates every shard as local subprocesses —
including crash recovery — and merges at the end.

The ``manifest`` subcommand summarizes the run manifest the cache
keeps: hit rates, wall time by workload/scheduler, and the slowest
cells.

The ``diff`` subcommand is the audit layer: it aligns two sweeps'
manifests cell-by-cell by *spec identity* (ignoring the source
fingerprint) and reports per-metric drift, exiting nonzero on any
out-of-tolerance change; ``diff --reference`` instead runs a grid
through both the fast-path and ``REPRO_SIM_REFERENCE=1`` kernels and
asserts byte-equal results; ``diff --audit A B`` walks two
``audit/<fig>.jsonl`` directories and prints a per-figure drift
dashboard.  The ``baseline`` subcommand maintains committed metric
snapshots (``pin``/``check``/``update``) that give CI a cell-level
regression gate.

The ``fuzz`` subcommand is the verification layer (``repro.verify``):
``fuzz run`` generates seeded hostile cases and runs each through the
fast *and* reference kernels with the invariant oracles armed
(byte-equal results required), shrinking and saving any failure as a
one-file JSON repro; ``fuzz replay``/``fuzz corpus`` re-run saved
cases (``tests/corpus/`` is the committed corpus).

The ``trace`` subcommand renders the structured traces every layer
emits when ``REPRO_TRACE=<path>`` is set (``repro.obs``): ``summary``
for per-span-name self/total time, hottest cells, and kernel counter
rollups; ``tree`` for the nested span tree per process; ``export
--json`` for the machine-readable rollup.  ``perf --trace`` embeds
the kernel counters of a traced run in the bench report.

The ``serve``/``submit``/``status`` subcommands are the persistent
sweep service (``repro.svc``): ``serve`` starts a supervisor plus N
long-lived warm workers over a cache directory, ``submit`` enqueues a
grid onto the service's bounded priority queue (``--wait`` blocks
until the job finishes), and ``status`` reports queue depth,
per-worker warm-cache stats, and job outcomes (``--json`` for CI).
Served results are byte-identical to ``repro sweep`` on the same
cache.

Examples::

    python -m repro --workload tpcc --scheduler strex --cores 4
    python -m repro --workload tpce --sweep --transactions 80
    python -m repro --workload tpcc --scheduler base --prefetcher pif
    python -m repro sweep --workloads tpcc tpce --schedulers base strex \\
        --cores 2 4 8 --jobs 4
    python -m repro sweep --workloads tpcc --team-sizes 4 8 16 \\
        --schedulers strex --no-cache
    python -m repro sweep --workloads tpcc --schedulers strex \\
        --strex-overrides '{"phase_bits": [2, 4, 8]}'
    python -m repro shard --all --procs 4 --workloads tpcc tpce \\
        --schedulers base strex --cores 2 4 8
    python -m repro shard --shard 0/2 --workloads tpcc --cores 2 4
    python -m repro shard --merge benchmarks/out/.cache/shards/0-of-2
    python -m repro manifest --top 5
    python -m repro manifest --json
    python -m repro manifest --since 2026-08-01T00:00:00
    python -m repro manifest --keep-last 5
    python -m repro perf --scale tiny
    python -m repro perf --repeats 7 --out BENCH_sim.json
    python -m repro perf --check prior/BENCH_sim.json --max-slowdown 0.15
    python -m repro perf --history BENCH_history.jsonl --min-speedup 1.5
    python -m repro perf --profile 25
    REPRO_TRACE=trace.jsonl python -m repro perf --scale tiny --trace
    python -m repro trace summary trace.jsonl --top 5
    python -m repro trace tree trace.jsonl --depth 3
    python -m repro trace export --json trace.jsonl
    python -m repro diff old/.cache/manifest.jsonl new/.cache
    python -m repro diff a/manifest.jsonl b/manifest.jsonl \\
        --rel-tol 0.01 --markdown
    python -m repro diff --reference --workloads tpcc --schedulers \\
        base strex --cores 2 --scales tiny
    python -m repro diff --audit old/.cache new/.cache --strict
    python -m repro fuzz run --cases 50 --seed 7
    python -m repro fuzz run --cases 200 --schedulers strex \\
        --save-failures fuzz-failures --time-budget 60
    python -m repro fuzz corpus
    python -m repro fuzz replay tests/corpus/one-core-torus.json
    python -m repro baseline pin baselines/ci-tiny.json --scales tiny \\
        --workloads tpcc tpce --schedulers base strex slicc hybrid
    python -m repro baseline check baselines/ci-tiny.json
    python -m repro baseline update baselines/ci-tiny.json
    python -m repro serve --workers 4
    python -m repro submit --workloads tpcc tpce --schedulers base \\
        --cores 1 2 --scales tiny --repeat 3 --wait
    python -m repro submit --workloads tpcc --priority 1 --wait
    python -m repro status --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Tuple

from repro.analysis.report import format_table
from repro.config import SCALES, default_scale, paper_scale
from repro.exp import (
    Manifest,
    ResultCache,
    Runner,
    RunSpec,
    ShardSpec,
    SweepSpec,
    Tolerance,
    audit_diff,
    check_baseline,
    diff_manifests,
    merge_caches,
    pin_baseline,
    reference_diff,
    run_all_shards,
    run_shard,
    shard_root,
    summarize_entries,
    update_baseline,
)
from repro.sim.api import PREFETCHERS, SCHEDULERS, simulate
from repro.workloads import WORKLOADS

DEFAULT_CACHE_DIR = Path("benchmarks/out/.cache")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STREX (ISCA 2013) reproduction: simulate OLTP "
                    "workloads under conventional, STREX, SLICC, or "
                    "hybrid scheduling.",
    )
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="tpcc")
    parser.add_argument("--scheduler", choices=sorted(SCHEDULERS),
                        default="strex")
    parser.add_argument("--prefetcher", choices=sorted(PREFETCHERS),
                        default="none")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--transactions", type=int, default=60)
    parser.add_argument("--team-size", type=int, default=None,
                        help="STREX team size override")
    parser.add_argument("--seed", type=int, default=1013)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the full Table 2 system "
                             "(32 KiB L1s) instead of the scaled one")
    parser.add_argument("--sweep", action="store_true",
                        help="sweep 2/4/8/16 cores over all schedulers")
    return parser


def _config(args, cores: int):
    factory = paper_scale if args.paper_scale else default_scale
    return factory(num_cores=cores)


def run_single(args) -> str:
    """One run; returns the printed report."""
    if args.team_size is not None and args.scheduler not in ("strex",
                                                             "hybrid"):
        raise ValueError(
            "--team-size only applies to the 'strex' and 'hybrid' "
            f"schedulers, not {args.scheduler!r}"
        )
    config = _config(args, args.cores)
    workload = WORKLOADS[args.workload](config.l1i_blocks, args.seed)
    traces = workload.generate_mix(args.transactions, seed=args.seed)
    base = simulate(config, traces, "base", workload.name)
    run = simulate(config, traces, args.scheduler, workload.name,
                   prefetcher=args.prefetcher,
                   team_size=args.team_size) \
        if (args.scheduler, args.prefetcher) != ("base", "none") else base
    rows = [
        ["workload", workload.name],
        ["scheduler", run.scheduler],
        ["cores", args.cores],
        ["transactions", run.transactions],
        ["instructions", run.instructions],
        ["I-MPKI", round(run.i_mpki, 2)],
        ["D-MPKI", round(run.d_mpki, 2)],
        ["throughput (txn/Mcyc)", round(run.throughput, 2)],
        ["vs baseline", f"x{run.relative_throughput(base):.3f}"],
    ]
    return format_table(["metric", "value"], rows)


def run_sweep(args) -> str:
    """Core sweep over all schedulers; returns the printed table."""
    rows: List[List[object]] = []
    for cores in (2, 4, 8, 16):
        config = _config(args, cores)
        workload = WORKLOADS[args.workload](config.l1i_blocks, args.seed)
        traces = workload.generate_mix(args.transactions,
                                       seed=args.seed)
        base = simulate(config, traces, "base", workload.name)
        row: List[object] = [cores, round(base.i_mpki, 2)]
        for scheduler in ("strex", "slicc", "hybrid"):
            run = simulate(config, traces, scheduler, workload.name)
            row.append(round(run.relative_throughput(base), 3))
        rows.append(row)
    return format_table(
        ["cores", "base I-MPKI", "strex", "slicc", "hybrid"], rows)


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-grid axes shared by ``sweep`` and ``shard``."""
    parser.add_argument("--workloads", nargs="+",
                        choices=sorted(WORKLOADS), default=["tpcc"])
    parser.add_argument("--schedulers", nargs="+",
                        choices=sorted(SCHEDULERS),
                        default=["base", "strex"])
    parser.add_argument("--prefetchers", nargs="+",
                        choices=sorted(PREFETCHERS), default=["none"])
    parser.add_argument("--cores", nargs="+", type=int, default=[2, 4])
    parser.add_argument("--team-sizes", nargs="+", type=int, default=[],
                        help="STREX team sizes (strex/hybrid cells only)")
    parser.add_argument("--seeds", nargs="+", type=int, default=[1013])
    parser.add_argument("--scales", nargs="+", choices=sorted(SCALES),
                        default=["default"])
    parser.add_argument("--transactions", type=int, default=40)
    for option, target in (("--strex-overrides", "StrexConfig"),
                           ("--cache-overrides", "CacheConfig"),
                           ("--hybrid-overrides", "HybridConfig")):
        parser.add_argument(
            option, type=json.loads, default=None, metavar="JSON",
            help=f"ablation grid over {target} fields, e.g. "
                 '\'{"phase_bits": [2, 4, 8]}\'')


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution knobs shared by ``sweep`` and ``shard``."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (<=1 runs in-process)")
    parser.add_argument("--cache-dir", type=Path,
                        default=DEFAULT_CACHE_DIR)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra attempts after transient failures")


def _grid_sweep(args) -> "SweepSpec":
    """The :class:`SweepSpec` a parsed grid-argument set describes."""
    return SweepSpec(
        workloads=tuple(args.workloads),
        schedulers=tuple(args.schedulers),
        prefetchers=tuple(args.prefetchers),
        cores=tuple(args.cores),
        team_sizes=tuple(args.team_sizes) or (None,),
        seeds=tuple(args.seeds),
        scales=tuple(args.scales),
        transactions=args.transactions,
        strex_overrides=args.strex_overrides,
        cache_overrides=args.cache_overrides,
        hybrid_overrides=args.hybrid_overrides,
    )


def build_sweep_parser() -> argparse.ArgumentParser:
    """Parser for the ``sweep`` subcommand (the ``repro.exp`` runner)."""
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Expand a parameter grid into runs and execute "
                    "them through the repro.exp runner: parallel "
                    "workers, per-run timeout/retry, and a "
                    "content-addressed result cache.",
    )
    _add_grid_arguments(parser)
    _add_runner_arguments(parser)
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result "
                             "cache (always re-simulate)")
    return parser


def run_exp_sweep(argv: List[str]) -> str:
    """Execute the ``sweep`` subcommand; returns the printed report."""
    args = build_sweep_parser().parse_args(argv)
    sweep = _grid_sweep(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manifest = None if args.no_cache \
        else Manifest(args.cache_dir / "manifest.jsonl")
    runner = Runner(jobs=args.jobs, cache=cache, manifest=manifest,
                    timeout=args.timeout, retries=args.retries)
    specs = sweep.expand()
    results = runner.run(specs)

    def override_label(spec) -> str:
        segments = []
        for overrides in (spec.strex_overrides, spec.cache_overrides,
                          spec.hybrid_overrides):
            if overrides is not None:
                segments += [f"{k}={v}" for k, v in overrides]
        return ",".join(segments) or "-"

    with_overrides = any(override_label(spec) != "-" for spec in specs)
    rows = []
    for spec, run in zip(specs, results):
        row = [
            run.workload,
            spec.scale,
            spec.cores,
            run.scheduler,
            spec.team_size if spec.team_size is not None else "-",
        ]
        if with_overrides:
            row.append(override_label(spec))
        row += [
            spec.seed,
            round(run.i_mpki, 2),
            round(run.d_mpki, 2),
            round(run.throughput, 2),
        ]
        rows.append(row)
    headers = ["workload", "scale", "cores", "scheduler", "team"]
    if with_overrides:
        headers.append("overrides")
    headers += ["seed", "I-MPKI", "D-MPKI", "thr (txn/Mcyc)"]
    table = format_table(headers, rows)
    summary = (
        f"{len(results)} runs: {runner.hits} cache hits, "
        f"{runner.misses} executed"
    )
    if cache is not None:
        summary += f" (cache: {args.cache_dir})"
    return table + "\n" + summary


def build_shard_parser() -> argparse.ArgumentParser:
    """Parser for the ``shard`` subcommand (cross-process sweeps)."""
    parser = argparse.ArgumentParser(
        prog="repro shard",
        description="Split a sweep across processes or machines by "
                    "hash-range of the content-addressed cache key: "
                    "run one shard into a private cache (--shard), "
                    "orchestrate every shard locally (--all), or "
                    "union shard caches into the shared one "
                    "(--merge).  Merges are conflict-safe: the same "
                    "key with different payloads is a hard error, "
                    "never last-writer-wins.",
    )
    _add_grid_arguments(parser)
    _add_runner_arguments(parser)
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--shard", type=ShardSpec.parse, metavar="I/N",
                        help="run shard I of N into a private "
                             "cache directory")
    action.add_argument("--all", action="store_true",
                        help="orchestrate every shard as local "
                             "subprocesses, then merge")
    action.add_argument("--merge", nargs="+", type=Path, metavar="DIR",
                        help="merge shard cache directories into "
                             "--cache-dir (no simulation)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count for --all (default: --procs)")
    parser.add_argument("--procs", type=int, default=2, metavar="K",
                        help="concurrent shard subprocesses for --all")
    parser.add_argument("--shard-dir", type=Path, default=None,
                        help="private cache directory for --shard "
                             "(default: <cache-dir>/shards/<i>-of-<n>)")
    parser.add_argument("--specs-file", type=Path, default=None,
                        metavar="JSON",
                        help="run this JSON list of RunSpec dicts "
                             "instead of expanding the grid flags")
    return parser


def _shard_specs(args) -> List[RunSpec]:
    """The spec list a ``shard`` invocation operates on."""
    if args.specs_file is not None:
        data = json.loads(args.specs_file.read_text())
        if not isinstance(data, list):
            raise ValueError(
                f"--specs-file must hold a JSON list of RunSpec "
                f"objects, got {type(data).__name__}"
            )
        return [RunSpec.from_dict(item) for item in data]
    return _grid_sweep(args).expand()


def run_shard_cmd(argv: List[str]) -> str:
    """Execute the ``shard`` subcommand; returns the printed report."""
    args = build_shard_parser().parse_args(argv)
    if args.merge is not None:
        report = merge_caches(ResultCache(args.cache_dir), args.merge)
        return f"{report.describe()} -> {args.cache_dir}"
    specs = _shard_specs(args)
    if args.all:
        count = args.shards if args.shards is not None else args.procs
        report = run_all_shards(
            specs, cache_dir=args.cache_dir, count=count,
            procs=args.procs, jobs=args.jobs, timeout=args.timeout,
            retries=args.retries)
        lines = [report.describe()]
        for index in sorted(report.launches):
            owned = sum(1 for key in report.keys
                        if ShardSpec.assign(key, count) == index)
            lines.append(f"  shard {index}/{count}: {owned} cell(s), "
                         f"{report.launches[index]} launch(es)")
        lines.append(f"merged cache: {args.cache_dir}")
        return "\n".join(lines)
    root = args.shard_dir if args.shard_dir is not None \
        else shard_root(args.cache_dir, args.shard)
    outcome = run_shard(specs, args.shard, root, jobs=args.jobs,
                        timeout=args.timeout, retries=args.retries)
    return (
        f"shard {args.shard}: {outcome.selected}/{len(specs)} cell(s) "
        f"selected, {outcome.hits} cache hit(s), {outcome.misses} "
        f"executed\n"
        f"private cache: {root}\n"
        f"merge with: python -m repro shard --merge {root} "
        f"--cache-dir {args.cache_dir}"
    )


def build_manifest_parser() -> argparse.ArgumentParser:
    """Parser for the ``manifest`` subcommand (cache analytics)."""
    parser = argparse.ArgumentParser(
        prog="repro manifest",
        description="Summarize the run manifest kept next to the "
                    "result cache: cache hit rate, wall time by "
                    "workload and scheduler, and the slowest cells.",
    )
    parser.add_argument("--path", type=Path,
                        default=DEFAULT_CACHE_DIR / "manifest.jsonl",
                        help="manifest file (default: the benchmark "
                             "cache's manifest)")
    parser.add_argument("--top", type=int, default=10,
                        help="how many slowest cells to list")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of "
                             "tables (for CI assertions)")
    parser.add_argument("--since", type=str, default=None,
                        metavar="ISO",
                        help="only summarize rows at/after this ISO "
                             "timestamp, e.g. 2026-08-01T00:00:00 "
                             "(rows without a timestamp are excluded)")
    parser.add_argument("--keep-last", type=int, default=None,
                        metavar="N",
                        help="compact the manifest in place, keeping "
                             "only the rows of the last N sweeps")
    return parser


def run_manifest(argv: List[str]) -> str:
    """Execute the ``manifest`` subcommand; returns the report."""
    from datetime import datetime

    args = build_manifest_parser().parse_args(argv)
    manifest = Manifest(args.path)
    if args.keep_last is not None:
        if args.keep_last <= 0:
            raise ValueError("--keep-last must be positive")
        kept, dropped = manifest.compact(args.keep_last)
        return (f"compacted {args.path}: kept {kept} row(s) from the "
                f"last {args.keep_last} sweep(s), dropped {dropped}")
    entries = manifest.read()
    if args.since is not None:
        try:
            cutoff = datetime.fromisoformat(args.since).timestamp()
        except ValueError:
            raise ValueError(
                f"--since must be an ISO timestamp, got {args.since!r}"
            ) from None
        entries = [e for e in entries
                   if e.ts is not None and e.ts >= cutoff]
    summary = summarize_entries(entries, top=args.top)
    if args.json:
        return json.dumps(summary.to_dict(), indent=2, sort_keys=True)
    if not entries:
        return f"no manifest entries at {args.path}"
    lines = [
        f"manifest: {args.path}",
        f"{summary.runs} runs: {summary.hits} cache hits, "
        f"{summary.misses} executed "
        f"(hit rate {100 * summary.hit_rate:.1f}%)",
        f"executed wall time {summary.wall_s:.2f}s; cache saved "
        f"~{summary.saved_s:.2f}s; {summary.retried} run(s) retried",
        "",
    ]
    group_rows = [
        [workload, scheduler, stats["runs"], stats["hits"],
         stats["misses"], round(stats["wall_s"], 2)]
        for (workload, scheduler), stats in sorted(summary.groups.items())
    ]
    lines.append(format_table(
        ["workload", "scheduler", "runs", "hits", "misses", "wall (s)"],
        group_rows))
    if summary.slowest:
        lines.append("")
        lines.append(format_table(
            ["wall (s)", "spec", "key"],
            [[round(wall, 3), label, key[:12]]
             for wall, label, key in summary.slowest]))
    return "\n".join(lines)


def _add_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--abs-tol", type=float, default=0.0,
                        metavar="X",
                        help="absolute per-metric tolerance "
                             "(default 0: exact)")
    parser.add_argument("--rel-tol", type=float, default=0.0,
                        metavar="F",
                        help="relative per-metric tolerance vs the "
                             "reference side (default 0: exact)")


def _manifest_path(path: Path) -> Path:
    """Accept either a manifest file or a cache directory."""
    if path.is_dir():
        return path / "manifest.jsonl"
    return path


def build_diff_parser() -> argparse.ArgumentParser:
    """Parser for the ``diff`` subcommand (the audit layer)."""
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description="Compare two sweeps cell by cell: align their "
                    "manifests by spec identity (config + params + "
                    "mode, ignoring the source fingerprint), classify "
                    "each cell as identical/changed/added/removed, "
                    "and report per-metric deltas.  Exits nonzero on "
                    "any out-of-tolerance change.  With --reference, "
                    "instead runs a grid through both the fast-path "
                    "and REPRO_SIM_REFERENCE=1 kernels and asserts "
                    "byte-equal results per cell.",
    )
    parser.add_argument("a", nargs="?", type=Path, metavar="MANIFEST_A",
                        help="reference sweep: manifest file or cache "
                             "directory")
    parser.add_argument("b", nargs="?", type=Path, metavar="MANIFEST_B",
                        help="candidate sweep: manifest file or cache "
                             "directory")
    parser.add_argument("--cache-a", type=Path, default=None,
                        metavar="DIR",
                        help="result cache for MANIFEST_A (default: "
                             "the manifest's directory)")
    parser.add_argument("--cache-b", type=Path, default=None,
                        metavar="DIR",
                        help="result cache for MANIFEST_B (default: "
                             "the manifest's directory)")
    _add_tolerance_arguments(parser)
    parser.add_argument("--strict", action="store_true",
                        help="also fail on added/removed cells, not "
                             "just changed/missing ones")
    output = parser.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    output.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavored markdown (for PR "
                             "comments)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--reference", action="store_true",
                      help="diff the fast-path kernel against "
                           "REPRO_SIM_REFERENCE=1 on the grid flags "
                           "below (byte-equality; tolerances do not "
                           "apply)")
    mode.add_argument("--audit", action="store_true",
                      help="treat A and B as audit directories "
                           "(<cache>/audit with one <fig>.jsonl per "
                           "bench) and print a per-figure drift "
                           "dashboard")
    _add_grid_arguments(parser)
    return parser


def run_diff(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``diff`` subcommand; returns (report, exit code)."""
    args = build_diff_parser().parse_args(argv)
    if args.reference:
        if args.a is not None or args.b is not None:
            raise ValueError(
                "--reference takes grid flags, not manifest paths")
        report = reference_diff(_grid_sweep(args).expand())
    elif args.audit:
        if args.a is None or args.b is None:
            raise ValueError(
                "diff --audit needs two audit (or cache) directories")
        report = audit_diff(
            args.a, args.b,
            tolerance=Tolerance(abs_tol=args.abs_tol,
                                rel_tol=args.rel_tol))
    else:
        if args.a is None or args.b is None:
            raise ValueError(
                "diff needs two manifests (or --reference/--audit)")
        report = diff_manifests(
            _manifest_path(args.a), _manifest_path(args.b),
            cache_a=args.cache_a, cache_b=args.cache_b,
            tolerance=Tolerance(abs_tol=args.abs_tol,
                                rel_tol=args.rel_tol))
    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    elif args.markdown:
        text = report.format_markdown()
    else:
        text = report.format_text()
    return text, report.exit_code(strict=args.strict)


def build_baseline_parser() -> argparse.ArgumentParser:
    """Parser for the ``baseline`` subcommand (pinned snapshots)."""
    parser = argparse.ArgumentParser(
        prog="repro baseline",
        description="Maintain committed metric snapshots of a sweep.  "
                    "'pin' runs the grid flags below and writes the "
                    "snapshot; 'check' re-runs the pinned specs (the "
                    "file is self-contained) and exits nonzero on "
                    "drift; 'update' re-runs and overwrites the "
                    "snapshot.  Snapshots hold metric vectors, not "
                    "raw bytes, so fingerprint-only changes stay "
                    "green.",
    )
    parser.add_argument("action", choices=("pin", "check", "update"))
    parser.add_argument("path", type=Path, metavar="FILE",
                        help="baseline JSON file (commit it; "
                             "baselines/ by convention)")
    parser.add_argument("--name", type=str, default=None,
                        help="snapshot name recorded in the file "
                             "(pin only; default: the file stem)")
    _add_tolerance_arguments(parser)
    parser.add_argument("--json", action="store_true",
                        help="emit the check's diff as JSON")
    _add_grid_arguments(parser)
    _add_runner_arguments(parser)
    return parser


def run_baseline(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``baseline`` subcommand; returns (report, code)."""
    args = build_baseline_parser().parse_args(argv)
    runner = Runner(jobs=args.jobs, cache=ResultCache(args.cache_dir),
                    timeout=args.timeout, retries=args.retries)
    if args.action == "pin":
        specs = _grid_sweep(args).expand()
        baseline = pin_baseline(
            specs, args.path, runner=runner,
            name=args.name if args.name is not None else args.path.stem)
        return (f"pinned {len(baseline.cells)} cell(s) -> {args.path}",
                0)
    if args.action == "update":
        baseline = update_baseline(args.path, runner=runner)
        return (f"updated {len(baseline.cells)} cell(s) in "
                f"{args.path}", 0)
    report = check_baseline(
        args.path, runner=runner,
        tolerance=Tolerance(abs_tol=args.abs_tol,
                            rel_tol=args.rel_tol))
    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        verdict = "OK" if report.ok(strict=True) else "DRIFT"
        text = (f"baseline {args.path}: {verdict}\n"
                + report.format_text())
    # A pinned cell that vanishes is as much of a regression as one
    # that moves, hence strict.
    return text, report.exit_code(strict=True)


def build_fuzz_parser() -> argparse.ArgumentParser:
    """Parser for the ``fuzz`` subcommand (``repro.verify``).

    Shares the sweep-grid argument factoring with ``sweep``/``shard``
    (one ``--workloads``/``--schedulers``/... vocabulary everywhere),
    but defaults every axis to *unset*: an unset axis means "sample
    the full hostile pool", not the sweep's fixed grid.
    """
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Property-based differential fuzzing of the "
                    "simulator: generate seeded hostile cases (or "
                    "replay saved ones), run each through the fast "
                    "AND REPRO_SIM_REFERENCE=1 kernels with the "
                    "REPRO_SIM_CHECK=1 invariant oracles armed, and "
                    "require byte-equal results.  Failures are "
                    "shrunk to minimal one-file JSON repros; "
                    "tests/corpus/ holds the committed replay "
                    "corpus.",
    )
    parser.add_argument("action", choices=("run", "replay", "corpus"),
                        help="run: fresh seeded cases; replay: the "
                             "given case files/directories; corpus: "
                             "the committed corpus directory")
    parser.add_argument("paths", nargs="*", type=Path, metavar="PATH",
                        help="case files or directories for 'replay'")
    parser.add_argument("--cases", type=int, default=25,
                        help="number of generated cases for 'run'")
    parser.add_argument("--seed", type=int, default=1013,
                        help="campaign seed (printed for replay)")
    parser.add_argument("--corpus-dir", type=Path,
                        default=Path("tests/corpus"),
                        help="committed corpus directory for 'corpus'")
    parser.add_argument("--save-failures", type=Path, default=None,
                        metavar="DIR",
                        help="write shrunken failing cases here as "
                             "JSON repros (CI uploads this dir)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--no-check", action="store_true",
                        help="differential comparison only; leave the "
                             "invariant oracles disarmed")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="S",
                        help="stop generating new cases after S "
                             "seconds of wall clock ('run' only)")
    _add_grid_arguments(parser)
    # Grid flags narrow the sampling pools only when given explicitly;
    # the sweep defaults (cores=[2,4], tpcc-only, ...) would otherwise
    # silently exclude the hostile corner the fuzzer exists to reach.
    parser.set_defaults(workloads=None, schedulers=None,
                        prefetchers=None, cores=None, team_sizes=None,
                        seeds=None, scales=None, transactions=None)
    return parser


def run_fuzz(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``fuzz`` subcommand; returns (report, exit code)."""
    from repro.verify import (
        CasePools,
        fuzz_run,
        load_case,
        load_corpus,
        replay_cases,
    )

    args = build_fuzz_parser().parse_args(argv)
    check = not args.no_check
    shrink = not args.no_shrink

    if args.action == "run":
        if args.paths:
            raise ValueError("'fuzz run' takes no PATH arguments "
                             "(use 'fuzz replay')")
        pools = CasePools.from_grid_args(args)
        report = fuzz_run(
            args.cases, args.seed, pools=pools, check=check,
            shrink=shrink, save_dir=args.save_failures,
            time_budget_s=args.time_budget)
        header = (f"fuzz seed {args.seed}; replay with: "
                  f"python -m repro fuzz run --cases {args.cases} "
                  f"--seed {args.seed}")
        return header + "\n" + report.format_text(), report.exit_code()

    if args.action == "corpus":
        pairs = load_corpus(args.corpus_dir)
        if not pairs:
            return (f"no corpus cases under {args.corpus_dir} "
                    f"(expected committed *.json repros)", 2)
        cases = [case for _, case in pairs]
    else:
        if not args.paths:
            raise ValueError("'fuzz replay' needs case files or "
                             "directories")
        cases = []
        for path in args.paths:
            if path.is_dir():
                cases += [case for _, case in load_corpus(path)]
            else:
                cases.append(load_case(path))
        if not cases:
            raise ValueError(
                f"no case files found under {args.paths}")

    report = replay_cases(cases, check=check, shrink=shrink,
                          save_dir=args.save_failures)
    rows = [[outcome.case.name, outcome.case.scheduler,
             outcome.case.workload, outcome.status]
            for outcome in report.outcomes]
    table = format_table(["case", "scheduler", "workload", "status"],
                         rows)
    return table + "\n" + report.format_text(), report.exit_code()


def build_perf_parser() -> argparse.ArgumentParser:
    """Parser for the ``perf`` subcommand (kernel microbenchmark)."""
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Benchmark the simulation kernel: fast path vs "
                    "the REPRO_SIM_REFERENCE implementation on the "
                    "same traces, with parity asserted first.  Writes "
                    "a JSON report for tracking.",
    )
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="default")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="tpcc")
    parser.add_argument("--transactions", type=int, default=40)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repeats per path (min is kept)")
    parser.add_argument("--cores", type=int, default=None,
                        help="override the scale's default core count")
    parser.add_argument("--seed", type=int, default=1013)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_sim.json"),
                        help="JSON report path (default: "
                             "BENCH_sim.json in the current directory)")
    parser.add_argument("--check", type=Path, default=None,
                        metavar="PRIOR",
                        help="compare the fresh report against this "
                             "prior BENCH_sim.json and exit nonzero "
                             "on a kernel slowdown beyond "
                             "--max-slowdown (a missing PRIOR is "
                             "skipped: first runs have no baseline)")
    parser.add_argument("--max-slowdown", type=float, default=0.15,
                        metavar="F",
                        help="tolerated fractional events/s drop for "
                             "--check (default 0.15)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="F",
                        help="exit nonzero unless the batch replay "
                             "layer delivers at least this x-factor "
                             "over the no-batch fast path "
                             "(batch_speedup in the report)")
    parser.add_argument("--history", type=Path, default=None,
                        metavar="PATH",
                        help="also append the report as one JSON line "
                             "to this .jsonl ledger (e.g. "
                             "BENCH_history.jsonl)")
    parser.add_argument("--profile", type=int, default=None,
                        metavar="N",
                        help="instead of benchmarking, cProfile one "
                             "fast-path run and print the top N "
                             "functions by total time")
    parser.add_argument("--trace", action="store_true",
                        help="embed the engine's own kernel counters "
                             "(fast-forward runs taken, memo hit "
                             "rate, batch record/replay tallies) in "
                             "the report as 'kernel_counters'")
    return parser


def run_perf(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``perf`` subcommand; returns (report, exit code)."""
    from repro.perf import (append_history, check_regression,
                            profile_kernel, run_bench, write_bench)
    from repro.perf.bench import format_report

    args = build_perf_parser().parse_args(argv)
    if args.profile is not None:
        return profile_kernel(
            scale=args.scale,
            workload=args.workload,
            transactions=args.transactions,
            seed=args.seed,
            cores=args.cores,
            top=args.profile,
        ), 0
    report = run_bench(
        scale=args.scale,
        workload=args.workload,
        transactions=args.transactions,
        repeats=args.repeats,
        seed=args.seed,
        cores=args.cores,
        trace_counters=args.trace,
    )
    write_bench(report, args.out)
    text = format_report(report) + f"\nwrote {args.out}"
    code = 0
    if args.min_speedup is not None:
        actual = float(report["batch_speedup"])
        if actual < args.min_speedup:
            text += (f"\nbatch layer below floor: x{actual:.2f} < "
                     f"x{args.min_speedup:.2f}")
            code = 1
        else:
            text += (f"\nbatch layer above floor: x{actual:.2f} >= "
                     f"x{args.min_speedup:.2f}")
    if args.check is not None:
        if not args.check.exists():
            text += (f"\nno prior report at {args.check}; "
                     f"nothing to gate against")
        else:
            prior = json.loads(args.check.read_text())
            ok, message = check_regression(
                report, prior, max_slowdown=args.max_slowdown)
            text += "\n" + message
            if not ok:
                code = 1
    # The ledger archives *clean* runs only: every gate above must
    # have passed (parity failures raise inside run_bench and never
    # get here).  Appending a failing report would poison later
    # over-time comparisons with numbers a gate already rejected.
    if args.history is not None:
        if code == 0 and report.get("parity") is True:
            append_history(report, args.history)
            text += f"\nappended to {args.history}"
        else:
            text += (f"\nnot appending to {args.history}: report "
                     f"failed a gate")
    return text, code


def build_trace_parser() -> argparse.ArgumentParser:
    """Parser for the ``trace`` subcommand (``repro.obs``)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect a structured trace written by "
                    "REPRO_TRACE=<path>: per-span wall-time rollups "
                    "with self/total split, the hottest sweep cells, "
                    "kernel counters summed over every sim.run span, "
                    "and merged cross-process metrics.  'summary' "
                    "aggregates, 'tree' renders the span forest, "
                    "'export' emits the summary as JSON for CI "
                    "artifacts.",
    )
    parser.add_argument("action", choices=("summary", "tree", "export"),
                        help="summary: aggregate rollups; tree: the "
                             "nested span forest; export: summary as "
                             "JSON")
    parser.add_argument("path", nargs="?", type=Path, default=None,
                        help="trace JSONL sink (default: the current "
                             "REPRO_TRACE value)")
    parser.add_argument("--top", type=int, default=10,
                        help="hottest cells to list (default 10)")
    parser.add_argument("--depth", type=int, default=None,
                        help="maximum tree depth for 'tree'")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON (implied by "
                             "'export')")
    return parser


def run_trace(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``trace`` subcommand; returns (report, exit code)."""
    from repro.obs import TRACE_ENV
    from repro.obs.report import (format_summary, format_tree,
                                  load_trace, summarize)

    # parse_intermixed_args lets flags precede the optional positional
    # ("trace export --json trace.jsonl"), which plain parse_args
    # rejects for nargs='?' positionals.
    args = build_trace_parser().parse_intermixed_args(argv)
    path = args.path
    if path is None:
        env = os.environ.get(TRACE_ENV)
        if not env:
            raise ValueError(
                "no trace path given and REPRO_TRACE is not set")
        path = Path(env)
    if not path.exists():
        raise ValueError(f"no trace file at {path}")
    data = load_trace(path)
    if args.action == "tree":
        return format_tree(data, depth=args.depth), 0
    summary = summarize(data, top=args.top)
    if args.action == "export" or args.json:
        return json.dumps(summary, indent=2, sort_keys=True), 0
    return format_summary(summary), 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for the ``serve`` subcommand (the sweep service)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Start the persistent sweep service: a supervisor "
                    "plus N long-lived worker processes that keep "
                    "trace memos, run tables, and the batch "
                    "record/replay registry warm across jobs.  Jobs "
                    "arrive via 'repro submit' on a bounded, "
                    "priority-aware, file-backed queue; results land "
                    "in the same ResultCache/Manifest as 'repro "
                    "sweep' (byte-identical entries).  SIGTERM drains "
                    "gracefully: workers finish their in-flight cell "
                    "and pending work survives on disk for the next "
                    "serve.",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="long-lived worker processes (default 2)")
    parser.add_argument("--cache-dir", type=Path,
                        default=DEFAULT_CACHE_DIR)
    parser.add_argument("--svc-dir", type=Path, default=None,
                        help="service state directory (default: "
                             "<cache-dir>/svc)")
    parser.add_argument("--queue-capacity", type=int, default=None,
                        help="bound on pending jobs before submit "
                             "pushes back (default 256)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock budget in seconds "
                             "(best-effort: service cells run inline "
                             "on worker threads, where SIGALRM cannot "
                             "be armed)")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra attempts after transient failures")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        help="seconds without a worker heartbeat "
                             "before it is declared dead and its "
                             "claimed cells are re-queued")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="supervisor loop idle wait in seconds")
    return parser


def run_serve(argv: List[str]) -> str:
    """Execute the ``serve`` subcommand (blocks until SIGTERM)."""
    from repro.svc import Supervisor
    from repro.svc.supervisor import HEARTBEAT_TIMEOUT

    args = build_serve_parser().parse_args(argv)
    supervisor = Supervisor(
        args.cache_dir,
        svc_root=args.svc_dir,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        queue_capacity=args.queue_capacity,
        heartbeat_timeout=(args.heartbeat_timeout
                           if args.heartbeat_timeout is not None
                           else HEARTBEAT_TIMEOUT),
        poll_interval=args.poll_interval,
    )
    print(f"serving {supervisor.svc_root} with {supervisor.workers} "
          f"worker(s) (pid {os.getpid()}); SIGTERM drains",
          flush=True)
    try:
        supervisor.serve()
    except RuntimeError as exc:
        raise ValueError(str(exc)) from exc
    return f"service at {supervisor.svc_root} stopped"


def _svc_root(args) -> Path:
    """The service directory a submit/status invocation targets."""
    from repro.svc import svc_root_for

    if args.svc_dir is not None:
        return args.svc_dir
    return svc_root_for(args.cache_dir)


def build_submit_parser() -> argparse.ArgumentParser:
    """Parser for the ``submit`` subcommand (enqueue onto the service)."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Enqueue a sweep grid as one job on the sweep "
                    "service's bounded priority queue.  The job is "
                    "durable: it survives a service restart and can "
                    "be submitted before the service starts.  "
                    "--repeat N re-executes each cell N times in "
                    "total (later passes bypass the cache read) to "
                    "prime the batch record/replay registry; --wait "
                    "blocks until the job finishes and prints its "
                    "outcome.",
    )
    _add_grid_arguments(parser)
    parser.add_argument("--cache-dir", type=Path,
                        default=DEFAULT_CACHE_DIR)
    parser.add_argument("--svc-dir", type=Path, default=None,
                        help="service state directory (default: "
                             "<cache-dir>/svc)")
    parser.add_argument("--priority", type=int, default=None,
                        help="0 (most urgent) .. 9; default 5")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="execute each cell N times in total "
                             "(extra passes skip the cache read; "
                             "results stay byte-identical)")
    parser.add_argument("--force", action="store_true",
                        help="re-execute cells even when cached")
    parser.add_argument("--block", action="store_true",
                        help="at queue capacity, wait for space "
                             "instead of failing")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes; exit "
                             "nonzero if it failed")
    parser.add_argument("--wait-timeout", type=float, default=None,
                        metavar="S",
                        help="give up waiting after S seconds")
    return parser


def run_submit(argv: List[str]) -> Tuple[str, int]:
    """Execute the ``submit`` subcommand; returns (report, code)."""
    from repro.svc import (
        DEFAULT_PRIORITY,
        JobFailed,
        QueueFull,
        submit_job,
        wait_job,
    )

    args = build_submit_parser().parse_args(argv)
    root = _svc_root(args)
    specs = _grid_sweep(args).expand()
    try:
        job_id = submit_job(
            root, specs,
            priority=(args.priority if args.priority is not None
                      else DEFAULT_PRIORITY),
            repeat=args.repeat,
            force=args.force,
            block=args.block,
            timeout=args.wait_timeout,
        )
    except QueueFull as exc:
        return f"queue full: {exc} (retry with --block)", 1
    header = (f"submitted job {job_id}: {len(specs)} cell(s) "
              f"-> {root}")
    if not args.wait:
        return (header + f"\nwait with: python -m repro status "
                f"--svc-dir {root}", 0)
    try:
        record = wait_job(root, job_id, timeout=args.wait_timeout)
    except JobFailed as exc:
        return header + f"\n{exc}", 1
    return (
        header + "\n"
        f"job {job_id} {record['state']}: "
        f"{record.get('done', 0)} done, "
        f"{record.get('cache_hits', 0)} cache hit(s), "
        f"{record.get('executed', 0)} executed, "
        f"{record.get('warm_hits', 0)} warm "
        f"({100.0 * (record.get('warm_rate') or 0.0):.1f}%), "
        f"{record.get('batch_replays', 0)} batch replay(s), "
        f"wall {record.get('wall_s', 0.0):.3f}s "
        f"(queued {record.get('queue_wait_s', 0.0):.3f}s)",
        0,
    )


def build_status_parser() -> argparse.ArgumentParser:
    """Parser for the ``status`` subcommand (service snapshot)."""
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Report the sweep service's state: supervisor "
                    "liveness, queue depth vs capacity, per-worker "
                    "warm-cache stats (cache hits, batch replays, "
                    "trace-memo hit rate, restarts), and job "
                    "outcomes.  Read-only and file-based: works "
                    "whether or not the service is running.",
    )
    parser.add_argument("--cache-dir", type=Path,
                        default=DEFAULT_CACHE_DIR)
    parser.add_argument("--svc-dir", type=Path, default=None,
                        help="service state directory (default: "
                             "<cache-dir>/svc)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable snapshot")
    return parser


def run_status(argv: List[str]) -> str:
    """Execute the ``status`` subcommand; returns the report."""
    from repro.svc import format_status, service_status

    args = build_status_parser().parse_args(argv)
    status = service_status(_svc_root(args))
    if args.json:
        return json.dumps(status, indent=2, sort_keys=True)
    return format_status(status)


def main(argv=None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "sweep":
            print(run_exp_sweep(argv[1:]))
            return 0
        if argv and argv[0] == "shard":
            print(run_shard_cmd(argv[1:]))
            return 0
        if argv and argv[0] == "manifest":
            print(run_manifest(argv[1:]))
            return 0
        if argv and argv[0] == "perf":
            text, code = run_perf(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "diff":
            text, code = run_diff(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "fuzz":
            text, code = run_fuzz(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "baseline":
            text, code = run_baseline(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "trace":
            text, code = run_trace(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "serve":
            print(run_serve(argv[1:]))
            return 0
        if argv and argv[0] == "submit":
            text, code = run_submit(argv[1:])
            print(text)
            return code
        if argv and argv[0] == "status":
            print(run_status(argv[1:]))
            return 0
        args = build_parser().parse_args(argv)
        report = run_sweep(args) if args.sweep else run_single(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
