"""Command-line interface: ``python -m repro``.

Runs one simulation (or a core sweep) of a chosen workload under a
chosen scheduler and prints the paper's metrics.

Examples::

    python -m repro --workload tpcc --scheduler strex --cores 4
    python -m repro --workload tpce --sweep --transactions 80
    python -m repro --workload tpcc --scheduler base --prefetcher pif
"""

from __future__ import annotations

import argparse
from typing import List

from repro.analysis.report import format_table
from repro.config import default_scale, paper_scale
from repro.sim.api import PREFETCHERS, SCHEDULERS, simulate
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

WORKLOADS = {
    "tpcc": lambda blocks, seed: TpccWorkload(blocks, warehouses=1,
                                              seed=seed),
    "tpcc10": lambda blocks, seed: TpccWorkload(blocks, warehouses=10,
                                                seed=seed),
    "tpce": lambda blocks, seed: TpceWorkload(blocks, seed=seed),
    "mapreduce": lambda blocks, seed: MapReduceWorkload(blocks,
                                                        seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STREX (ISCA 2013) reproduction: simulate OLTP "
                    "workloads under conventional, STREX, SLICC, or "
                    "hybrid scheduling.",
    )
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="tpcc")
    parser.add_argument("--scheduler", choices=sorted(SCHEDULERS),
                        default="strex")
    parser.add_argument("--prefetcher", choices=sorted(PREFETCHERS),
                        default="none")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--transactions", type=int, default=60)
    parser.add_argument("--team-size", type=int, default=None,
                        help="STREX team size override")
    parser.add_argument("--seed", type=int, default=1013)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the full Table 2 system "
                             "(32 KiB L1s) instead of the scaled one")
    parser.add_argument("--sweep", action="store_true",
                        help="sweep 2/4/8/16 cores over all schedulers")
    return parser


def _config(args, cores: int):
    factory = paper_scale if args.paper_scale else default_scale
    return factory(num_cores=cores)


def run_single(args) -> str:
    """One run; returns the printed report."""
    config = _config(args, args.cores)
    workload = WORKLOADS[args.workload](config.l1i_blocks, args.seed)
    traces = workload.generate_mix(args.transactions, seed=args.seed)
    base = simulate(config, traces, "base", workload.name)
    run = simulate(config, traces, args.scheduler, workload.name,
                   prefetcher=args.prefetcher,
                   team_size=args.team_size) \
        if (args.scheduler, args.prefetcher) != ("base", "none") else base
    rows = [
        ["workload", workload.name],
        ["scheduler", run.scheduler],
        ["cores", args.cores],
        ["transactions", run.transactions],
        ["instructions", run.instructions],
        ["I-MPKI", round(run.i_mpki, 2)],
        ["D-MPKI", round(run.d_mpki, 2)],
        ["throughput (txn/Mcyc)", round(run.throughput, 2)],
        ["vs baseline", f"x{run.relative_throughput(base):.3f}"],
    ]
    return format_table(["metric", "value"], rows)


def run_sweep(args) -> str:
    """Core sweep over all schedulers; returns the printed table."""
    rows: List[List[object]] = []
    for cores in (2, 4, 8, 16):
        config = _config(args, cores)
        workload = WORKLOADS[args.workload](config.l1i_blocks, args.seed)
        traces = workload.generate_mix(args.transactions,
                                       seed=args.seed)
        base = simulate(config, traces, "base", workload.name)
        row: List[object] = [cores, round(base.i_mpki, 2)]
        for scheduler in ("strex", "slicc", "hybrid"):
            run = simulate(config, traces, scheduler, workload.name)
            row.append(round(run.relative_throughput(base), 3))
        rows.append(row)
    return format_table(
        ["cores", "base I-MPKI", "strex", "slicc", "hybrid"], rows)


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    report = run_sweep(args) if args.sweep else run_single(args)
    print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
