"""Cache replacement policies (Section 5.7 of the paper).

Each policy manages the recency/re-reference state of one cache and is
driven by three events per set: a hit, an insertion, and the choice of a
victim.  Implemented policies:

* ``lru``    -- least-recently-used.
* ``fifo``   -- insertion order.
* ``random`` -- uniform random victim.
* ``lip``    -- LRU Insertion Policy (Qureshi et al., ISCA'07): insert at
  the LRU position, promote to MRU on hit.
* ``bip``    -- Bimodal Insertion Policy: LIP, but insert at MRU with a
  small probability epsilon.
* ``dip``    -- Dynamic Insertion Policy: set-duels LRU against BIP.
* ``srrip``  -- Static Re-Reference Interval Prediction (Jaleel et al.,
  ISCA'10) with 2-bit RRPVs, hit-priority promotion.
* ``brrip``  -- Bimodal RRIP: inserts with distant RRPV most of the time.

State is kept in one flat array of ``num_sets * assoc`` *slots* (slot =
``set_index * assoc + way``), and the hot interface is slot-based:
:meth:`~ReplacementPolicy.hit_slot`, :meth:`~ReplacementPolicy.insert_slot`
and :meth:`~ReplacementPolicy.victim_slot`.  Recency policies encode the
stack order as monotonic *age* stamps -- a hit or insertion is a single
array store plus a counter bump (O(1)), and only a victim choice scans
the set (O(assoc), paid once per eviction instead of once per access).

The pre-optimization recency-stack implementations are retained as the
``Reference*`` family (selected by ``REPRO_SIM_REFERENCE=1`` through
:func:`make_policy`); the parity test suite runs both and asserts
bit-identical simulation results.  Both families consume the RNG at
exactly the same call sites, so stochastic policies (BIP/DIP/BRRIP)
stay bit-reproducible across paths.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.fastpath import reference_mode


class ReplacementPolicy:
    """Interface for per-set replacement state machines.

    Concrete policies implement the slot-based interface
    (``hit_slot``/``insert_slot``/``victim_slot``); the classic
    ``(set_index, way)`` methods are provided on top of it.  Reference
    implementations do the opposite: they override the classic methods
    and inherit the slot adapters from :class:`_SetWayAdapter`.

    Attributes:
        hit_mode: how the owning engine may inline the hit update --
            ``"age"`` (store ``_tick`` into :attr:`hit_array` and bump),
            ``"zero"`` (store 0 into :attr:`hit_array`), ``"none"``
            (hits do not touch policy state) or ``"call"`` (invoke
            :meth:`hit_slot`).
        hit_array: the flat per-slot array ``hit_mode`` refers to.
        insert_mode: how the owning cache may inline the fill update --
            ``"age_mru"`` (policies that always insert at MRU: store
            ``_tick`` into the age array and bump) or ``"call"``
            (invoke :meth:`insert_slot`).
    """

    name = "abstract"
    hit_mode = "call"
    insert_mode = "call"
    hit_array: Optional[List[int]] = None

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        self.num_sets = num_sets
        self.assoc = assoc
        self.rng = rng

    # -- slot interface (hot path) -------------------------------------
    def hit_slot(self, slot: int) -> None:
        """The block in ``slot`` was re-referenced."""
        raise NotImplementedError

    def insert_slot(self, slot: int) -> None:
        """A new block was filled into ``slot``."""
        raise NotImplementedError

    def victim_slot(self, set_index: int) -> int:
        """Choose the slot to evict from a full set."""
        raise NotImplementedError

    # -- classic (set, way) interface ----------------------------------
    def on_hit(self, set_index: int, way: int) -> None:
        """A block in ``way`` of ``set_index`` was re-referenced."""
        self.hit_slot(set_index * self.assoc + way)

    def on_insert(self, set_index: int, way: int) -> None:
        """A new block was filled into ``way`` of ``set_index``."""
        self.insert_slot(set_index * self.assoc + way)

    def victim_way(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        return self.victim_slot(set_index) - set_index * self.assoc

    def on_miss(self, set_index: int) -> None:
        """A demand miss occurred in ``set_index`` (used by set dueling)."""


class _StackPolicy(ReplacementPolicy):
    """Shared machinery for recency policies (LRU/FIFO/LIP/BIP/DIP).

    The conceptual model is still a per-set stack ordered MRU-first,
    but the order is materialized as monotonic age stamps: larger age =
    closer to MRU.  Every operation either moves a slot to the very top
    (stamp from the increasing ``_tick``) or the very bottom (stamp from
    the decreasing ``_low``), which preserves the relative order of all
    other slots -- exactly what ``list.insert(0, ...)`` /
    ``list.append(...)`` did in the reference stacks.  Stamps are never
    reused, so ties are impossible.

    The initial ages ``assoc-1 .. 0`` across ways ``0 .. assoc-1``
    reproduce the reference's seed stack ``[0, 1, ..., assoc-1]``
    (victim = last element = way ``assoc-1``).
    """

    promote_on_hit = True
    #: True for policies whose _insert_position is the constant 0
    #: (LRU/FIFO); lets the owning cache inline the insert.
    always_mru_insert = False

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        ages: List[int] = []
        for _ in range(num_sets):
            ages.extend(range(assoc - 1, -1, -1))
        self._ages = ages
        self._tick = assoc   # next MRU stamp (above all initial ages)
        self._low = -1       # next LRU stamp (below all initial ages)
        self.hit_mode = "age" if self.promote_on_hit else "none"
        self.hit_array = ages
        if self.always_mru_insert:
            self.insert_mode = "age_mru"

    def hit_slot(self, slot: int) -> None:
        if self.promote_on_hit:
            self._ages[slot] = self._tick
            self._tick += 1

    def _insert_position(self, set_index: int) -> int:
        """0 for an MRU insertion, ``assoc - 1`` for an LRU one."""
        raise NotImplementedError

    def insert_slot(self, slot: int) -> None:
        if self._insert_position(slot // self.assoc) == 0:
            self._ages[slot] = self._tick
            self._tick += 1
        else:
            self._ages[slot] = self._low
            self._low -= 1

    def victim_slot(self, set_index: int) -> int:
        # Slice + min + index run in C; ages are unique so min is
        # unambiguous.  O(assoc), but paid once per eviction instead
        # of the O(assoc) the reference stacks paid per access.
        base = set_index * self.assoc
        segment = self._ages[base:base + self.assoc]
        return base + segment.index(min(segment))


class LruPolicy(_StackPolicy):
    """Classic LRU: insert at MRU, promote on hit, evict LRU."""

    name = "lru"
    always_mru_insert = True

    def _insert_position(self, set_index: int) -> int:
        return 0


class FifoPolicy(_StackPolicy):
    """FIFO: insert at MRU but never promote, so eviction is by age."""

    name = "fifo"
    promote_on_hit = False
    always_mru_insert = True

    def _insert_position(self, set_index: int) -> int:
        return 0


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection."""

    name = "random"
    hit_mode = "none"

    def hit_slot(self, slot: int) -> None:
        pass

    def insert_slot(self, slot: int) -> None:
        pass

    def victim_slot(self, set_index: int) -> int:
        return set_index * self.assoc + self.rng.randrange(self.assoc)


class LipPolicy(_StackPolicy):
    """LRU Insertion Policy: new blocks land at the LRU position.

    Streaming blocks are evicted before they can displace the resident
    working set; a block is only retained if it is re-referenced.
    """

    name = "lip"

    def _insert_position(self, set_index: int) -> int:
        return self.assoc - 1


class BipPolicy(_StackPolicy):
    """Bimodal Insertion Policy: LIP with occasional MRU insertion."""

    name = "bip"
    epsilon = 1.0 / 32.0

    def _insert_position(self, set_index: int) -> int:
        if self.rng.random() < self.epsilon:
            return 0
        return self.assoc - 1


class DipPolicy(_StackPolicy):
    """Dynamic Insertion Policy: set-duels LRU vs BIP.

    A few leader sets always use LRU, a few always use BIP; a saturating
    PSEL counter tracks which leader group misses less and follower sets
    use the winner's insertion position.
    """

    name = "dip"
    psel_bits = 10
    leader_period = 32  # one LRU leader and one BIP leader per period

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self._psel = (1 << self.psel_bits) // 2
        self._psel_max = (1 << self.psel_bits) - 1

    def _set_role(self, set_index: int) -> str:
        phase = set_index % self.leader_period
        if phase == 0:
            return "lru_leader"
        if phase == self.leader_period // 2:
            return "bip_leader"
        return "follower"

    def on_miss(self, set_index: int) -> None:
        role = self._set_role(set_index)
        if role == "lru_leader" and self._psel < self._psel_max:
            self._psel += 1
        elif role == "bip_leader" and self._psel > 0:
            self._psel -= 1

    def _bip_position(self) -> int:
        if self.rng.random() < BipPolicy.epsilon:
            return 0
        return self.assoc - 1

    def _insert_position(self, set_index: int) -> int:
        role = self._set_role(set_index)
        if role == "lru_leader":
            return 0
        if role == "bip_leader":
            return self._bip_position()
        # Follower sets: PSEL high means BIP leaders missed less.
        if self._psel > self._psel_max // 2:
            return self._bip_position()
        return 0


class SrripPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values.

    Blocks are inserted with a *long* re-reference prediction (RRPV =
    max-1), promoted to *near-immediate* (0) on hit, and the victim is any
    block predicted *distant* (RRPV = max), aging the whole set until one
    appears.  RRPVs live in one flat per-slot array.
    """

    name = "srrip"
    rrpv_bits = 2
    hit_mode = "zero"

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self.rrpv_max = (1 << self.rrpv_bits) - 1
        # All ways start "distant" so cold fills pick way 0 first.
        self._rrpv: List[int] = [self.rrpv_max] * (num_sets * assoc)
        self.hit_array = self._rrpv

    def hit_slot(self, slot: int) -> None:
        self._rrpv[slot] = 0

    def _insert_rrpv(self) -> int:
        return self.rrpv_max - 1

    def insert_slot(self, slot: int) -> None:
        self._rrpv[slot] = self._insert_rrpv()

    def victim_slot(self, set_index: int) -> int:
        base = set_index * self.assoc
        rrpv = self._rrpv
        distant = self.rrpv_max
        while True:
            for slot in range(base, base + self.assoc):
                if rrpv[slot] == distant:
                    return slot
            for slot in range(base, base + self.assoc):
                rrpv[slot] += 1


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: insert distant most of the time, long occasionally.

    Designed for streaming/thrashing access patterns such as OLTP
    instruction fetch (this is why the paper's Fig. 9 shows BRRIP as the
    best standalone policy for the baseline).
    """

    name = "brrip"
    epsilon = 1.0 / 32.0

    def _insert_rrpv(self) -> int:
        if self.rng.random() < self.epsilon:
            return self.rrpv_max - 1
        return self.rrpv_max


# ----------------------------------------------------------------------
# Reference implementations (pre-optimization structures)
# ----------------------------------------------------------------------
class _SetWayAdapter(ReplacementPolicy):
    """Slot interface expressed via the classic (set, way) methods."""

    def hit_slot(self, slot: int) -> None:
        self.on_hit(slot // self.assoc, slot % self.assoc)

    def insert_slot(self, slot: int) -> None:
        self.on_insert(slot // self.assoc, slot % self.assoc)

    def victim_slot(self, set_index: int) -> int:
        return set_index * self.assoc + self.victim_way(set_index)


class _ReferenceStackPolicy(_SetWayAdapter):
    """Recency stacks as per-set Python lists, ordered MRU-first.

    This is the original O(assoc)-per-access implementation the age
    stamps replaced; it remains the ground truth for the parity suite.
    """

    promote_on_hit = True

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self._stacks: List[List[int]] = [
            list(range(assoc)) for _ in range(num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        if self.promote_on_hit:
            stack = self._stacks[set_index]
            stack.remove(way)
            stack.insert(0, way)

    def _insert_position(self, set_index: int) -> int:
        raise NotImplementedError

    def on_insert(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(self._insert_position(set_index), way)

    def victim_way(self, set_index: int) -> int:
        return self._stacks[set_index][-1]


class ReferenceLruPolicy(_ReferenceStackPolicy):
    name = "lru"

    def _insert_position(self, set_index: int) -> int:
        return 0


class ReferenceFifoPolicy(_ReferenceStackPolicy):
    name = "fifo"
    promote_on_hit = False

    def _insert_position(self, set_index: int) -> int:
        return 0


class ReferenceLipPolicy(_ReferenceStackPolicy):
    name = "lip"

    def _insert_position(self, set_index: int) -> int:
        return self.assoc - 1


class ReferenceBipPolicy(_ReferenceStackPolicy):
    name = "bip"
    epsilon = BipPolicy.epsilon

    def _insert_position(self, set_index: int) -> int:
        if self.rng.random() < self.epsilon:
            return 0
        return self.assoc - 1


class ReferenceDipPolicy(_ReferenceStackPolicy):
    name = "dip"
    psel_bits = DipPolicy.psel_bits
    leader_period = DipPolicy.leader_period

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self._psel = (1 << self.psel_bits) // 2
        self._psel_max = (1 << self.psel_bits) - 1

    _set_role = DipPolicy._set_role
    on_miss = DipPolicy.on_miss
    _bip_position = DipPolicy._bip_position
    _insert_position = DipPolicy._insert_position


class ReferenceSrripPolicy(_SetWayAdapter):
    """SRRIP over per-set RRPV lists (the original nested layout)."""

    name = "srrip"
    rrpv_bits = SrripPolicy.rrpv_bits

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self.rrpv_max = (1 << self.rrpv_bits) - 1
        self._rrpv: List[List[int]] = [
            [self.rrpv_max] * assoc for _ in range(num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def _insert_rrpv(self) -> int:
        return self.rrpv_max - 1

    def on_insert(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self._insert_rrpv()

    def victim_way(self, set_index: int) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for way, value in enumerate(rrpvs):
                if value == self.rrpv_max:
                    return way
            for way in range(self.assoc):
                rrpvs[way] += 1


class ReferenceBrripPolicy(ReferenceSrripPolicy):
    name = "brrip"
    epsilon = BrripPolicy.epsilon

    def _insert_rrpv(self) -> int:
        if self.rng.random() < self.epsilon:
            return self.rrpv_max - 1
        return self.rrpv_max


PolicyFactory = Callable[[int, int, random.Random], ReplacementPolicy]

_POLICIES: Dict[str, PolicyFactory]
_POLICIES = {
    cls.name: cls
    for cls in (
        LruPolicy,
        FifoPolicy,
        RandomPolicy,
        LipPolicy,
        BipPolicy,
        DipPolicy,
        SrripPolicy,
        BrripPolicy,
    )
}

_REFERENCE_POLICIES: Dict[str, PolicyFactory]
_REFERENCE_POLICIES = {
    cls.name: cls
    for cls in (
        ReferenceLruPolicy,
        ReferenceFifoPolicy,
        RandomPolicy,  # stateless: shared by both paths
        ReferenceLipPolicy,
        ReferenceBipPolicy,
        ReferenceDipPolicy,
        ReferenceSrripPolicy,
        ReferenceBrripPolicy,
    )
}


def policy_names() -> List[str]:
    """Names of all registered replacement policies."""
    return sorted(_POLICIES)


def make_policy(
    name: str,
    num_sets: int,
    assoc: int,
    rng: random.Random,
    reference: Optional[bool] = None,
) -> ReplacementPolicy:
    """Instantiate a registered replacement policy by name.

    ``reference`` picks the implementation family; ``None`` (the
    default) follows :func:`repro.fastpath.reference_mode`.
    """
    if reference is None:
        reference = reference_mode()
    registry = _REFERENCE_POLICIES if reference else _POLICIES
    try:
        factory = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {policy_names()}"
        ) from None
    return factory(num_sets, assoc, rng)
