"""Cache replacement policies (Section 5.7 of the paper).

Each policy manages the recency/re-reference state of one cache and is
driven by three events per set: a hit, an insertion, and the choice of a
victim.  Implemented policies:

* ``lru``    -- least-recently-used.
* ``fifo``   -- insertion order.
* ``random`` -- uniform random victim.
* ``lip``    -- LRU Insertion Policy (Qureshi et al., ISCA'07): insert at
  the LRU position, promote to MRU on hit.
* ``bip``    -- Bimodal Insertion Policy: LIP, but insert at MRU with a
  small probability epsilon.
* ``dip``    -- Dynamic Insertion Policy: set-duels LRU against BIP.
* ``srrip``  -- Static Re-Reference Interval Prediction (Jaleel et al.,
  ISCA'10) with 2-bit RRPVs, hit-priority promotion.
* ``brrip``  -- Bimodal RRIP: inserts with distant RRPV most of the time.

Policies keep per-set state indexed by *way*.  The owning cache tells the
policy how many sets/ways it has at construction time.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List


class ReplacementPolicy:
    """Interface for per-set replacement state machines."""

    name = "abstract"

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        self.num_sets = num_sets
        self.assoc = assoc
        self.rng = rng

    def on_hit(self, set_index: int, way: int) -> None:
        """A block in ``way`` of ``set_index`` was re-referenced."""
        raise NotImplementedError

    def on_insert(self, set_index: int, way: int) -> None:
        """A new block was filled into ``way`` of ``set_index``."""
        raise NotImplementedError

    def victim_way(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        raise NotImplementedError

    def on_miss(self, set_index: int) -> None:
        """A demand miss occurred in ``set_index`` (used by set dueling)."""


class _StackPolicy(ReplacementPolicy):
    """Shared machinery for recency-stack policies (LRU/FIFO/LIP/BIP).

    Each set keeps a list of ways ordered MRU-first.  Subclasses decide
    where insertions land and whether hits promote.
    """

    promote_on_hit = True

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self._stacks: List[List[int]] = [
            list(range(assoc)) for _ in range(num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        if self.promote_on_hit:
            stack = self._stacks[set_index]
            stack.remove(way)
            stack.insert(0, way)

    def _insert_position(self, set_index: int) -> int:
        raise NotImplementedError

    def on_insert(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(self._insert_position(set_index), way)

    def victim_way(self, set_index: int) -> int:
        return self._stacks[set_index][-1]


class LruPolicy(_StackPolicy):
    """Classic LRU: insert at MRU, promote on hit, evict LRU."""

    name = "lru"

    def _insert_position(self, set_index: int) -> int:
        return 0


class FifoPolicy(_StackPolicy):
    """FIFO: insert at MRU but never promote, so eviction is by age."""

    name = "fifo"
    promote_on_hit = False

    def _insert_position(self, set_index: int) -> int:
        return 0


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection."""

    name = "random"

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_insert(self, set_index: int, way: int) -> None:
        pass

    def victim_way(self, set_index: int) -> int:
        return self.rng.randrange(self.assoc)


class LipPolicy(_StackPolicy):
    """LRU Insertion Policy: new blocks land at the LRU position.

    Streaming blocks are evicted before they can displace the resident
    working set; a block is only retained if it is re-referenced.
    """

    name = "lip"

    def _insert_position(self, set_index: int) -> int:
        return self.assoc - 1


class BipPolicy(_StackPolicy):
    """Bimodal Insertion Policy: LIP with occasional MRU insertion."""

    name = "bip"
    epsilon = 1.0 / 32.0

    def _insert_position(self, set_index: int) -> int:
        if self.rng.random() < self.epsilon:
            return 0
        return self.assoc - 1


class DipPolicy(_StackPolicy):
    """Dynamic Insertion Policy: set-duels LRU vs BIP.

    A few leader sets always use LRU, a few always use BIP; a saturating
    PSEL counter tracks which leader group misses less and follower sets
    use the winner's insertion position.
    """

    name = "dip"
    psel_bits = 10
    leader_period = 32  # one LRU leader and one BIP leader per period

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self._psel = (1 << self.psel_bits) // 2
        self._psel_max = (1 << self.psel_bits) - 1

    def _set_role(self, set_index: int) -> str:
        phase = set_index % self.leader_period
        if phase == 0:
            return "lru_leader"
        if phase == self.leader_period // 2:
            return "bip_leader"
        return "follower"

    def on_miss(self, set_index: int) -> None:
        role = self._set_role(set_index)
        if role == "lru_leader" and self._psel < self._psel_max:
            self._psel += 1
        elif role == "bip_leader" and self._psel > 0:
            self._psel -= 1

    def _bip_position(self) -> int:
        if self.rng.random() < BipPolicy.epsilon:
            return 0
        return self.assoc - 1

    def _insert_position(self, set_index: int) -> int:
        role = self._set_role(set_index)
        if role == "lru_leader":
            return 0
        if role == "bip_leader":
            return self._bip_position()
        # Follower sets: PSEL high means BIP leaders missed less.
        if self._psel > self._psel_max // 2:
            return self._bip_position()
        return 0


class SrripPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values.

    Blocks are inserted with a *long* re-reference prediction (RRPV =
    max-1), promoted to *near-immediate* (0) on hit, and the victim is any
    block predicted *distant* (RRPV = max), aging the whole set until one
    appears.
    """

    name = "srrip"
    rrpv_bits = 2

    def __init__(self, num_sets: int, assoc: int, rng: random.Random):
        super().__init__(num_sets, assoc, rng)
        self.rrpv_max = (1 << self.rrpv_bits) - 1
        # All ways start "distant" so cold fills pick way 0 first.
        self._rrpv: List[List[int]] = [
            [self.rrpv_max] * assoc for _ in range(num_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def _insert_rrpv(self) -> int:
        return self.rrpv_max - 1

    def on_insert(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self._insert_rrpv()

    def victim_way(self, set_index: int) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for way, value in enumerate(rrpvs):
                if value == self.rrpv_max:
                    return way
            for way in range(self.assoc):
                rrpvs[way] += 1


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: insert distant most of the time, long occasionally.

    Designed for streaming/thrashing access patterns such as OLTP
    instruction fetch (this is why the paper's Fig. 9 shows BRRIP as the
    best standalone policy for the baseline).
    """

    name = "brrip"
    epsilon = 1.0 / 32.0

    def _insert_rrpv(self) -> int:
        if self.rng.random() < self.epsilon:
            return self.rrpv_max - 1
        return self.rrpv_max


_POLICIES: Dict[str, Callable[[int, int, random.Random], ReplacementPolicy]]
_POLICIES = {
    cls.name: cls
    for cls in (
        LruPolicy,
        FifoPolicy,
        RandomPolicy,
        LipPolicy,
        BipPolicy,
        DipPolicy,
        SrripPolicy,
        BrripPolicy,
    )
}


def policy_names() -> List[str]:
    """Names of all registered replacement policies."""
    return sorted(_POLICIES)


def make_policy(
    name: str, num_sets: int, assoc: int, rng: random.Random
) -> ReplacementPolicy:
    """Instantiate a registered replacement policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {policy_names()}"
        ) from None
    return factory(num_sets, assoc, rng)
