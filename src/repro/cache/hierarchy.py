"""Per-core L1s, shared NUCA L2 and MESI-lite coherence.

This is the memory system of the simulated CMP (Table 2): private 32 KiB
L1-I and L1-D per core, a shared NUCA L2 with one slice per core reached
over a 2D torus, and DDR3-lite DRAM behind the L2.

Latency accounting (DESIGN.md, decision 4):

* L1 hit: ``l1.hit_latency``.
* L1 miss, L2 hit: round trip over the torus to the block's home slice
  plus the L2 hit latency.
* L2 miss: additionally the DRAM latency.
* Dirty-remote data: the round trip to the home slice plus a forward hop
  to the owning core's L1-D.

Coherence is a MESI-lite directory over L1-D contents: reads register
sharers, writes invalidate all other sharers.  A subsequent miss on a
block this core lost to an invalidation is classified as a *coherence
miss* -- the quantity that grows with core count in the paper's Fig. 5
baseline and that STREX reduces by stratifying same-type transactions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.cache.cache import Cache, VictimCallback, make_cache
from repro.config import SystemConfig
from repro.fastpath import reference_mode
from repro.mem.dram import DramModel
from repro.noc.torus import TorusNetwork
from repro.prefetch.base import InstructionPrefetcher, NoPrefetcher


class CoherenceState:
    """Directory entry for one data block."""

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None  # core holding it dirty


class MemoryHierarchy:
    """The full cache/memory system shared by all scheduler variants."""

    def __init__(
        self,
        config: SystemConfig,
        prefetcher: Optional[InstructionPrefetcher] = None,
    ):
        self.config = config
        n = config.num_cores
        rng = random.Random(config.seed)
        self.l1i: List[Cache] = [
            make_cache(config.l1i,
                       rng=random.Random(rng.randrange(2**31)),
                       name=f"l1i{c}")
            for c in range(n)
        ]
        self.l1d: List[Cache] = [
            make_cache(config.l1d,
                       rng=random.Random(rng.randrange(2**31)),
                       name=f"l1d{c}")
            for c in range(n)
        ]
        self.l2: List[Cache] = [
            make_cache(config.l2_slice,
                       rng=random.Random(rng.randrange(2**31)),
                       name=f"l2s{c}")
            for c in range(n)
        ]
        self.noc = TorusNetwork(n, config.noc)
        self.dram = DramModel(config.memory)
        self.prefetcher = prefetcher or NoPrefetcher(n)
        self._directory: Dict[int, CoherenceState] = {}
        self._lost_to_invalidation: List[Set[int]] = [set() for _ in range(n)]
        self.coherence_misses = [0] * n
        self.l2_demand_traffic = 0
        self._num_cores = n
        self._l2_hit_latency = config.l2_slice.hit_latency
        # Full L2 round trip from each core to each slice (torus there
        # and back plus the slice's hit latency) as one table lookup.
        self._l2_roundtrip = [
            [2 * self.noc._latency[c][s] + self._l2_hit_latency
             for s in range(n)]
            for c in range(n)
        ]
        if not reference_mode():
            # Flat-layout caches admit an inlined L2 access; rebinding
            # the instance attribute routes every caller (engine loops
            # and access_data alike) through one implementation.
            self._l2_access = self._l2_access_fast

    # ------------------------------------------------------------------
    # L2 + DRAM
    # ------------------------------------------------------------------
    def home_slice(self, block: int) -> int:
        """NUCA home slice of a block (static block interleaving)."""
        return block % self.config.num_cores

    def _l2_access(self, core: int, block: int) -> int:
        """Access the block's home L2 slice; fills from DRAM on miss."""
        self.l2_demand_traffic += 1
        slice_id = self.home_slice(block)
        slice_cache = self.l2[slice_id]
        latency = 2 * self.noc.latency(core, slice_id)
        latency += slice_cache.config.hit_latency
        if not slice_cache.access(block):
            latency += self.dram.access(block)
        return latency

    def _l2_access_fast(self, core: int, block: int) -> int:
        """:meth:`_l2_access` with the access machinery inlined.

        Installed over ``_l2_access`` at construction on the fast path
        (flat cache layout required); side effects, counters, and the
        returned latency are identical to the reference body.
        """
        self.l2_demand_traffic += 1
        slice_id = block % self._num_cores
        noc = self.noc
        noc.messages += 1
        noc.total_hops += noc._hops[core][slice_id]
        latency = self._l2_roundtrip[core][slice_id]
        slice_cache = self.l2[slice_id]
        slot = slice_cache._where.get(block)
        if slot is not None:
            slice_cache.stats.hits += 1
            policy = slice_cache.policy
            mode = policy.hit_mode
            if mode == "age":
                policy._ages[slot] = policy._tick
                policy._tick += 1
            elif mode == "zero":
                policy.hit_array[slot] = 0
            elif mode == "call":
                policy.hit_slot(slot)
            slice_cache._slot_tags[slot] = 0
            return latency
        slice_cache.miss_fill(
            block, 0, slice_cache.set_index(block))
        return latency + self.dram.access(block)

    # ------------------------------------------------------------------
    # Instruction path
    # ------------------------------------------------------------------
    def fetch_instruction(self, core: int, block: int, tag: int = 0) -> int:
        """Demand instruction fetch; returns latency in cycles.

        The L1-I block is tagged with ``tag`` (the STREX phaseID) on every
        touch.  On a miss the configured prefetcher may hide the L2 round
        trip, but the L2 demand traffic is charged either way.
        """
        l1i = self.l1i[core]
        hit = l1i.access(block, tag)
        if hit:
            self.prefetcher.on_fetch(core, block, True)
            return l1i.config.hit_latency
        covered = self.prefetcher.covers(core, block)
        self.prefetcher.record(covered)
        self.prefetcher.on_fetch(core, block, False)
        l2_latency = self._l2_access(core, block)
        if covered:
            # Covered misses still pay a contention fraction of the L2
            # round trip (the paper's partial PIF contention model).
            fraction = self.config.core.covered_stall_fraction
            return l1i.config.hit_latency + int(l2_latency * fraction)
        return l1i.config.hit_latency + l2_latency

    # ------------------------------------------------------------------
    # Data path (MESI-lite)
    # ------------------------------------------------------------------
    def access_data(self, core: int, block: int, write: bool) -> int:
        """Demand data access; returns latency in cycles."""
        l1d = self.l1d[core]
        entry = self._directory.get(block)
        hit = l1d.access(block)
        latency = l1d.config.hit_latency
        if not hit:
            if block in self._lost_to_invalidation[core]:
                self._lost_to_invalidation[core].discard(block)
                self.coherence_misses[core] += 1
            latency += self._l2_access(core, block)
            if entry is not None and entry.owner is not None \
                    and entry.owner != core:
                # Dirty in a remote L1-D: forward from the owner.
                latency += self.noc.latency(self.home_slice(block),
                                            entry.owner)
        if entry is None:
            entry = CoherenceState()
            self._directory[block] = entry
        if write:
            for sharer in entry.sharers:
                if sharer != core:
                    if self.l1d[sharer].invalidate(block):
                        self._lost_to_invalidation[sharer].add(block)
            entry.sharers = {core}
            entry.owner = core
        else:
            if entry.owner is not None and entry.owner != core:
                entry.owner = None  # downgrade M -> S
            entry.sharers.add(core)
        return latency

    # ------------------------------------------------------------------
    # Stats helpers
    # ------------------------------------------------------------------
    def instruction_misses(self) -> int:
        """Total L1-I demand misses across cores."""
        return sum(c.stats.misses for c in self.l1i)

    def data_misses(self) -> int:
        """Total L1-D demand misses across cores."""
        return sum(c.stats.misses for c in self.l1d)

    def set_victim_callback(self, core: int,
                            callback: Optional[VictimCallback]) -> None:
        """Install the STREX victim-monitoring hook on one core's L1-I."""
        self.l1i[core].victim_callback = callback

    def snapshot(self) -> Dict[str, object]:
        """Aggregate counters for reports."""
        return {
            "l1i_misses": self.instruction_misses(),
            "l1d_misses": self.data_misses(),
            "l2_traffic": self.l2_demand_traffic,
            "coherence_misses": sum(self.coherence_misses),
            "dram": self.dram.snapshot(),
            "noc_mean_hops": self.noc.mean_hops,
        }
