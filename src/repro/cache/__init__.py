"""Cache models: set-associative caches, replacement policies, and
the full CMP memory hierarchy with MESI-lite coherence."""

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import MemoryHierarchy
from repro.cache.replacement import make_policy, policy_names

__all__ = ["Cache", "CacheStats", "MemoryHierarchy", "make_policy",
           "policy_names"]
