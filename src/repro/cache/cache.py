"""Set-associative cache model.

The cache works at block granularity: callers pass *block numbers*
(``address >> BLOCK_SHIFT``).  It supports:

* pluggable replacement policies (see :mod:`repro.cache.replacement`);
* a *victim callback* fired before any eviction -- this is the observation
  point STREX uses to detect end-of-phase (Section 4.2, step 3);
* per-block metadata tags, used as the auxiliary phaseID table (PIDT,
  Section 4.3) and by the FPTable profiler (Section 5.5);
* hit/miss/eviction statistics and MPKI accounting.

The model is a pure presence/replacement simulator: latency is charged by
the owning hierarchy/core model, not here.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional

from repro.config import CacheConfig
from repro.cache.replacement import ReplacementPolicy, make_policy

VictimCallback = Callable[[int, int], None]
"""Called as ``callback(block, tag_value)`` just before ``block`` is
evicted; ``tag_value`` is the block's metadata tag (phaseID)."""


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses, or 0.0 if the cache was never accessed."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction relative to ``instructions``."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def snapshot(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class Cache:
    """A set-associative, block-granularity cache.

    Args:
        config: geometry and replacement policy.
        rng: RNG used by stochastic replacement policies.
        victim_callback: invoked before each eviction with
            ``(block, tag)``; may be replaced at runtime via
            :attr:`victim_callback`.
        name: label used in reports.
    """

    def __init__(
        self,
        config: CacheConfig,
        rng: Optional[random.Random] = None,
        victim_callback: Optional[VictimCallback] = None,
        name: str = "cache",
    ):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._set_mask = self.num_sets - 1
        self._power_of_two = self.num_sets & (self.num_sets - 1) == 0
        rng = rng if rng is not None else random.Random(0)
        self.policy: ReplacementPolicy = make_policy(
            config.replacement, self.num_sets, self.assoc, rng
        )
        self.victim_callback = victim_callback
        self.stats = CacheStats()
        # Per-set mapping of resident block -> way, plus per-way arrays of
        # the resident block (or None) and its metadata tag.
        self._lookup: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self._blocks: List[List[Optional[int]]] = [
            [None] * self.assoc for _ in range(self.num_sets)
        ]
        self._tags: List[List[int]] = [
            [0] * self.assoc for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        """Map a block number to its set."""
        if self._power_of_two:
            return block & self._set_mask
        return block % self.num_sets

    # ------------------------------------------------------------------
    # Presence queries (no statistics side effects)
    # ------------------------------------------------------------------
    def contains(self, block: int) -> bool:
        """True if ``block`` is resident.  Does not touch stats or LRU."""
        return block in self._lookup[self.set_index(block)]

    def tag_of(self, block: int) -> Optional[int]:
        """Metadata tag of a resident block, or None if absent."""
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is None:
            return None
        return self._tags[set_index][way]

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over all resident block numbers."""
        for mapping in self._lookup:
            yield from mapping

    @property
    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(mapping) for mapping in self._lookup)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, block: int, tag: int = 0) -> bool:
        """Demand access to ``block``; fills on miss.

        The block's metadata tag is set to ``tag`` whether the access hit
        or missed (STREX tags blocks with the current phaseID on every
        touch -- Section 4.2, step 2).

        Returns:
            True on hit, False on miss.
        """
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_index, way)
            self._tags[set_index][way] = tag
            return True
        self.stats.misses += 1
        self.policy.on_miss(set_index)
        self._fill(set_index, block, tag)
        return False

    def probe(self, block: int) -> bool:
        """Like :meth:`access` but never fills; still counts stats and
        updates recency on hit.  Used by the idealized PIF model, where
        the L1-I never stalls but would-miss traffic is tracked."""
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_index, way)
            return True
        self.stats.misses += 1
        self.policy.on_miss(set_index)
        return False

    def fill(self, block: int, tag: int = 0) -> None:
        """Install ``block`` without a demand access (prefetch fill)."""
        set_index = self.set_index(block)
        if block in self._lookup[set_index]:
            return
        self._fill(set_index, block, tag)

    def _fill(self, set_index: int, block: int, tag: int) -> None:
        mapping = self._lookup[set_index]
        blocks = self._blocks[set_index]
        if len(mapping) < self.assoc:
            way = blocks.index(None)
        else:
            way = self.policy.victim_way(set_index)
            victim = blocks[way]
            assert victim is not None
            if self.victim_callback is not None:
                self.victim_callback(victim, self._tags[set_index][way])
            self.stats.evictions += 1
            del mapping[victim]
        blocks[way] = block
        self._tags[set_index][way] = tag
        mapping[block] = way
        self.policy.on_insert(set_index, way)

    def set_tag(self, block: int, tag: int) -> bool:
        """Overwrite the metadata tag of a resident block.

        Returns True if the block was resident."""
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is None:
            return False
        self._tags[set_index][way] = tag
        return True

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` (coherence invalidation).  No victim callback
        is fired: an invalidation is not a capacity eviction.

        Returns True if the block was resident."""
        set_index = self.set_index(block)
        way = self._lookup[set_index].pop(block, None)
        if way is None:
            return False
        self._blocks[set_index][way] = None
        self.stats.invalidations += 1
        return True

    def reset_tags(self, tag: int = 0) -> None:
        """Set every resident block's metadata tag to ``tag`` (used when
        the FPTable profiler resets all phaseID tables -- Section 5.5)."""
        for set_index, mapping in enumerate(self._lookup):
            tags = self._tags[set_index]
            for way in mapping.values():
                tags[way] = tag

    def flush(self) -> None:
        """Empty the cache without firing victim callbacks."""
        for set_index in range(self.num_sets):
            self._lookup[set_index].clear()
            self._blocks[set_index] = [None] * self.assoc
