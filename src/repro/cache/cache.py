"""Set-associative cache model.

The cache works at block granularity: callers pass *block numbers*
(``address >> BLOCK_SHIFT``).  It supports:

* pluggable replacement policies (see :mod:`repro.cache.replacement`);
* a *victim callback* fired before any eviction -- this is the observation
  point STREX uses to detect end-of-phase (Section 4.2, step 3);
* per-block metadata tags, used as the auxiliary phaseID table (PIDT,
  Section 4.3) and by the FPTable profiler (Section 5.5);
* hit/miss/eviction statistics and MPKI accounting.

The model is a pure presence/replacement simulator: latency is charged by
the owning hierarchy/core model, not here.

Storage layout (the fast path): one global ``{block -> slot}`` dict plus
flat per-slot block/tag arrays, where ``slot = set_index * assoc + way``.
An access is a single dict probe instead of a set-index computation plus
a per-set dict probe, and fills index flat arrays.  The original
per-set-dict layout survives as :class:`ReferenceCache`;
:func:`make_cache` picks the implementation from
:func:`repro.fastpath.reference_mode`, and the parity tests assert both
produce bit-identical simulations.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional

from repro.config import CacheConfig
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.fastpath import reference_mode

VictimCallback = Callable[[int, int], None]
"""Called as ``callback(block, tag_value)`` just before ``block`` is
evicted; ``tag_value`` is the block's metadata tag (phaseID)."""


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses, or 0.0 if the cache was never accessed."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction relative to ``instructions``."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def snapshot(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class Cache:
    """A set-associative, block-granularity cache (flat-slot layout).

    Args:
        config: geometry and replacement policy.
        rng: RNG used by stochastic replacement policies.
        victim_callback: invoked before each eviction with
            ``(block, tag)``; may be replaced at runtime via
            :attr:`victim_callback`.
        name: label used in reports.
    """

    #: Which replacement-policy family the cache pairs with.
    _reference = False

    def __init__(
        self,
        config: CacheConfig,
        rng: Optional[random.Random] = None,
        victim_callback: Optional[VictimCallback] = None,
        name: str = "cache",
    ):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._set_mask = self.num_sets - 1
        self._power_of_two = self.num_sets & (self.num_sets - 1) == 0
        rng = rng if rng is not None else random.Random(0)
        self.policy: ReplacementPolicy = make_policy(
            config.replacement, self.num_sets, self.assoc, rng,
            reference=self._reference,
        )
        self.victim_callback = victim_callback
        self.stats = CacheStats()
        #: Monotonic mutation counter: every state change through the
        #: public API (fills, hits' tag/recency updates, invalidations,
        #: flushes, tag rewrites) bumps it.  The batch replay layer
        #: (repro.sim.batch) uses it as a conservative residency
        #: signature -- a memoized hit-run delta or recorded slice is
        #: only replayed when the version it was keyed on still holds.
        #: The engine's inlined loops bump it in bulk (once per fill)
        #: at loop exit.
        self.version = 0
        # Hot-path dispatch hints: whether on_miss is a real override
        # (only set-dueling policies implement it) and whether inserts
        # can be inlined as an MRU age stamp.
        self._policy_has_on_miss = (
            type(self.policy).on_miss is not ReplacementPolicy.on_miss
        )
        self._init_storage()

    def _init_storage(self) -> None:
        # block -> slot for all residents, plus flat per-slot arrays of
        # the resident block (or None), its metadata tag, and a per-set
        # occupancy count (fast "is the set full yet" checks).
        num_slots = self.num_sets * self.assoc
        self._where: Dict[int, int] = {}
        self._slot_blocks: List[Optional[int]] = [None] * num_slots
        self._slot_tags: List[int] = [0] * num_slots
        self._set_len: List[int] = [0] * self.num_sets

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        """Map a block number to its set."""
        if self._power_of_two:
            return block & self._set_mask
        return block % self.num_sets

    # ------------------------------------------------------------------
    # Presence queries (no statistics side effects)
    # ------------------------------------------------------------------
    def contains(self, block: int) -> bool:
        """True if ``block`` is resident.  Does not touch stats or LRU."""
        return block in self._where

    def tag_of(self, block: int) -> Optional[int]:
        """Metadata tag of a resident block, or None if absent."""
        slot = self._where.get(block)
        if slot is None:
            return None
        return self._slot_tags[slot]

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over all resident block numbers."""
        yield from self._where

    @property
    def occupancy(self) -> int:
        """Number of resident blocks."""
        return len(self._where)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, block: int, tag: int = 0) -> bool:
        """Demand access to ``block``; fills on miss.

        The block's metadata tag is set to ``tag`` whether the access hit
        or missed (STREX tags blocks with the current phaseID on every
        touch -- Section 4.2, step 2).

        Returns:
            True on hit, False on miss.
        """
        self.version += 1
        slot = self._where.get(block)
        if slot is not None:
            self.stats.hits += 1
            self.policy.hit_slot(slot)
            self._slot_tags[slot] = tag
            return True
        self.stats.misses += 1
        set_index = self.set_index(block)
        if self._policy_has_on_miss:
            self.policy.on_miss(set_index)
        self._fill(set_index, block, tag)
        return False

    def miss_fill(self, block: int, tag: int, set_index: int) -> None:
        """Demand-miss bookkeeping with a precomputed set index.

        The engine's inlined hit path already established the block is
        absent; this charges the miss and fills, skipping the redundant
        probe and set-index computation of :meth:`access`.  The body is
        :meth:`_fill` flattened in (one call per miss instead of four
        on the LRU default).
        """
        self.version += 1
        self.stats.misses += 1
        policy = self.policy
        if self._policy_has_on_miss:
            policy.on_miss(set_index)
        if self._set_len[set_index] < self.assoc:
            base = set_index * self.assoc
            slot = self._slot_blocks.index(None, base, base + self.assoc)
            self._set_len[set_index] += 1
        else:
            slot = policy.victim_slot(set_index)
            victim = self._slot_blocks[slot]
            if self.victim_callback is not None:
                self.victim_callback(victim, self._slot_tags[slot])
            self.stats.evictions += 1
            del self._where[victim]
        self._slot_blocks[slot] = block
        self._slot_tags[slot] = tag
        self._where[block] = slot
        if policy.insert_mode == "age_mru":
            policy._ages[slot] = policy._tick
            policy._tick += 1
        else:
            policy.insert_slot(slot)

    def probe(self, block: int) -> bool:
        """Like :meth:`access` but never fills; still counts stats and
        updates recency on hit.  Used by the idealized PIF model, where
        the L1-I never stalls but would-miss traffic is tracked."""
        self.version += 1
        slot = self._where.get(block)
        if slot is not None:
            self.stats.hits += 1
            self.policy.hit_slot(slot)
            return True
        self.stats.misses += 1
        if self._policy_has_on_miss:
            self.policy.on_miss(self.set_index(block))
        return False

    def fill(self, block: int, tag: int = 0) -> None:
        """Install ``block`` without a demand access (prefetch fill)."""
        if block in self._where:
            return
        self._fill(self.set_index(block), block, tag)

    def _fill(self, set_index: int, block: int, tag: int) -> None:
        self.version += 1
        if self._set_len[set_index] < self.assoc:
            base = set_index * self.assoc
            slot = self._slot_blocks.index(None, base, base + self.assoc)
            self._set_len[set_index] += 1
        else:
            slot = self.policy.victim_slot(set_index)
            victim = self._slot_blocks[slot]
            assert victim is not None
            if self.victim_callback is not None:
                self.victim_callback(victim, self._slot_tags[slot])
            self.stats.evictions += 1
            del self._where[victim]
        self._slot_blocks[slot] = block
        self._slot_tags[slot] = tag
        self._where[block] = slot
        policy = self.policy
        if policy.insert_mode == "age_mru":
            policy._ages[slot] = policy._tick
            policy._tick += 1
        else:
            policy.insert_slot(slot)

    def set_tag(self, block: int, tag: int) -> bool:
        """Overwrite the metadata tag of a resident block.

        Returns True if the block was resident."""
        slot = self._where.get(block)
        if slot is None:
            return False
        self.version += 1
        self._slot_tags[slot] = tag
        return True

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` (coherence invalidation).  No victim callback
        is fired: an invalidation is not a capacity eviction.

        Returns True if the block was resident."""
        slot = self._where.pop(block, None)
        if slot is None:
            return False
        self.version += 1
        self._slot_blocks[slot] = None
        self._set_len[slot // self.assoc] -= 1
        self.stats.invalidations += 1
        return True

    def reset_tags(self, tag: int = 0) -> None:
        """Set every resident block's metadata tag to ``tag`` (used when
        the FPTable profiler resets all phaseID tables -- Section 5.5)."""
        self.version += 1
        tags = self._slot_tags
        for slot in self._where.values():
            tags[slot] = tag

    def flush(self) -> None:
        """Empty the cache without firing victim callbacks.

        Mutates the storage arrays in place: the engine's specialized
        loops capture references to them once at construction.
        """
        self.version += 1
        self._where.clear()
        num_slots = self.num_sets * self.assoc
        self._slot_blocks[:] = [None] * num_slots
        self._set_len[:] = [0] * self.num_sets


class ReferenceCache(Cache):
    """The pre-optimization per-set-dict layout (parity ground truth).

    Selected by ``REPRO_SIM_REFERENCE=1`` via :func:`make_cache`; pairs
    with the reference recency-stack policies so the whole original
    path stays intact for differential testing.
    """

    _reference = True

    def _init_storage(self) -> None:
        # Per-set mapping of resident block -> way, plus per-way arrays
        # of the resident block (or None) and its metadata tag.
        self._lookup: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self._blocks: List[List[Optional[int]]] = [
            [None] * self.assoc for _ in range(self.num_sets)
        ]
        self._tags: List[List[int]] = [
            [0] * self.assoc for _ in range(self.num_sets)
        ]

    def contains(self, block: int) -> bool:
        return block in self._lookup[self.set_index(block)]

    def tag_of(self, block: int) -> Optional[int]:
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is None:
            return None
        return self._tags[set_index][way]

    def resident_blocks(self) -> Iterator[int]:
        for mapping in self._lookup:
            yield from mapping

    @property
    def occupancy(self) -> int:
        return sum(len(mapping) for mapping in self._lookup)

    def access(self, block: int, tag: int = 0) -> bool:
        self.version += 1
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_index, way)
            self._tags[set_index][way] = tag
            return True
        self.stats.misses += 1
        self.policy.on_miss(set_index)
        self._fill(set_index, block, tag)
        return False

    def miss_fill(self, block: int, tag: int, set_index: int) -> None:
        self.version += 1
        self.stats.misses += 1
        self.policy.on_miss(set_index)
        self._fill(set_index, block, tag)

    def probe(self, block: int) -> bool:
        self.version += 1
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_index, way)
            return True
        self.stats.misses += 1
        self.policy.on_miss(set_index)
        return False

    def fill(self, block: int, tag: int = 0) -> None:
        set_index = self.set_index(block)
        if block in self._lookup[set_index]:
            return
        self._fill(set_index, block, tag)

    def _fill(self, set_index: int, block: int, tag: int) -> None:
        self.version += 1
        mapping = self._lookup[set_index]
        blocks = self._blocks[set_index]
        if len(mapping) < self.assoc:
            way = blocks.index(None)
        else:
            way = self.policy.victim_way(set_index)
            victim = blocks[way]
            assert victim is not None
            if self.victim_callback is not None:
                self.victim_callback(victim, self._tags[set_index][way])
            self.stats.evictions += 1
            del mapping[victim]
        blocks[way] = block
        self._tags[set_index][way] = tag
        mapping[block] = way
        self.policy.on_insert(set_index, way)

    def set_tag(self, block: int, tag: int) -> bool:
        set_index = self.set_index(block)
        way = self._lookup[set_index].get(block)
        if way is None:
            return False
        self.version += 1
        self._tags[set_index][way] = tag
        return True

    def invalidate(self, block: int) -> bool:
        set_index = self.set_index(block)
        way = self._lookup[set_index].pop(block, None)
        if way is None:
            return False
        self.version += 1
        self._blocks[set_index][way] = None
        self.stats.invalidations += 1
        return True

    def reset_tags(self, tag: int = 0) -> None:
        self.version += 1
        for set_index, mapping in enumerate(self._lookup):
            tags = self._tags[set_index]
            for way in mapping.values():
                tags[way] = tag

    def flush(self) -> None:
        self.version += 1
        for set_index in range(self.num_sets):
            self._lookup[set_index].clear()
            self._blocks[set_index] = [None] * self.assoc


def make_cache(
    config: CacheConfig,
    rng: Optional[random.Random] = None,
    victim_callback: Optional[VictimCallback] = None,
    name: str = "cache",
) -> Cache:
    """Build a cache on the path selected by ``REPRO_SIM_REFERENCE``."""
    cls = ReferenceCache if reference_mode() else Cache
    return cls(config, rng=rng, victim_callback=victim_callback,
               name=name)
