"""Seeded random generation of simulation cases for the fuzz harness.

A :class:`FuzzCase` is a fully self-contained simulation input: a
``SystemConfig`` dict plus scheduler/prefetcher/team-size and either a
registered workload name or a synthetic trace recipe.  Cases
round-trip through JSON (the replay corpus under ``tests/corpus/``),
so any failure the harness finds is a one-file deterministic repro.

:class:`CaseGenerator` samples the *hostile* corner of the space on
purpose -- the geometries no hand-written grid covers but the paper's
sensitivity analysis says matter: 1 core, ``team_size=1``, non-power-
of-two set counts and associativities, tiny L1-Is (down to one set),
zero-latency levels, every replacement policy, and degenerate
synthetic traces (single event, single block, no data accesses).
Everything is derived from one integer seed via :class:`random.Random`
(never the process hash seed), so a printed seed is a full repro.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.config import BLOCK_SIZE, SCALES, SystemConfig
from repro.sim.api import PREFETCHERS, SCHEDULERS
from repro.trace.trace import TransactionTrace
from repro.workloads import WORKLOADS, make_workload

#: Pseudo-workload name selecting the synthetic trace recipe.
SYNTHETIC = "synthetic"

#: Corpus file schema version (bump on incompatible FuzzCase changes).
CASE_SCHEMA = 1

#: Replacement policies the generator samples (all registered ones).
POLICIES = ("lru", "fifo", "random", "lip", "bip", "dip", "srrip",
            "brrip")

#: Hostile L1 geometries: (sets, assoc) including non-powers-of-two
#: and the single-set degenerate.
_L1_SHAPES = ((1, 2), (1, 4), (2, 2), (3, 2), (3, 4), (4, 1), (4, 4),
              (5, 3), (7, 2), (8, 4), (12, 2), (16, 4))

#: L2 slice geometries (always at least as big as the largest L1).
_L2_SHAPES = ((8, 4), (16, 4), (16, 8), (24, 4), (32, 8), (64, 8))


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible simulation case.

    Attributes:
        name: stable label (also the corpus filename stem).
        config: ``SystemConfig.to_dict()`` form of the system.
        scheduler: registered scheduler name.
        prefetcher: registered prefetcher name.
        team_size: optional STREX/hybrid team-size override.
        workload: registered workload name, or :data:`SYNTHETIC`.
        transactions: traces to generate.
        seed: workload / synthetic-trace generation seed.
        events: max events per synthetic trace (synthetic only).
        blocks: instruction-block universe size (synthetic only).
        data_blocks: data-block universe size (synthetic only).
        note: free-form provenance (generator seed, shrink history).
    """

    name: str
    config: dict
    scheduler: str = "base"
    prefetcher: str = "none"
    team_size: Optional[int] = None
    workload: str = SYNTHETIC
    transactions: int = 2
    seed: int = 1013
    events: int = 24
    blocks: int = 16
    data_blocks: int = 16
    note: str = ""

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                f"{sorted(SCHEDULERS)}")
        if self.prefetcher not in PREFETCHERS:
            raise ValueError(
                f"unknown prefetcher {self.prefetcher!r}; choose from "
                f"{sorted(PREFETCHERS)}")
        if self.workload != SYNTHETIC and self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from "
                f"{sorted(WORKLOADS)} or {SYNTHETIC!r}")
        if self.team_size is not None and \
                self.scheduler not in ("strex", "hybrid"):
            raise ValueError(
                "team_size only applies to strex/hybrid cases")
        if self.transactions <= 0:
            raise ValueError("transactions must be positive")
        if self.events <= 0 or self.blocks <= 0 or self.data_blocks <= 0:
            raise ValueError(
                "synthetic trace dimensions must be positive")
        if not isinstance(self.config, dict):
            raise ValueError("config must be a SystemConfig dict")

    # -- construction ---------------------------------------------------
    def build_config(self) -> SystemConfig:
        """The case's :class:`SystemConfig` (validates the dict)."""
        return SystemConfig.from_dict(self.config)

    def build_traces(self) -> List[TransactionTrace]:
        """Generate the case's traces (deterministic in ``seed``)."""
        if self.workload == SYNTHETIC:
            return synthetic_traces(
                self.transactions, self.events, self.blocks,
                self.data_blocks, self.seed)
        config = self.build_config()
        workload = make_workload(self.workload, config.l1i_blocks,
                                 seed=self.seed)
        return workload.generate_mix(self.transactions, seed=self.seed)

    def describe(self) -> str:
        """One-line human label (mirrors ``RunSpec.describe``)."""
        cores = self.config.get("num_cores", "?")
        team = f" team={self.team_size}" if self.team_size is not None \
            else ""
        prefetch = f"+{self.prefetcher}" if self.prefetcher != "none" \
            else ""
        return (f"{self.name}: {self.workload} x{self.transactions} "
                f"{self.scheduler}{prefetch} cores={cores}{team} "
                f"seed={self.seed}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (the corpus file payload)."""
        data = dataclasses.asdict(self)
        data["schema"] = CASE_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output."""
        data = dict(data)
        schema = data.pop("schema", CASE_SCHEMA)
        if schema != CASE_SCHEMA:
            raise ValueError(
                f"unsupported fuzz-case schema {schema!r} "
                f"(this build reads {CASE_SCHEMA})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FuzzCase keys: {sorted(unknown)}")
        return cls(**data)

    def replace(self, **changes: object) -> "FuzzCase":
        """A copy with fields replaced (shrinker helper)."""
        return dataclasses.replace(self, **changes)


def synthetic_traces(transactions: int, events: int, blocks: int,
                     data_blocks: int, seed: int
                     ) -> List[TransactionTrace]:
    """Degenerate-friendly synthetic traces.

    Each trace draws 1..``events`` events over a ``blocks``-wide
    instruction universe; ~40% of events carry a data access (~30% of
    those are stores).  Tiny universes produce the pathological shapes
    the real workload generators never emit: a single hot block, a
    trace of one event, zero data accesses.
    """
    rng = random.Random(seed * 2654435761 % (2 ** 31) + 17)
    traces = []
    for txn_id in range(transactions):
        n = rng.randint(1, events)
        iblocks = [rng.randrange(blocks) for _ in range(n)]
        ilens = [rng.randint(1, 8) for _ in range(n)]
        dblocks = [
            rng.randrange(data_blocks) if rng.random() < 0.4 else -1
            for _ in range(n)
        ]
        dwrites = [
            1 if dblocks[i] >= 0 and rng.random() < 0.3 else 0
            for i in range(n)
        ]
        traces.append(TransactionTrace(
            txn_id, f"syn{txn_id % 3}", iblocks, ilens, dblocks,
            dwrites))
    return traces


@dataclass(frozen=True)
class CasePools:
    """The sampling pools a :class:`CaseGenerator` draws from.

    The defaults cover the full hostile space; ``from_grid_args``
    narrows them to whatever a ``repro fuzz`` invocation pinned via
    the shared sweep-grid flags (an unset flag keeps the full pool).
    """

    workloads: Tuple[str, ...] = tuple(sorted(WORKLOADS)) + (SYNTHETIC,)
    schedulers: Tuple[str, ...] = tuple(sorted(SCHEDULERS))
    prefetchers: Tuple[str, ...] = tuple(sorted(PREFETCHERS))
    cores: Tuple[int, ...] = (1, 2, 3, 4, 5, 8)
    team_sizes: Tuple[Optional[int], ...] = (None, None, 1, 2, 3)
    seeds: Tuple[int, ...] = ()
    scales: Tuple[str, ...] = ()
    max_transactions: int = 5
    strex_overrides: Optional[dict] = None
    cache_overrides: Optional[dict] = None

    def __post_init__(self) -> None:
        for pool, registry in (("workloads", set(WORKLOADS)
                                | {SYNTHETIC}),
                               ("schedulers", set(SCHEDULERS)),
                               ("prefetchers", set(PREFETCHERS)),
                               ("scales", set(SCALES))):
            unknown = set(getattr(self, pool)) - registry
            if unknown:
                raise ValueError(
                    f"unknown {pool}: {sorted(unknown)}")
        if not self.workloads or not self.schedulers \
                or not self.prefetchers or not self.cores:
            raise ValueError("sampling pools must be non-empty")
        if any(c <= 0 for c in self.cores):
            raise ValueError("cores must be positive")
        if self.max_transactions <= 0:
            raise ValueError("max_transactions must be positive")

    @classmethod
    def from_grid_args(cls, args) -> "CasePools":
        """Pools from parsed shared sweep-grid flags.

        ``repro fuzz`` builds its parser with the same
        ``_add_grid_arguments`` factoring as ``repro sweep``/``shard``
        but defaults every axis to ``None`` -- meaning "sample the
        full hostile pool" rather than the sweep's fixed grid.
        """
        kwargs = {}
        if getattr(args, "workloads", None):
            kwargs["workloads"] = tuple(args.workloads)
        if getattr(args, "schedulers", None):
            kwargs["schedulers"] = tuple(args.schedulers)
        if getattr(args, "prefetchers", None):
            kwargs["prefetchers"] = tuple(args.prefetchers)
        if getattr(args, "cores", None):
            kwargs["cores"] = tuple(args.cores)
        if getattr(args, "team_sizes", None):
            kwargs["team_sizes"] = tuple(args.team_sizes)
        if getattr(args, "seeds", None):
            kwargs["seeds"] = tuple(args.seeds)
        if getattr(args, "scales", None):
            kwargs["scales"] = tuple(args.scales)
        if getattr(args, "transactions", None):
            kwargs["max_transactions"] = args.transactions
        if getattr(args, "strex_overrides", None):
            kwargs["strex_overrides"] = args.strex_overrides
        if getattr(args, "cache_overrides", None):
            kwargs["cache_overrides"] = args.cache_overrides
        return cls(**kwargs)


class CaseGenerator:
    """Seeded stream of hostile :class:`FuzzCase` instances."""

    def __init__(self, seed: int,
                 pools: Optional[CasePools] = None) -> None:
        self.seed = seed
        self.pools = pools or CasePools()

    def cases(self, count: int) -> Iterator[FuzzCase]:
        """Yield ``count`` cases (deterministic in the seed)."""
        for index in range(count):
            yield self.case(index)

    def case(self, index: int) -> FuzzCase:
        """The ``index``-th case of this generator's stream.

        One private RNG per case keeps the stream stable: adding a
        sampling step to case 3 must not change case 4.  The RNG is
        seeded with a *string* (hashed via SHA-512 inside
        ``Random.seed``), never a tuple -- tuple seeding falls back to
        ``hash()``, which ``PYTHONHASHSEED`` randomizes per process.
        """
        rng = random.Random(f"repro.fuzz/{self.seed}/{index}")
        pools = self.pools
        scheduler = rng.choice(pools.schedulers)
        # Prefetchers bias toward "none": the specialized kernels only
        # engage without one, and that is where the bugs would live.
        prefetcher = rng.choice(pools.prefetchers) \
            if rng.random() < 0.3 else "none"
        if prefetcher not in pools.prefetchers:
            prefetcher = pools.prefetchers[0]
        team_size = rng.choice(pools.team_sizes) \
            if scheduler in ("strex", "hybrid") else None
        workload = rng.choice(pools.workloads)
        transactions = rng.randint(1, pools.max_transactions)
        seed = rng.choice(pools.seeds) if pools.seeds \
            else rng.randrange(1, 2 ** 16)
        config = self._sample_config(rng)
        blocks_pool = max(2, config["l1i"]["size_bytes"] // BLOCK_SIZE)
        return FuzzCase(
            name=f"fuzz-{self.seed}-{index:03d}",
            config=config,
            scheduler=scheduler,
            prefetcher=prefetcher,
            team_size=team_size,
            workload=workload,
            transactions=transactions,
            seed=seed,
            events=rng.choice((1, 2, 8, 24, 48)),
            blocks=rng.randint(1, 4 * blocks_pool),
            data_blocks=rng.choice((1, 4, 32, 256)),
            note=f"generator seed={self.seed} index={index}",
        )

    def _sample_config(self, rng: random.Random) -> dict:
        pools = self.pools
        cores = rng.choice(pools.cores)
        if pools.scales and rng.random() < 0.5:
            config = SCALES[rng.choice(pools.scales)](cores)
            data = config.to_dict()
        else:
            data = self._hostile_config(rng, cores)
        data["seed"] = rng.randrange(1, 2 ** 16)
        for overrides, section in ((pools.strex_overrides, "strex"),
                                   (pools.cache_overrides, "l1i")):
            if overrides:
                for fld, values in sorted(overrides.items()):
                    choices = values if isinstance(values, list) \
                        else [values]
                    data[section][fld] = rng.choice(choices)
        # Validate eagerly so generator bugs surface as generator
        # errors, not downstream simulation crashes.
        SystemConfig.from_dict(data)
        return data

    def _hostile_config(self, rng: random.Random, cores: int) -> dict:
        def cache(shapes, hit_choices, big_enough=0):
            sets, assoc = rng.choice(shapes)
            while sets * assoc < big_enough:
                sets, assoc = rng.choice(shapes)
            return {
                "size_bytes": sets * assoc * BLOCK_SIZE,
                "assoc": assoc,
                "block_bytes": BLOCK_SIZE,
                "hit_latency": rng.choice(hit_choices),
                "replacement": rng.choice(POLICIES),
            }

        l1i = cache(_L1_SHAPES, (0, 1, 3))
        return {
            "num_cores": cores,
            "core": {
                "base_cpi": rng.choice((0.3, 0.5, 1.0)),
                "frequency_ghz": 2.5,
                "covered_stall_fraction": rng.choice((0.0, 0.6, 1.0)),
            },
            "l1i": l1i,
            "l1d": cache(_L1_SHAPES, (0, 1, 3)),
            # The L2 must at least fit one L1-I (the STREX model
            # assumes inclusion-ish sizing, never enforces it).
            "l2_slice": cache(
                _L2_SHAPES, (0, 4, 16),
                big_enough=l1i["size_bytes"] // BLOCK_SIZE),
            "memory": {
                "base_latency": rng.choice((0, 5, 105)),
                "row_hit_latency": rng.choice((0, 3, 55)),
                "num_channels": rng.choice((1, 2)),
                "num_banks": rng.choice((1, 8)),
                "row_bytes": 8192,
                "open_page": rng.random() < 0.8,
            },
            "noc": {
                "hop_latency": rng.choice((0, 1, 2)),
                "router_latency": rng.choice((0, 1)),
            },
            "strex": {
                "team_size": rng.choice((1, 2, 10)),
                "window": rng.choice((1, 2, 30)),
                "phase_bits": rng.choice((1, 2, 4, 8)),
                "context_switch_cycles": rng.choice((0, 17, 120)),
                "min_progress_events": rng.choice((None, 0, 4)),
            },
            "slicc": {
                "miss_window": rng.choice((1, 4, 16)),
                "miss_threshold": rng.choice((1, 2, 4)),
                "migration_cycles": rng.choice((0, 50)),
                "signature_match": rng.choice((0.0, 0.5, 1.0)),
                "team_factor": rng.choice((1, 2)),
                "cooldown_events": rng.choice((0, 4, 24)),
            },
            "hybrid": {
                "profile_fraction": 0.002,
                "slack_units": rng.choice((0, 1)),
            },
        }
