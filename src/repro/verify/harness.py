"""Differential fuzz harness: fast vs reference kernel, oracles armed.

:func:`run_case` is the heart: one :class:`FuzzCase` runs through the
fast-path kernel *and* ``REPRO_SIM_REFERENCE=1``, on the **same trace
objects** (trace generation is seeded but the parity rule requires the
two kernels to consume identical inputs in one process), with
``REPRO_SIM_CHECK=1`` arming the invariant oracles in both.  The bar
is DESIGN decision 12's: the two serialized ``RunResult``s must be
byte-equal.

Failures are classified (oracle ``violation`` / kernel ``mismatch`` /
hard ``error``), greedily shrunk to a minimal still-failing case, and
written as one-file JSON repros -- the replay corpus under
``tests/corpus/`` is exactly such files, committed.  ``python -m repro
fuzz run|replay|corpus`` drives everything from the command line.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exp.diff import metric_vector, result_blob
from repro.fastpath import CHECK_ENV, ENV_VAR
from repro.sim.api import simulate
from repro.verify.generators import (
    SYNTHETIC,
    CaseGenerator,
    CasePools,
    FuzzCase,
)
from repro.verify.oracles import InvariantViolation

#: Outcome statuses, in severity order.
STATUS_OK = "ok"
STATUS_VIOLATION = "violation"
STATUS_MISMATCH = "mismatch"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class CaseOutcome:
    """What happened when one case ran through both kernels."""

    case: FuzzCase
    status: str
    detail: str = ""
    kernel: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def describe(self) -> str:
        suffix = f" [{self.kernel}]" if self.kernel else ""
        line = f"{self.status}{suffix}: {self.case.describe()}"
        if self.detail:
            line += f"\n    {self.detail}"
        return line

    def to_dict(self) -> dict:
        return {
            "case": self.case.to_dict(),
            "status": self.status,
            "detail": self.detail,
            "kernel": self.kernel,
        }


def _simulate_case(case: FuzzCase, config, traces, reference: bool,
                   check: bool):
    """One kernel run with the mode flags pinned, then restored."""
    saved_ref = os.environ.get(ENV_VAR)
    saved_check = os.environ.get(CHECK_ENV)
    try:
        if reference:
            os.environ[ENV_VAR] = "1"
        else:
            os.environ.pop(ENV_VAR, None)
        if check:
            os.environ[CHECK_ENV] = "1"
        else:
            os.environ.pop(CHECK_ENV, None)
        return simulate(
            config, traces, case.scheduler,
            workload_name=case.workload,
            prefetcher=case.prefetcher,
            team_size=case.team_size,
        )
    finally:
        for name, saved in ((ENV_VAR, saved_ref),
                            (CHECK_ENV, saved_check)):
            if saved is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = saved


def _mismatch_detail(fast, reference) -> str:
    """Name the metrics where the two kernels disagree."""
    a = metric_vector(fast)
    b = metric_vector(reference)
    moved = [
        f"{name}: fast={a.get(name)!r} reference={b.get(name)!r}"
        for name in sorted(set(a) | set(b))
        if a.get(name) != b.get(name)
    ]
    if not moved:
        moved = ["metric vectors agree; serialized results differ "
                 "(latency list or extra fields)"]
    shown = "; ".join(moved[:6])
    if len(moved) > 6:
        shown += f"; ... {len(moved) - 6} more"
    return shown


def run_case(case: FuzzCase, check: bool = True) -> CaseOutcome:
    """Run one case through both kernels and compare byte-for-byte."""
    try:
        config = case.build_config()
        traces = case.build_traces()
    except Exception as exc:  # noqa: BLE001 - classified, not hidden
        return CaseOutcome(case, STATUS_ERROR,
                           detail=f"case construction failed: {exc!r}")
    results = {}
    for kernel, reference in (("fast", False), ("reference", True)):
        try:
            results[kernel] = _simulate_case(
                case, config, traces, reference=reference, check=check)
        except InvariantViolation as exc:
            return CaseOutcome(case, STATUS_VIOLATION, detail=str(exc),
                               kernel=kernel)
        except Exception as exc:  # noqa: BLE001
            return CaseOutcome(case, STATUS_ERROR, detail=repr(exc),
                               kernel=kernel)
    if result_blob(results["fast"]) != result_blob(results["reference"]):
        return CaseOutcome(
            case, STATUS_MISMATCH,
            detail=_mismatch_detail(results["fast"],
                                    results["reference"]))
    return CaseOutcome(case, STATUS_OK)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _with_config(case: FuzzCase, **top_level) -> FuzzCase:
    """A copy of ``case`` with top-level config keys replaced."""
    config = json.loads(json.dumps(case.config))
    config.update(top_level)
    return case.replace(config=config)


def _shrink_candidates(case: FuzzCase) -> List[FuzzCase]:
    """Strictly-simpler variants, most aggressive reductions first."""
    out: List[FuzzCase] = []

    def add(builder: Callable[[], FuzzCase]) -> None:
        try:
            candidate = builder()
        except (ValueError, KeyError, TypeError):
            return
        out.append(candidate)

    if case.transactions > 1:
        add(lambda: case.replace(transactions=1))
        add(lambda: case.replace(transactions=case.transactions // 2))
    if case.workload != SYNTHETIC:
        add(lambda: case.replace(workload=SYNTHETIC, events=24,
                                 blocks=32, data_blocks=16))
    else:
        for fld in ("events", "blocks", "data_blocks"):
            value = getattr(case, fld)
            if value > 1:
                add(lambda f=fld: case.replace(**{f: 1}))
                add(lambda f=fld, v=value: case.replace(**{f: v // 2}))
    cores = case.config.get("num_cores", 1)
    if cores > 1:
        add(lambda: _with_config(case, num_cores=1))
        add(lambda: _with_config(case, num_cores=cores // 2))
    if case.prefetcher != "none":
        add(lambda: case.replace(prefetcher="none"))
    if case.team_size is not None:
        add(lambda: case.replace(team_size=None))
    lru = {}
    for level in ("l1i", "l1d", "l2_slice"):
        section = case.config.get(level, {})
        if section.get("replacement", "lru") != "lru":
            lru[level] = dict(section, replacement="lru")
    if lru:
        add(lambda: _with_config(case, **lru))
    if case.scheduler != "base":
        add(lambda: case.replace(scheduler="base", team_size=None))
    return out


def shrink_case(case: FuzzCase,
                is_failing: Optional[Callable[[FuzzCase], bool]] = None,
                check: bool = True,
                max_attempts: int = 80) -> Tuple[FuzzCase, int]:
    """Greedily minimize a failing case.

    Repeatedly tries simpler variants, keeping any that still fail
    (by ``is_failing``, default: :func:`run_case` not ok), until a
    full candidate round yields no reduction or the attempt budget is
    spent.  Deterministic: candidate order is fixed and the predicate
    is pure for our cases.

    Returns:
        ``(smallest failing case found, candidate runs spent)``.
    """
    if is_failing is None:
        def is_failing(candidate: FuzzCase) -> bool:
            return not run_case(candidate, check=check).ok

    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(case):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failing = is_failing(candidate)
            except Exception:  # noqa: BLE001 - a crash still "fails"
                failing = True
            if failing:
                case = candidate
                improved = True
                break
    return case, attempts


# ----------------------------------------------------------------------
# Corpus files
# ----------------------------------------------------------------------
def save_case(case: FuzzCase, directory: Path) -> Path:
    """Write one case as ``<directory>/<name>.json`` (atomic)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    payload = json.dumps(case.to_dict(), indent=2, sort_keys=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(payload + "\n")
    tmp.replace(path)
    return path


def load_case(path: Path) -> FuzzCase:
    """Read one corpus file back into a :class:`FuzzCase`."""
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


def load_corpus(directory: Path) -> List[Tuple[Path, FuzzCase]]:
    """All corpus cases under ``directory``, sorted by filename."""
    directory = Path(directory)
    pairs = []
    for path in sorted(directory.glob("*.json")):
        pairs.append((path, load_case(path)))
    return pairs


# ----------------------------------------------------------------------
# Campaign drivers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Failure:
    """One failing case with its shrunken repro."""

    outcome: CaseOutcome
    shrunk: FuzzCase
    shrink_attempts: int = 0
    saved_to: Optional[Path] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign (or corpus replay)."""

    outcomes: List[CaseOutcome] = field(default_factory=list)
    failures: List[Failure] = field(default_factory=list)
    seed: Optional[int] = None
    elapsed_s: float = 0.0
    requested: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def counts(self) -> dict:
        counts = {STATUS_OK: 0, STATUS_VIOLATION: 0,
                  STATUS_MISMATCH: 0, STATUS_ERROR: 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format_text(self) -> str:
        counts = self.counts
        ran = len(self.outcomes)
        line = (f"{ran} case(s) in {self.elapsed_s:.1f}s: "
                f"{counts[STATUS_OK]} ok, "
                f"{counts[STATUS_VIOLATION]} invariant violation(s), "
                f"{counts[STATUS_MISMATCH]} kernel mismatch(es), "
                f"{counts[STATUS_ERROR]} error(s)")
        if self.seed is not None:
            line += f"  [seed {self.seed}]"
        if ran < self.requested:
            line += (f"\ntime budget hit: ran {ran} of "
                     f"{self.requested} requested case(s)")
        lines = [line]
        for failure in self.failures:
            lines.append("")
            lines.append(failure.outcome.describe())
            lines.append(f"  shrunk to: {failure.shrunk.describe()} "
                         f"({failure.shrink_attempts} attempt(s))")
            if failure.saved_to is not None:
                lines.append(
                    f"  repro saved: {failure.saved_to} "
                    f"(replay: python -m repro fuzz replay "
                    f"{failure.saved_to})")
        return "\n".join(lines)


def _record_failure(outcome: CaseOutcome, *, shrink: bool, check: bool,
                    save_dir: Optional[Path]) -> Failure:
    case = outcome.case
    if shrink:
        shrunk, attempts = shrink_case(case, check=check)
        shrunk = shrunk.replace(
            name=f"{case.name}-shrunk",
            note=(f"{shrunk.note}; shrunk from {case.name} "
                  f"({outcome.status})").strip("; "))
    else:
        shrunk, attempts = case, 0
    saved_to = save_case(shrunk, save_dir) if save_dir is not None \
        else None
    return Failure(outcome=outcome, shrunk=shrunk,
                   shrink_attempts=attempts, saved_to=saved_to)


def fuzz_run(count: int, seed: int,
             pools: Optional[CasePools] = None,
             check: bool = True,
             shrink: bool = True,
             save_dir: Optional[Path] = None,
             time_budget_s: Optional[float] = None,
             progress: Optional[Callable[[CaseOutcome], None]] = None,
             ) -> FuzzReport:
    """Run ``count`` freshly generated cases; shrink and save failures.

    ``time_budget_s`` bounds the campaign wall clock (the CI
    fuzz-smoke job); generation stops once it is exceeded, which is
    reported rather than silent.
    """
    generator = CaseGenerator(seed, pools)
    report = FuzzReport(seed=seed, requested=count)
    started = time.monotonic()
    for index in range(count):
        if time_budget_s is not None and \
                time.monotonic() - started > time_budget_s:
            break
        outcome = run_case(generator.case(index), check=check)
        report.outcomes.append(outcome)
        if not outcome.ok:
            report.failures.append(_record_failure(
                outcome, shrink=shrink, check=check,
                save_dir=save_dir))
        if progress is not None:
            progress(outcome)
    report.elapsed_s = time.monotonic() - started
    return report


def replay_cases(cases: Sequence[FuzzCase],
                 check: bool = True,
                 shrink: bool = False,
                 save_dir: Optional[Path] = None,
                 progress: Optional[Callable[[CaseOutcome], None]] = None,
                 ) -> FuzzReport:
    """Re-run known cases (the corpus, or saved failure files)."""
    report = FuzzReport(requested=len(cases))
    started = time.monotonic()
    for case in cases:
        outcome = run_case(case, check=check)
        report.outcomes.append(outcome)
        if not outcome.ok:
            report.failures.append(_record_failure(
                outcome, shrink=shrink, check=check,
                save_dir=save_dir))
        if progress is not None:
            progress(outcome)
    report.elapsed_s = time.monotonic() - started
    return report
