"""Invariant oracles for the simulation engine (``REPRO_SIM_CHECK=1``).

Every quantity the simulator reports is an aggregate of per-event
bookkeeping spread across four layers (trace replay, caches, NoC,
scheduler), so a bookkeeping bug usually *moves* a number rather than
crashing -- exactly the failure mode differential fuzzing is blind to
when it hits both kernels the same way.  The oracles close that gap:
with ``REPRO_SIM_CHECK=1`` in the environment, every
:class:`~repro.sim.engine.SimulationEngine` audits its own accounting
and raises :class:`InvariantViolation` at the first breach.

Two hook points:

* :meth:`InvariantChecker.after_slice` -- after every scheduler slice:
  core clocks and thread cursors are monotone, cursors stay in bounds,
  instruction totals never decrease.
* :meth:`InvariantChecker.finalize` -- on the finished
  :class:`~repro.sim.results.RunResult`: conservation (every trace
  event hits the L1-I exactly once, every data event the L1-D; L2
  demand traffic equals L1 misses), cache-stats sanity (misses <=
  accesses, evictions <= misses, occupancy <= capacity), phase-ID tag
  consistency (STREX tags stay inside ``[0, 2**phase_bits)``;
  non-STREX schedulers leave every tag zero; data-side tags are never
  phase-tagged), and reconciliation of every ``RunResult`` field
  against the engine/hierarchy state it was collected from (per-core
  busy time, IPC/throughput inputs, switch/migration/coherence
  counters).

The module is imported by ``repro.sim.engine`` at module level, so it
must stay dependency-light (stdlib + :mod:`repro.fastpath` only); the
generators and differential harness live in sibling modules that are
loaded lazily.

Checking is opt-in because the finalize pass walks every cache's
resident blocks; the fuzz harness (``python -m repro fuzz``) and the
engine edge-case tests arm it, production sweeps do not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.fastpath import CHECK_ENV, check_mode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationEngine
    from repro.sim.results import RunResult

__all__ = [
    "CHECK_ENV",
    "InvariantChecker",
    "InvariantViolation",
    "check_mode",
    "make_checker",
]


class InvariantViolation(AssertionError):
    """The engine broke one of its own accounting invariants.

    Derives from :class:`AssertionError` so an armed run fails loudly
    under test harnesses that treat assertion failures specially; the
    message always starts with the violated oracle's name in square
    brackets.
    """


def make_checker(engine: "SimulationEngine") -> Optional["InvariantChecker"]:
    """The checker an engine should carry: one when armed, else None.

    The engine calls this once at construction (the same latching rule
    as the kernel choice), so flipping ``REPRO_SIM_CHECK`` mid-run
    never arms half a simulation.
    """
    return InvariantChecker(engine) if check_mode() else None


class InvariantChecker:
    """Audits one engine's bookkeeping as it runs.

    Constructed before the first slice, so the baseline snapshot sees
    the pristine engine; ``after_slice`` advances the snapshot,
    ``finalize`` cross-checks the collected result.
    """

    __slots__ = (
        "engine",
        "_last_core_time",
        "_last_pos",
        "_last_instructions",
        "_expected_events",
        "_expected_instructions",
        "_expected_data_events",
    )

    def __init__(self, engine: "SimulationEngine") -> None:
        self.engine = engine
        self._last_core_time: List[int] = list(engine.core_time)
        self._last_pos: List[int] = [t.pos for t in engine.threads]
        self._last_instructions = engine.total_instructions
        traces = [t.trace for t in engine.threads]
        self._expected_events = sum(len(t) for t in traces)
        self._expected_instructions = sum(
            t.total_instructions for t in traces
        )
        self._expected_data_events = sum(
            1 for t in traces for d in t.event_columns()[2] if d >= 0
        )

    def _fail(self, oracle: str, detail: str) -> None:
        raise InvariantViolation(f"[{oracle}] {detail}")

    def _require(self, ok: bool, oracle: str, detail: str) -> None:
        if not ok:
            self._fail(oracle, detail)

    # ------------------------------------------------------------------
    # Per-slice checks
    # ------------------------------------------------------------------
    def after_slice(self, core: int) -> None:
        """Monotonicity checks after one ``scheduler.run_slice(core)``.

        Every core is checked, not just the sliced one: SLICC
        migrations charge and advance *other* cores' clocks, and those
        must move forward too.
        """
        engine = self.engine
        for c, now in enumerate(engine.core_time):
            if now < self._last_core_time[c]:
                self._fail(
                    "cycle-monotonic",
                    f"core {c} clock moved backwards "
                    f"({self._last_core_time[c]} -> {now}) after a "
                    f"slice on core {core}",
                )
            self._last_core_time[c] = now
        for i, thread in enumerate(engine.threads):
            pos = thread.pos
            if pos < self._last_pos[i]:
                self._fail(
                    "cursor-monotonic",
                    f"thread {i} trace cursor moved backwards "
                    f"({self._last_pos[i]} -> {pos})",
                )
            if pos > len(thread.trace):
                self._fail(
                    "cursor-bounds",
                    f"thread {i} cursor {pos} past trace end "
                    f"{len(thread.trace)}",
                )
            self._last_pos[i] = pos
        if engine.total_instructions < self._last_instructions:
            self._fail(
                "instruction-monotonic",
                f"total_instructions decreased "
                f"({self._last_instructions} -> "
                f"{engine.total_instructions})",
            )
        self._last_instructions = engine.total_instructions

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finalize(self, result: "RunResult") -> None:
        """Full conservation + reconciliation audit of a finished run."""
        self._check_completion()
        self._check_conservation()
        self._check_cache_stats()
        self._check_tags()
        self._check_result(result)

    def _check_completion(self) -> None:
        engine = self.engine
        self._require(
            engine.finished_threads == len(engine.threads),
            "completion",
            f"finished_threads={engine.finished_threads} but "
            f"{len(engine.threads)} thread(s) exist",
        )
        for i, thread in enumerate(engine.threads):
            self._require(
                thread.pos == len(thread.trace),
                "completion",
                f"thread {i} stopped at event {thread.pos} of "
                f"{len(thread.trace)}",
            )
            self._require(
                thread.latency is not None,
                "completion",
                f"thread {i} finished without a latency "
                f"(start={thread.start_time}, "
                f"finish={thread.finish_time})",
            )

    def _check_conservation(self) -> None:
        """Every emitted trace event is consumed exactly once."""
        engine = self.engine
        hier = engine.hier
        i_accesses = sum(c.stats.accesses for c in hier.l1i)
        self._require(
            i_accesses == self._expected_events,
            "event-conservation",
            f"L1-I saw {i_accesses} accesses for "
            f"{self._expected_events} trace events",
        )
        d_accesses = sum(c.stats.accesses for c in hier.l1d)
        self._require(
            d_accesses == self._expected_data_events,
            "data-conservation",
            f"L1-D saw {d_accesses} accesses for "
            f"{self._expected_data_events} data events",
        )
        done = sum(t.instructions_done for t in engine.threads)
        self._require(
            engine.total_instructions == done,
            "instruction-conservation",
            f"engine total_instructions={engine.total_instructions} "
            f"!= sum of per-thread instructions_done={done}",
        )
        self._require(
            done == self._expected_instructions,
            "instruction-conservation",
            f"threads executed {done} instructions but traces "
            f"contain {self._expected_instructions}",
        )
        i_misses = hier.instruction_misses()
        d_misses = hier.data_misses()
        self._require(
            hier.l2_demand_traffic == i_misses + d_misses,
            "l2-traffic",
            f"L2 demand traffic {hier.l2_demand_traffic} != "
            f"L1 misses {i_misses} + {d_misses}",
        )
        l2_accesses = sum(c.stats.accesses for c in hier.l2)
        self._require(
            l2_accesses == hier.l2_demand_traffic,
            "l2-traffic",
            f"L2 slices saw {l2_accesses} accesses for "
            f"{hier.l2_demand_traffic} demand messages",
        )
        self._require(
            hier.noc.messages >= hier.l2_demand_traffic,
            "noc-messages",
            f"NoC carried {hier.noc.messages} messages for "
            f"{hier.l2_demand_traffic} L2 round trips",
        )

    def _check_cache_stats(self) -> None:
        engine = self.engine
        hier = engine.hier
        levels = (
            ("l1i", hier.l1i),
            ("l1d", hier.l1d),
            ("l2", hier.l2),
        )
        for level, caches in levels:
            for core, cache in enumerate(caches):
                stats = cache.stats
                self._require(
                    stats.hits >= 0 and stats.misses >= 0,
                    "stats-sane",
                    f"{level}[{core}] negative counters: "
                    f"hits={stats.hits} misses={stats.misses}",
                )
                self._require(
                    stats.evictions <= stats.misses,
                    "stats-sane",
                    f"{level}[{core}] evictions={stats.evictions} > "
                    f"misses={stats.misses}",
                )
                occupancy = cache.occupancy
                self._require(
                    occupancy <= cache.config.num_blocks,
                    "stats-sane",
                    f"{level}[{core}] occupancy={occupancy} > "
                    f"capacity={cache.config.num_blocks}",
                )
                resident = sum(1 for _ in cache.resident_blocks())
                self._require(
                    occupancy == resident,
                    "stats-sane",
                    f"{level}[{core}] occupancy={occupancy} != "
                    f"{resident} resident block(s)",
                )

    def _check_tags(self) -> None:
        """Phase-ID tagging consistency (STREX Section 4.2).

        STREX (and a hybrid that delegated to STREX) stamps L1-I
        blocks with the core's current phaseID, which wraps modulo
        ``2**phase_bits``; every other scheduler must leave the tag
        untouched at zero, and the data side is never phase-tagged.
        """
        engine = self.engine
        uses_tags = getattr(engine.scheduler, "uses_phase_tags", True)
        modulo = engine.config.strex.phase_modulo if uses_tags else 1
        for core, cache in enumerate(engine.hier.l1i):
            for block in cache.resident_blocks():
                tag = cache.tag_of(block)
                if tag is None or not 0 <= tag < modulo:
                    self._fail(
                        "phase-tags",
                        f"l1i[{core}] block {block} carries tag "
                        f"{tag!r} outside [0, {modulo}) under "
                        f"scheduler {engine.scheduler.name!r}",
                    )
        for level, caches in (("l1d", engine.hier.l1d),
                              ("l2", engine.hier.l2)):
            for core, cache in enumerate(caches):
                for block in cache.resident_blocks():
                    tag = cache.tag_of(block)
                    if tag != 0:
                        self._fail(
                            "phase-tags",
                            f"{level}[{core}] block {block} carries "
                            f"phase tag {tag!r}; only the L1-I is "
                            f"phase-tagged",
                        )

    def _check_result(self, result: "RunResult") -> None:
        """Reconcile every ``RunResult`` field with the engine state."""
        engine = self.engine
        hier = engine.hier
        checks = (
            ("instructions", result.instructions,
             engine.total_instructions),
            ("i_misses", result.i_misses, hier.instruction_misses()),
            ("d_misses", result.d_misses, hier.data_misses()),
            ("l2_traffic", result.l2_traffic, hier.l2_demand_traffic),
            ("l2_misses", result.l2_misses,
             sum(c.stats.misses for c in hier.l2)),
            ("coherence_misses", result.coherence_misses,
             sum(hier.coherence_misses)),
            ("transactions", result.transactions, len(engine.threads)),
            ("context_switches", result.context_switches,
             sum(t.context_switches for t in engine.threads)),
            ("migrations", result.migrations,
             sum(t.migrations for t in engine.threads)),
            ("num_cores", result.num_cores, engine.config.num_cores),
        )
        for name, reported, actual in checks:
            self._require(
                reported == actual,
                "result-reconciliation",
                f"RunResult.{name}={reported} but the engine "
                f"holds {actual}",
            )
        self._require(
            len(result.latencies) == len(engine.threads),
            "result-reconciliation",
            f"{len(result.latencies)} latencies for "
            f"{len(engine.threads)} finished thread(s)",
        )
        # Per-core busy time feeds IPC/throughput: each core's busy
        # share is non-negative and the total matches the result.
        busy = 0
        for core in range(engine.config.num_cores):
            share = engine.core_time[core] - engine.idle_cycles[core]
            self._require(
                share >= 0,
                "busy-time",
                f"core {core} idle {engine.idle_cycles[core]} cycles "
                f"of a {engine.core_time[core]}-cycle clock",
            )
            busy += share
        self._require(
            result.busy_cycles == busy,
            "busy-time",
            f"RunResult.busy_cycles={result.busy_cycles} but per-core "
            f"busy times sum to {busy}",
        )
        makespan = max(
            (t for t in engine.core_time if t > 0), default=0
        )
        self._require(
            result.cycles == makespan,
            "busy-time",
            f"RunResult.cycles={result.cycles} but the slowest busy "
            f"core reads {makespan}",
        )
        self._require(
            0 <= result.cycles and result.busy_cycles >= 0,
            "busy-time",
            f"negative time: cycles={result.cycles} "
            f"busy_cycles={result.busy_cycles}",
        )
