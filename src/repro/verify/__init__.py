"""repro.verify — invariant oracles + property-based differential fuzzing.

Three layers (see DESIGN.md, decision 15):

* :mod:`repro.verify.oracles` — ``REPRO_SIM_CHECK=1`` arms in-engine
  invariant checks (conservation, monotonicity, phase-tag ranges,
  result reconciliation); breaches raise :class:`InvariantViolation`.
* :mod:`repro.verify.generators` — seeded hostile-case generation
  (:class:`FuzzCase` / :class:`CaseGenerator`), JSON round-trippable.
* :mod:`repro.verify.harness` — the differential harness
  (:func:`run_case` requires byte-equal fast/reference results),
  greedy shrinking, and the replay corpus under ``tests/corpus/``.

Import note: the oracle layer is imported *eagerly* because
``repro.sim.engine`` depends on it at module level; the generator and
harness layers import the engine back (via ``repro.sim.api``), so they
load lazily (PEP 562) to keep ``engine -> oracles`` cycle-free.
"""

from repro.verify.oracles import (
    CHECK_ENV,
    InvariantChecker,
    InvariantViolation,
    check_mode,
    make_checker,
)

#: Lazily-resolved exports: name -> submodule.
_LAZY = {
    "CASE_SCHEMA": "generators",
    "CaseGenerator": "generators",
    "CasePools": "generators",
    "FuzzCase": "generators",
    "POLICIES": "generators",
    "SYNTHETIC": "generators",
    "synthetic_traces": "generators",
    "CaseOutcome": "harness",
    "Failure": "harness",
    "FuzzReport": "harness",
    "fuzz_run": "harness",
    "load_case": "harness",
    "load_corpus": "harness",
    "replay_cases": "harness",
    "run_case": "harness",
    "save_case": "harness",
    "shrink_case": "harness",
}

__all__ = [
    "CHECK_ENV",
    "InvariantChecker",
    "InvariantViolation",
    "check_mode",
    "make_checker",
] + sorted(_LAZY)


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{submodule}")
    value = getattr(module, name)
    globals()[name] = value
    return value
