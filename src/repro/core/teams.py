"""Team formation unit (Sections 4.3 and 5.6).

STREX groups *similar* transactions (same type, identified in hardware by
the header-instruction address -- here, by the trace's type name) into
teams of at most ``team_size`` threads, searching a window of up to 30
in-flight transactions.  Teams are dispatched in the arrival order of
the oldest thread in each team; a transaction with no same-type peers in
the window (a *stray*) is scheduled individually, i.e. as a team of one.

The hardware realization of this unit is the team management table costed
in Table 4 (see :mod:`repro.core.hwcost`).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.thread import TxnThread


class Team:
    """An ordered group of same-type threads scheduled on one core."""

    def __init__(self, threads: Sequence[TxnThread]):
        if not threads:
            raise ValueError("a team needs at least one thread")
        types = {t.txn_type for t in threads}
        if len(types) != 1:
            raise ValueError("team members must share a transaction type")
        self.threads: List[TxnThread] = list(threads)

    @property
    def txn_type(self) -> str:
        """The team's transaction type."""
        return self.threads[0].txn_type

    @property
    def oldest_arrival(self) -> int:
        """Arrival index of the team's oldest member."""
        return min(t.thread_id for t in self.threads)

    def __len__(self) -> int:
        return len(self.threads)

    def __repr__(self) -> str:
        return f"Team({self.txn_type}, size={len(self)})"


class TeamFormationUnit:
    """Forms teams over an arrival-ordered pool of threads.

    Args:
        team_size: maximum threads per team.
        window: how many of the oldest unassigned transactions are
            examined when forming each team (paper: 30).
    """

    def __init__(self, team_size: int = 10, window: int = 30):
        if team_size <= 0 or window <= 0:
            raise ValueError("team_size and window must be positive")
        self.team_size = team_size
        self.window = window

    def form_teams(self, threads: Sequence[TxnThread]) -> List[Team]:
        """Partition ``threads`` (arrival order) into teams.

        Repeatedly takes the oldest unassigned transaction and collects
        up to ``team_size`` same-type transactions from the current
        window.  The resulting team list is ordered by oldest member,
        which is also dispatch order.
        """
        remaining = list(threads)
        teams: List[Team] = []
        while remaining:
            window = remaining[: self.window]
            lead_type = window[0].txn_type
            members = [t for t in window if t.txn_type == lead_type]
            members = members[: self.team_size]
            chosen = set(id(t) for t in members)
            remaining = [t for t in remaining if id(t) not in chosen]
            teams.append(Team(members))
        return teams
