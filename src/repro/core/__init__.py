"""The paper's contribution: STREX team formation, the identical-
transaction optimal scheduler, FPTable profiling, and hardware costs."""

from repro.core.fptable import FPTable, PAPER_FPTABLE, profile_fptable
from repro.core.hwcost import FieldWidths, HardwareCostModel
from repro.core.teams import Team, TeamFormationUnit

__all__ = [
    "FPTable",
    "PAPER_FPTABLE",
    "profile_fptable",
    "FieldWidths",
    "HardwareCostModel",
    "Team",
    "TeamFormationUnit",
]
