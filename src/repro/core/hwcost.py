"""Hardware storage-cost model (Table 4 and Section 5.6).

Computes the per-core storage in bits/bytes for STREX's two units (thread
scheduler and team formation) and for the hybrid's additional SLICC cache
monitor unit, from the same field widths as Table 4 of the paper.  Also
provides the STREX-vs-PIF storage comparison quoted in the abstract
("less than 2% of the storage required by PIF").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SystemConfig
from repro.prefetch.pif import PifIdealPrefetcher


@dataclass(frozen=True)
class FieldWidths:
    """Bit widths of the hardware structures' fields (Table 4)."""

    thread_id_bits: int = 12
    context_pointer_bits: int = 48
    lead_flag_bits: int = 1
    phase_counter_bits: int = 8
    phase_tag_bits: int = 8
    timestamp_bits: int = 32
    type_id_bits: int = 4
    team_id_bits: int = 4
    team_index_bits: int = 8
    # SLICC cache monitor unit (for the hybrid).
    missed_tag_queue_bits: int = 60
    miss_shift_vector_bits: int = 100
    cache_signature_bits: int = 2048


class HardwareCostModel:
    """Storage-cost calculator for one core."""

    def __init__(self, config: SystemConfig,
                 widths: FieldWidths = FieldWidths(),
                 max_team_size: int = 20,
                 formation_window: int = 30):
        self.config = config
        self.widths = widths
        self.max_team_size = max_team_size
        self.formation_window = formation_window

    # -- Thread scheduler unit -----------------------------------------
    def thread_queue_bits(self) -> int:
        """Thread queue: one entry per possible team member."""
        w = self.widths
        entry = w.thread_id_bits + w.context_pointer_bits + w.lead_flag_bits
        return self.max_team_size * entry

    def phase_counter_bits(self) -> int:
        """The per-core phaseID counter."""
        return self.widths.phase_counter_bits

    def pidt_bits(self) -> int:
        """Auxiliary phaseID table: one tag per L1-I cache block."""
        return self.config.l1i.num_blocks * self.widths.phase_tag_bits

    def thread_scheduler_bits(self) -> int:
        """Total thread-scheduler storage per core."""
        return (
            self.thread_queue_bits()
            + self.phase_counter_bits()
            + self.pidt_bits()
        )

    # -- Team formation unit ---------------------------------------------
    def team_table_bits(self) -> int:
        """Team management table over the formation window."""
        w = self.widths
        entry = (
            w.thread_id_bits + w.timestamp_bits + w.type_id_bits
            + w.team_id_bits + w.team_index_bits
        )
        return self.formation_window * entry

    def strex_total_bits(self) -> int:
        """All STREX storage per core."""
        return self.thread_scheduler_bits() + self.team_table_bits()

    # -- Hybrid (adds SLICC's cache monitor unit) -------------------------
    def slicc_monitor_bits(self) -> int:
        """SLICC cache monitor unit storage."""
        w = self.widths
        return (
            w.missed_tag_queue_bits
            + w.miss_shift_vector_bits
            + w.cache_signature_bits
        )

    def hybrid_total_bits(self) -> int:
        """All hybrid-system storage per core."""
        return self.strex_total_bits() + self.slicc_monitor_bits()

    # -- Comparisons -------------------------------------------------------
    def strex_total_bytes(self) -> float:
        """STREX storage per core in bytes."""
        return self.strex_total_bits() / 8.0

    def hybrid_total_bytes(self) -> float:
        """Hybrid storage per core in bytes."""
        return self.hybrid_total_bits() / 8.0

    def fraction_of_pif(self) -> float:
        """STREX storage as a fraction of PIF's per-core storage."""
        return self.strex_total_bytes() / \
            PifIdealPrefetcher.STORAGE_BYTES_PER_CORE

    def breakdown(self) -> Dict[str, float]:
        """Table 4-style per-component breakdown, in bits."""
        return {
            "thread_queue_bits": self.thread_queue_bits(),
            "phase_counter_bits": self.phase_counter_bits(),
            "pidt_bits": self.pidt_bits(),
            "thread_scheduler_total_bits": self.thread_scheduler_bits(),
            "team_table_bits": self.team_table_bits(),
            "strex_total_bits": self.strex_total_bits(),
            "strex_total_bytes": self.strex_total_bytes(),
            "slicc_monitor_bits": self.slicc_monitor_bits(),
            "hybrid_total_bits": self.hybrid_total_bits(),
            "hybrid_total_bytes": self.hybrid_total_bytes(),
            "fraction_of_pif": self.fraction_of_pif(),
        }
