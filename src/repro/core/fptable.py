"""FPTable: transaction instruction-footprint profiling (Section 5.5).

The hybrid STREX+SLICC system needs to know, per transaction type, how
many L1-I-size units of code a transaction touches -- Table 3 of the
paper.  The paper measures this by re-using STREX's phaseID table during
a short SLICC profiling phase:

1. all phaseID tables are reset to zero on all cores;
2. a randomly chosen *sample* transaction is assigned a non-zero phaseID;
3. every cache block the sample touches is tagged with that phaseID;
4. a counter increments whenever the sample touches a block and had to
   *change* its phaseID value;
5. the final count is rounded to L1-I size units and recorded.

We reproduce the mechanism over the cache model: blocks are tagged as
the sample's trace replays over an L1-I-geometry cache, and the counter
increments exactly on tag transitions.  Eviction and refill re-counts a
block (just as in hardware); rounding to units absorbs the noise, and
the tests verify the result against the exact distinct-block footprint.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.trace.trace import TransactionTrace


#: Table 3 of the paper, for comparison in reports and tests.
PAPER_FPTABLE: Dict[str, Dict[str, int]] = {
    "TPC-C": {
        "Delivery": 12,
        "NewOrder": 14,
        "OrderStatus": 11,
        "Payment": 14,
        "StockLevel": 11,
    },
    "TPC-E": {
        "BrokerVolume": 7,
        "CustomerPosition": 9,
        "MarketWatch": 9,
        "SecurityDetail": 5,
        "TradeStatus": 9,
        "TradeUpdate": 8,
        "TradeLookup": 8,
    },
}

#: The phaseID value assigned to the sample thread during profiling.
SAMPLE_PHASE = 1


def measure_footprint_blocks(trace: TransactionTrace,
                             config: SystemConfig) -> int:
    """Count the cache blocks a transaction touches, via phaseID tags.

    Section 5.5's mechanism, steps 1-4: the sample thread's blocks are
    tagged with a pre-assigned phaseID and a counter increments whenever
    a touched block's tag had to change.  Profiling runs under SLICC, so
    the sample's blocks spread over the *aggregate* L1-I of the group --
    enough capacity that blocks are rarely evicted and re-counted.  We
    model that aggregate with an unbounded tag table; the count is the
    sample's distinct-block footprint.
    """
    tags: dict = {}
    counter = 0
    # event_columns() yields plain-int lists even for array-backed
    # (loaded) traces.
    for block in trace.event_columns()[0]:
        if tags.get(block) != SAMPLE_PHASE:
            counter += 1
            tags[block] = SAMPLE_PHASE
    return counter


class FPTable:
    """The footprint size table driving the hybrid decision.

    Maps transaction type name -> footprint in L1-I size units.
    """

    def __init__(self) -> None:
        self._units: Dict[str, int] = {}

    def record(self, txn_type: str, units: int) -> None:
        """Store a measured footprint."""
        self._units[txn_type] = units

    def units(self, txn_type: str) -> int:
        """Footprint of a type, in L1-I units."""
        return self._units[txn_type]

    def known_types(self) -> List[str]:
        """Types with recorded footprints."""
        return sorted(self._units)

    def as_dict(self) -> Dict[str, int]:
        """Copy of the table contents."""
        return dict(self._units)

    def median_units(self) -> float:
        """Median footprint across types (the hybrid's decision input)."""
        if not self._units:
            raise ValueError("FPTable is empty")
        values = sorted(self._units.values())
        mid = len(values) // 2
        if len(values) % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2.0

    def max_units(self) -> int:
        """Largest footprint across types."""
        if not self._units:
            raise ValueError("FPTable is empty")
        return max(self._units.values())


@dataclass
class FootprintResult:
    """A serializable FPTable profile (``RunSpec(mode="fptable")``).

    Wraps the measured type -> units mapping in the bit-identical
    ``to_dict``/``from_dict`` round trip the content-addressed result
    cache requires, and mirrors the :class:`FPTable` read API so
    reports can use either interchangeably.
    """

    units_by_type: Dict[str, int] = dataclass_field(default_factory=dict)

    def as_fptable(self) -> "FPTable":
        table = FPTable()
        for txn_type, units in self.units_by_type.items():
            table.record(txn_type, units)
        return table

    def units(self, txn_type: str) -> int:
        return self.units_by_type[txn_type]

    def known_types(self) -> List[str]:
        return sorted(self.units_by_type)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.units_by_type)

    def median_units(self) -> float:
        return self.as_fptable().median_units()

    def to_dict(self) -> dict:
        return {"units_by_type": dict(self.units_by_type)}

    @classmethod
    def from_dict(cls, data: dict) -> "FootprintResult":
        return cls(units_by_type=dict(data["units_by_type"]))


def profile_fptable(
    traces: Sequence[TransactionTrace],
    config: SystemConfig,
    samples_per_type: int = 1,
    rng: Optional[random.Random] = None,
) -> FPTable:
    """Build an FPTable by profiling sample transactions.

    For each transaction type present in ``traces``, up to
    ``samples_per_type`` random samples are profiled and their mean
    footprint, rounded to L1-I units, is recorded.
    """
    rng = rng or random.Random(config.seed)
    by_type: Dict[str, List[TransactionTrace]] = {}
    for trace in traces:
        by_type.setdefault(trace.txn_type, []).append(trace)
    table = FPTable()
    unit_blocks = config.l1i_blocks
    for txn_type, candidates in by_type.items():
        chosen = rng.sample(
            candidates, min(samples_per_type, len(candidates))
        )
        blocks = [
            measure_footprint_blocks(trace, config) for trace in chosen
        ]
        mean_blocks = sum(blocks) / len(blocks)
        table.record(
            txn_type, max(1, math.ceil(mean_blocks / unit_blocks))
        )
    return table
