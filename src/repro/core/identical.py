"""Optimal synchronization for identical transactions (Section 4.1).

For perfectly overlapping transactions the phase algorithm is optimal:
the lead fetches each cache-sized segment exactly once and every other
team member replays it for free.  Fig. 4 demonstrates this by building a
hypothetical workload of 100 transactions per type -- ten randomly chosen
instances, each *replicated* ten times -- and comparing baseline I-MPKI
against the synchronized execution ("CTX-Identical").

This module builds that workload and runs both configurations through
the simulation engine on a single core (STREX time-multiplexes one core;
the baseline runs the same 100 transactions back to back).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.sched.base import BaselineScheduler
from repro.sched.strex import StrexScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.trace.trace import TransactionTrace
from repro.workloads.base import Workload


def replicate_instances(
    workload: Workload,
    txn_type: str,
    instances: int = 10,
    replicas: int = 10,
    seed: Optional[int] = None,
) -> List[TransactionTrace]:
    """Fig. 4's construction: ``instances`` random instances, each
    replicated ``replicas`` times, interleaved so that replicas of the
    same instance are adjacent (they form natural teams).

    ``seed`` pins the instance draw; ``None`` draws from the
    workload's own RNG (position-dependent, so cached experiments pass
    an explicit seed).
    """
    base = workload.generate_uniform(txn_type, instances, seed=seed)
    traces: List[TransactionTrace] = []
    txn_id = 0
    for instance in base:
        for _ in range(replicas):
            clone = copy.copy(instance)
            clone.txn_id = txn_id
            txn_id += 1
            traces.append(clone)
    return traces


def compare_identical(
    workload: Workload,
    txn_type: str,
    config: SystemConfig,
    instances: int = 10,
    replicas: int = 10,
    team_size: int = 10,
) -> Tuple[RunResult, RunResult]:
    """Run Fig. 4's experiment for one transaction type.

    Returns:
        (baseline result, synchronized result) on a single core.
    """
    single = config.with_cores(1)
    traces = replicate_instances(workload, txn_type, instances, replicas)

    baseline = SimulationEngine(single, traces, BaselineScheduler)
    base_result = baseline.run(workload.name)

    synchronized = SimulationEngine(
        single,
        traces,
        lambda engine: StrexScheduler(engine, team_size=team_size),
    )
    sync_result = synchronized.run(workload.name)
    return base_result, sync_result


def identical_sweep(
    workloads: Dict[str, Workload],
    config: SystemConfig,
    instances: int = 10,
    replicas: int = 10,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Fig. 4 across all types of several workloads.

    Returns:
        ``{workload: {type: (baseline I-MPKI, CTX-identical I-MPKI)}}``.
    """
    results: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for name, workload in workloads.items():
        per_type: Dict[str, Tuple[float, float]] = {}
        for txn_type in workload.type_names():
            base, sync = compare_identical(
                workload, txn_type, config, instances, replicas
            )
            per_type[txn_type] = (base.i_mpki, sync.i_mpki)
        results[name] = per_type
    return results
