"""SLICC: thread migration across cores (Atta et al., MICRO'12), the
comparison technique of Sections 3 and 5.

SLICC slices transaction execution by *migrating* a thread to the core
whose L1-I already holds the code segment it is about to execute.  The
mechanism modelled here follows the original paper's components, which
the STREX paper reuses for its hybrid (Table 4, "SLICC's Cache Monitor
Unit"):

* a per-thread *missed-tag queue*: the tail of the thread's recent L1-I
  miss stream, which identifies the segment being entered;
* per-core *cache signatures*: a membership summary of each L1-I (here
  queried exactly; a Bloom filter in hardware);
* a miss-burst detector: a run of misses within a short window signals
  that the thread has crossed into a new code segment.

On a burst, the thread migrates to the core whose signature covers the
largest fraction of its recent misses (the segment already lives there);
if no core matches, it *expands* onto the least-recently-expanded,
shortest-queue core, spreading segments across the aggregate L1-I.  Each
migration charges ``migration_cycles`` and leaves the thread's L1-D
working set behind -- which is exactly why SLICC inflates data misses
and loses to STREX when cores are scarce (Fig. 5/6).

Threads beyond the active cap (``team_factor * cores``, paper: 2N) wait
in an arrival-order pool and are admitted as active threads finish.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.sched.base import Scheduler
from repro.sim.thread import TxnThread


class SliccScheduler(Scheduler):
    """Migration-based scheduler."""

    name = "slicc"

    #: Events per slice: small, so burst detection is responsive.
    SLICE_EVENTS = 64
    #: How many recent missed blocks form the signature probe.
    PROBE_BLOCKS = 8

    def __init__(self, engine):
        super().__init__(engine)
        config = engine.config
        self.params = config.slicc
        num_cores = config.num_cores
        self._queues: List[Deque[TxnThread]] = [
            deque() for _ in range(num_cores)
        ]
        self._pool: Deque[TxnThread] = deque(engine.threads)
        self.active_cap = max(
            num_cores, self.params.team_factor * num_cores
        )
        self._active = 0
        self._last_expand = [0] * num_cores
        self._expand_clock = 0
        # Per-thread count of blocks filled since its last migration.  A
        # thread expands to the next core only once it has filled a
        # cache-sized segment locally ("slices of cache size"): expanding
        # on the first miss burst would shred segments across cores.
        self.fill_limit = config.l1i.num_blocks
        self._fill: dict = {}
        self._cooldown: dict = {}
        self._type_order: dict = {}
        self.migrations = 0
        self.match_migrations = 0
        self.expand_migrations = 0
        self.bursts = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _entry_core(self, thread: TxnThread) -> int:
        """Core at which a transaction enters the pipeline.

        All threads of one type enter at the same core, so the first
        thread's ring walk lays that type's segments out across cores
        and every later same-type thread retraces it (Fig. 3(c)).
        Different types get different entry cores (SLICC-Pp groups
        transactions by their header-instruction address), which keeps
        one entry stage from serializing every pipeline.  Admitting
        threads on arbitrary cores instead would have every core fetch
        the first segment independently and no pipeline would form.
        """
        num_cores = len(self._queues)
        type_names = self._type_order.setdefault(
            thread.txn_type, len(self._type_order)
        )
        return type_names % num_cores

    def start(self) -> None:
        while self._pool and self._active < self.active_cap:
            thread = self._pool.popleft()
            entry = self._entry_core(thread)
            self._queues[entry].append(thread)
            self._active += 1
            self.wake(entry)

    def _admit(self, core: int) -> None:
        if self._pool:
            thread = self._pool.popleft()
            entry = self._entry_core(thread)
            self._queues[entry].append(thread)
            self._active += 1
            self.wake(entry)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def has_work(self, core: int) -> bool:
        return bool(self._queues[core])

    def run_slice(self, core: int) -> None:
        engine = self.engine
        queue = self._queues[core]
        if not queue:
            return
        thread = queue[0]
        engine.mark_started(core, thread)

        miss_log: List[int] = []
        executed = engine.run_events(
            core,
            thread,
            self.SLICE_EVENTS,
            miss_log=miss_log,
            stop_after_misses=self.params.miss_threshold,
        )
        tid = thread.thread_id
        if miss_log:
            self._fill[tid] = self._fill.get(tid, 0) + len(miss_log)
            recent = thread.recent_misses
            recent.extend(miss_log)
            if len(recent) > self.PROBE_BLOCKS:
                del recent[: len(recent) - self.PROBE_BLOCKS]

        if thread.finished:
            self._finish(core, thread)
            return

        cooldown = self._cooldown.get(tid, 0)
        if cooldown > 0:
            self._cooldown[tid] = cooldown - executed
            self._steal_to_idle(core)
            return

        if len(miss_log) >= self.params.miss_threshold:
            # Miss burst: the thread is fetching a code segment it does
            # not have locally.
            self.bursts += 1
            target = self._matched_target(core, thread)
            if target is not None:
                self.match_migrations += 1
                self._migrate(core, target, thread)
                return
            if self._fill.get(tid, 0) >= self.fill_limit:
                # The local L1-I is full of this thread's segment: slice
                # boundary -- expand onto the next core in the ring.
                dst = (core + 1) % len(self._queues)
                if dst != core:
                    self._expand_clock += 1
                    self._last_expand[dst] = self._expand_clock
                    self.expand_migrations += 1
                    self._migrate(core, dst, thread)
                    return
                # Single core: nowhere to expand; start a fresh segment.
                self._fill[tid] = 0
            # Cold but not yet cache-sized: keep filling here.
        # No rotation: a thread occupies its core until it migrates away
        # or finishes (hardware threads are not timer-multiplexed).
        # Waiting threads reach idle cores via OS-style load balancing.
        self._steal_to_idle(core)

    def _finish(self, core: int, thread: TxnThread) -> None:
        self.engine.mark_finished(core, thread)
        self._queues[core].popleft()
        self._active -= 1
        self._fill.pop(thread.thread_id, None)
        self._admit(core)
        self._steal_to_idle(core)

    def _steal_to_idle(self, core: int) -> None:
        """Move one waiting thread to an idle core (OS load balancing).

        Runs only when a core is completely idle, so in steady state --
        all pipeline stages busy -- it never fires; it parallelizes
        workloads whose threads never migrate on their own (MapReduce)
        and drains the admission transient.
        """
        queue = self._queues[core]
        if len(queue) <= 1:
            return
        # Only threads that have not started executing are eligible: a
        # mid-flight thread has cache affinity to the pipeline and
        # stealing it just forces a matched migration straight back.
        candidate = None
        for thread in reversed(queue):
            if thread.pos == 0:
                candidate = thread
                break
        if candidate is None:
            return
        for idle in range(len(self._queues)):
            if idle != core and not self._queues[idle]:
                queue.remove(candidate)
                cost = self.params.migration_cycles
                self.engine.charge(core, cost)
                self.engine.advance_clock(idle, self.engine.core_time[core])
                self._queues[idle].append(candidate)
                candidate.migrations += 1
                self.migrations += 1
                self._fill[candidate.thread_id] = 0
                self.wake(idle)
                return

    # ------------------------------------------------------------------
    # Migration machinery
    # ------------------------------------------------------------------
    def _matched_target(self, core: int,
                        thread: TxnThread) -> Optional[int]:
        """The remote core whose L1-I signature best covers the thread's
        recent misses, or None if no core clears the match threshold."""
        probe = thread.recent_misses[-self.PROBE_BLOCKS:]
        if not probe:
            return None
        l1is = self.engine.hier.l1i
        best_core = None
        best_score = 0.0
        for candidate in range(len(l1is)):
            if candidate == core:
                continue
            contains = l1is[candidate].contains
            score = sum(1 for block in probe if contains(block))
            score /= len(probe)
            if score > best_score:
                best_score = score
                best_core = candidate
        if best_core is not None and \
                best_score >= self.params.signature_match:
            return best_core
        return None

    def _migrate(self, src: int, dst: int, thread: TxnThread) -> None:
        engine = self.engine
        queue = self._queues[src]
        assert queue[0] is thread
        queue.popleft()
        # The context transfer occupies both cores and the interconnect.
        noc_cost = engine.hier.noc.latency(src, dst)
        cost = self.params.migration_cycles + noc_cost
        engine.charge(src, cost)
        engine.advance_clock(dst, engine.core_time[src])
        self._expand_clock += 1
        self._last_expand[dst] = self._expand_clock
        self._queues[dst].append(thread)
        thread.migrations += 1
        self.migrations += 1
        thread.recent_misses.clear()
        self._fill[thread.thread_id] = 0
        self._cooldown[thread.thread_id] = self.params.cooldown_events
        self.wake(dst)
