"""STREX: stratified transaction execution (Section 4).

The synchronization algorithm (Section 4.2), implemented literally:

1. Same-type transactions are grouped into teams (team formation unit)
   and each team is placed into the hardware thread queue of a core; the
   first transaction in the queue is the *lead*.
2. A per-core ``phaseID`` counter synchronizes execution.  Every L1-I
   block a transaction touches is tagged with the current phaseID (hit or
   miss).  Whenever the lead resumes execution, the phaseID increments.
3. A victim monitor watches L1-I evictions.  Evicting a block tagged with
   the *current* phaseID means the running transaction has started to
   destroy the code segment of the ongoing phase: it is context-switched
   to the back of the thread queue and the next transaction resumes.
4. If the lead terminates, the next thread in the queue becomes the lead.
5. Threads run round-robin until all complete; the core then takes the
   next team.

The phaseID tag lives in the auxiliary phaseID table (PIDT) -- here, the
per-block metadata tag of :class:`repro.cache.cache.Cache` -- and the
counter wraps modulo ``2**phase_bits`` (paper: 8-bit).  Context switches
save/restore architectural state to the nearest L2 slice, charged as
``context_switch_cycles``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.teams import Team, TeamFormationUnit
from repro.sched.base import Scheduler
from repro.sim.thread import TxnThread


class StrexCoreState:
    """Per-core STREX scheduler state (thread queue + phase machinery)."""

    __slots__ = ("queue", "lead", "phase", "lead_should_increment")

    def __init__(self) -> None:
        self.queue: Deque[TxnThread] = deque()
        self.lead: Optional[TxnThread] = None
        self.phase = 0
        self.lead_should_increment = True


class StrexScheduler(Scheduler):
    """The STREX thread scheduler unit."""

    name = "strex"
    uses_phase_tags = True

    def __init__(self, engine, team_size: Optional[int] = None,
                 slice_events: Optional[int] = None):
        super().__init__(engine)
        config = engine.config
        strex = config.strex
        self.team_size = team_size if team_size is not None \
            else strex.team_size
        self.slice_events = slice_events or engine.DEFAULT_SLICE_EVENTS
        self.phase_modulo = strex.phase_modulo
        self.context_switch_cycles = strex.context_switch_cycles
        self.min_progress = (
            strex.min_progress_events
            if strex.min_progress_events is not None
            else config.l1i.num_blocks
        )
        self._formation = TeamFormationUnit(self.team_size, strex.window)
        self._team_queue: Deque[Team] = deque()
        self._cores = [StrexCoreState()
                       for _ in range(config.num_cores)]
        self.teams_formed = 0
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def start(self) -> None:
        teams = self._formation.form_teams(self.engine.threads)
        self.teams_formed = len(teams)
        self._team_queue = deque(teams)
        for core in range(len(self._cores)):
            self._install_victim_monitor(core)
            self._next_team(core)

    def _install_victim_monitor(self, core: int) -> None:
        state = self._cores[core]
        engine = self.engine

        def on_victim(block: int, tag: int) -> None:
            if tag == state.phase:
                engine.switch_requested = True

        engine.hier.set_victim_callback(core, on_victim)

    def _next_team(self, core: int) -> None:
        state = self._cores[core]
        if not self._team_queue:
            return
        team = self._team_queue.popleft()
        state.queue = deque(team.threads)
        state.lead = state.queue[0]
        state.lead_should_increment = True

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def has_work(self, core: int) -> bool:
        return bool(self._cores[core].queue)

    def run_slice(self, core: int) -> None:
        engine = self.engine
        state = self._cores[core]
        if not state.queue:
            return
        thread = state.queue[0]
        engine.mark_started(core, thread)
        # Step 2: the lead's resumption advances the phase.
        if thread is state.lead and state.lead_should_increment:
            state.phase = (state.phase + 1) % self.phase_modulo
            state.lead_should_increment = False

        engine.switch_requested = False
        executed_events = 0
        while True:
            executed_events += engine.run_events(
                core,
                thread,
                self.slice_events,
                tag=state.phase,
                stop_on_switch=True,
            )
            if thread.finished or not engine.switch_requested:
                break
            # Forward-progress floor (Section 4.4.2): early divergence
            # evictions are absorbed until the thread has replayed one
            # phase segment's worth of block visits.
            if executed_events >= self.min_progress:
                break
            engine.switch_requested = False

        if thread.finished:
            engine.mark_finished(core, thread)
            state.queue.popleft()
            if thread is state.lead:
                # Step 4: the next thread in the queue becomes the lead.
                state.lead = state.queue[0] if state.queue else None
                state.lead_should_increment = True
            if not state.queue:
                # Step 6: the core becomes available for another team.
                self._next_team(core)
            return

        if engine.switch_requested:
            # Step 3: context switch; thread goes to the queue's end.
            engine.switch_requested = False
            if len(state.queue) > 1:
                state.queue.rotate(-1)
                engine.charge(core, self.context_switch_cycles)
                thread.context_switches += 1
                self.context_switches += 1
                if state.queue[0] is state.lead:
                    state.lead_should_increment = True
            else:
                # Alone on the core: no one to yield to; the "switch"
                # degenerates to continuing with a fresh phase.
                state.phase = (state.phase + 1) % self.phase_modulo
        # Quantum expiry without a switch: keep running the same thread
        # next slice (round-robin order is victim-driven, not timer
        # driven -- Section 4's point about regular intervals).
