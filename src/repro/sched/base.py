"""Scheduler interface and the conventional baseline.

A scheduler owns the mapping of threads to cores and reacts to the
events its mechanism cares about (STREX: phase-tagged victims; SLICC:
miss bursts).  The engine repeatedly asks the earliest-clock core's
scheduler to ``run_slice``; a slice ends when the scheduler's own switch
condition fires, the thread finishes, or the bounded quantum elapses.

The baseline models a conventional OLTP deployment (Section 2): each
transaction is assigned to a core where it runs to completion; a free
core takes the next transaction in arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.sim.thread import TxnThread


class Scheduler:
    """Base scheduler: subclasses implement the four hooks."""

    name = "abstract"

    #: Whether this scheduler stamps L1-I blocks with phaseID tags
    #: (STREX's PIDT).  The invariant oracles use it: a non-tagging
    #: scheduler must leave every cache tag at zero, a tagging one must
    #: keep tags inside ``[0, 2**phase_bits)``.
    uses_phase_tags = False

    def __init__(self, engine):
        self.engine = engine
        self._wakeups: List[int] = []

    def start(self) -> None:
        """Perform initial thread placement."""
        raise NotImplementedError

    def has_work(self, core: int) -> bool:
        """True if ``core`` has a runnable thread."""
        raise NotImplementedError

    def run_slice(self, core: int) -> None:
        """Run one bounded slice on ``core``."""
        raise NotImplementedError

    def wake(self, core: int) -> None:
        """Tell the engine that a parked core may have work now."""
        self._wakeups.append(core)

    def drain_wakeups(self) -> List[int]:
        """Engine-side: collect and clear pending wakeups."""
        if not self._wakeups:
            return []
        wakeups = self._wakeups
        self._wakeups = []
        return wakeups


class BaselineScheduler(Scheduler):
    """Conventional execution: run-to-completion, arrival-order FIFO."""

    name = "base"

    def __init__(self, engine, slice_events: Optional[int] = None):
        super().__init__(engine)
        self.slice_events = (
            slice_events or engine.DEFAULT_SLICE_EVENTS
        )
        self._pending: Deque[TxnThread] = deque(engine.threads)
        self._current: List[Optional[TxnThread]] = (
            [None] * engine.config.num_cores
        )

    def start(self) -> None:
        for core in range(self.engine.config.num_cores):
            self._dispatch(core)

    def _dispatch(self, core: int) -> None:
        if self._pending:
            thread = self._pending.popleft()
            self._current[core] = thread
            self.engine.mark_started(core, thread)

    def has_work(self, core: int) -> bool:
        return self._current[core] is not None

    def run_slice(self, core: int) -> None:
        thread = self._current[core]
        if thread is None:
            return
        self.engine.run_events(core, thread, self.slice_events)
        if thread.finished:
            self.engine.mark_finished(core, thread)
            self._current[core] = None
            self._dispatch(core)
