"""2-way SMT baseline (Section 4.4.4).

The paper notes that on real hardware 2-way SMT increases L1 misses
(instructions: +15% TPC-C / +7% TPC-E; data: +10% / +16%) because two
unrelated transactions share each core's L1s.  This scheduler models
that sharing: each core runs ``ways`` hardware contexts whose execution
interleaves at a fine grain with no switch cost, over the same private
L1s.

Only the cache-sharing effect is modelled -- the latency-hiding benefit
of SMT (issuing from the other context during a stall) is outside our
in-order replay, so this scheduler is used for the miss-rate comparison
of Section 4.4.4, not for throughput claims.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.sched.base import Scheduler
from repro.sim.thread import TxnThread


class SmtBaselineScheduler(Scheduler):
    """Run-to-completion with ``ways`` interleaved contexts per core."""

    name = "smt"

    #: Events per context before the round-robin switches (fine-grain
    #: interleave; hardware SMT alternates fetch slots).
    SMT_QUANTUM = 8

    def __init__(self, engine, ways: int = 2):
        if ways <= 0:
            raise ValueError("ways must be positive")
        super().__init__(engine)
        self.ways = ways
        num_cores = engine.config.num_cores
        self._pending: Deque[TxnThread] = deque(engine.threads)
        self._contexts: List[Deque[TxnThread]] = [
            deque() for _ in range(num_cores)
        ]

    def start(self) -> None:
        for core in range(len(self._contexts)):
            for _ in range(self.ways):
                self._admit(core)

    def _admit(self, core: int) -> None:
        """Admit the next transaction to a free hardware context.

        Contexts alternate between the two ends of the arrival queue:
        co-resident SMT threads are *unrelated* transactions (different
        types, different execution positions), which is what makes them
        fight over the shared L1s.  Admitting adjacent arrivals instead
        would co-schedule same-type transactions that constructively
        share code -- the aligned-execution effect STREX engineers
        deliberately, not what SMT provides by accident.
        """
        if not self._pending:
            return
        take_back = sum(len(c) for c in self._contexts) % 2 == 1
        thread = self._pending.pop() if take_back \
            else self._pending.popleft()
        self._contexts[core].append(thread)
        self.engine.mark_started(core, thread)

    def has_work(self, core: int) -> bool:
        return bool(self._contexts[core])

    def run_slice(self, core: int) -> None:
        contexts = self._contexts[core]
        if not contexts:
            return
        thread = contexts[0]
        self.engine.run_events(core, thread, self.SMT_QUANTUM)
        if thread.finished:
            self.engine.mark_finished(core, thread)
            contexts.popleft()
            self._admit(core)
            return
        # Hardware context switch: free.
        contexts.rotate(-1)
