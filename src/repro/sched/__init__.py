"""Schedulers: conventional baseline, STREX, SLICC, and the hybrid."""

from repro.sched.base import BaselineScheduler, Scheduler
from repro.sched.hybrid import HybridScheduler
from repro.sched.slicc import SliccScheduler
from repro.sched.smt import SmtBaselineScheduler
from repro.sched.strex import StrexScheduler

__all__ = [
    "BaselineScheduler",
    "Scheduler",
    "HybridScheduler",
    "SliccScheduler",
    "SmtBaselineScheduler",
    "StrexScheduler",
]
