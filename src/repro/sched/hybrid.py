"""The STREX+SLICC hybrid (Section 5.5).

SLICC wins when the aggregate L1-I capacity (one unit per core) covers
the workload's per-transaction footprints; STREX wins otherwise.  The
hybrid profiles the workload into an FPTable at startup (a rare event --
the paper re-profiles only on workload change or reconfiguration) and
then schedules *all* transactions with the winner:

    use SLICC  iff  num_cores + slack >= median type footprint (units)

The median reproduces the paper's reported switch points: TPC-C (type
footprints 12,14,11,14,11 -> median 12) selects SLICC only above 12
cores, i.e. at 16; TPC-E (7,9,9,5,9,8,8 -> median 8) selects SLICC at
eight cores and above, even though three types need nine ("these
transactions incur a few extra misses, however, the resulting throughput
is still slightly higher than STREX").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.fptable import FPTable, profile_fptable
from repro.sched.slicc import SliccScheduler
from repro.sched.strex import StrexScheduler


class HybridScheduler:
    """Profiles, decides, and delegates to STREX or SLICC."""

    name = "hybrid"

    def __init__(self, engine, fptable: Optional[FPTable] = None,
                 team_size: Optional[int] = None):
        self.engine = engine
        config = engine.config
        traces = [t.trace for t in engine.threads]
        self.fptable = fptable or profile_fptable(traces, config)
        threshold = self.fptable.median_units()
        self.use_slicc = (
            config.num_cores + config.hybrid.slack_units >= threshold
        )
        # team_size only shapes the STREX branch; SLICC sizes its own
        # teams from SliccConfig.team_factor.
        self.delegate = (
            SliccScheduler(engine) if self.use_slicc
            else StrexScheduler(engine, team_size=team_size)
        )
        self.decision = self.delegate.name

    @property
    def uses_phase_tags(self) -> bool:
        """Phase-ID tagging is a property of the chosen delegate."""
        return self.delegate.uses_phase_tags

    # Delegated engine hooks ------------------------------------------
    def start(self) -> None:
        self.delegate.start()

    def has_work(self, core: int) -> bool:
        return self.delegate.has_work(core)

    def run_slice(self, core: int) -> None:
        self.delegate.run_slice(core)

    def wake(self, core: int) -> None:
        self.delegate.wake(core)

    def drain_wakeups(self) -> List[int]:
        return self.delegate.drain_wakeups()
