"""MapReduce control workload (Table 1).

The paper includes CloudSuite's Hadoop/Mahout MapReduce job as a control:
its instruction footprint *fits* in the L1-I, so STREX (and every other
instruction-miss technique) should leave it unaffected -- context
switches should essentially never trigger.

We model one map/reduce task as a small code loop (well under one L1-I
unit) streaming over a private slab of input data, with a short reduce
phase that touches a small shared dictionary region.  The paper's job
splits the input across 300 threads; the task count here is a parameter
of the pool (the simulator schedules however many tasks the experiment
requests).
"""

from __future__ import annotations

import random

from repro.workloads.base import (
    TransactionTypeSpec,
    TxnContext,
    Workload,
)


class MapReduceWorkload(Workload):
    """Streaming map/reduce tasks with a sub-L1-I instruction footprint."""

    MIX = {"MapTask": 1.0}
    USES_TRANSACTIONS = False

    #: Total instruction footprint target, in L1-I units (well under 1).
    FOOTPRINT_UNITS = 0.55
    #: Data blocks streamed per map task.
    INPUT_BLOCKS_PER_TASK = 120
    #: Loop iterations (passes over the parse/map code) per task.
    PASSES = 6

    def __init__(self, blocks_per_unit: int, seed: int = 1013):
        super().__init__("MapReduce", blocks_per_unit, seed)

    def _build_schema(self) -> None:
        # Input corpus: a large streaming region, one slab per task,
        # allocated lazily in _make_context; plus a small shared
        # dictionary region for the reduce side.
        self._dict_base = self.db.space.allocate("mr.dictionary", 64)

    def _build_types(self) -> None:
        # The whole task pipeline shares a handful of small functions.
        share = self.FOOTPRINT_UNITS / 5.0
        self.register(TransactionTypeSpec(
            name="MapTask",
            target_units=self.FOOTPRINT_UNITS,
            wrappers={
                "read_split": share,
                "parse": share,
                "map_fn": share,
                "combine": share,
                "emit": share,
            },
            basic_functions=[],
            body=self._map_task,
        ))

    def _make_context(self, type_name: str, txn_id: int,
                      rng: random.Random) -> TxnContext:
        slab = self.db.space.allocate("mr.input",
                                      self.INPUT_BLOCKS_PER_TASK)
        return TxnContext(txn_id, {"slab": slab})

    def _map_task(self, sm, ctx, rng, wrappers) -> None:
        rec = sm.recorder
        slab = ctx.params["slab"]
        blocks_per_pass = self.INPUT_BLOCKS_PER_TASK // self.PASSES
        offset = 0
        for _ in range(self.PASSES):
            rec.execute(wrappers["read_split"])
            # The per-record loop: for each input block, re-run the small
            # parse+map kernel (the tiny, hot instruction footprint).
            for i in range(blocks_per_pass):
                rec.execute(
                    wrappers["parse"], [(slab + offset + i, 0)]
                )
                rec.execute(wrappers["map_fn"])
            rec.execute(
                wrappers["combine"],
                [(self._dict_base + rng.randrange(64), 1)
                 for _ in range(4)],
            )
            offset += blocks_per_pass
        rec.execute(wrappers["emit"])
