"""Workload suites: TPC-C, TPC-E and the MapReduce control."""

from repro.workloads.base import TransactionTypeSpec, TxnContext, Workload
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

__all__ = [
    "TransactionTypeSpec",
    "TxnContext",
    "Workload",
    "MapReduceWorkload",
    "TpccWorkload",
    "TpceWorkload",
]
