"""Workload suites: TPC-C, TPC-E and the MapReduce control.

:data:`WORKLOADS` is the canonical name registry used by the CLI and
the `repro.exp` experiment runner; :func:`make_workload` instantiates a
suite by name for a given code-layout granularity and seed.
"""

from typing import Callable, Dict

from repro.workloads.base import TransactionTypeSpec, TxnContext, Workload
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

#: Registered workload factories: name -> factory(blocks_per_unit, seed).
WORKLOADS: Dict[str, Callable[[int, int], Workload]] = {
    "tpcc": lambda blocks, seed: TpccWorkload(
        blocks, warehouses=1, seed=seed),
    "tpcc10": lambda blocks, seed: TpccWorkload(
        blocks, warehouses=10, seed=seed),
    "tpce": lambda blocks, seed: TpceWorkload(blocks, seed=seed),
    "mapreduce": lambda blocks, seed: MapReduceWorkload(blocks, seed=seed),
}


def make_workload(name: str, blocks_per_unit: int,
                  seed: int = 1013) -> Workload:
    """Instantiate a registered workload suite by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(blocks_per_unit, seed)


__all__ = [
    "TransactionTypeSpec",
    "TxnContext",
    "Workload",
    "MapReduceWorkload",
    "TpccWorkload",
    "TpceWorkload",
    "WORKLOADS",
    "make_workload",
]
