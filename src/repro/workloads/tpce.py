"""TPC-E workload (Table 1: brokerage house).

Implements the seven TPC-E transaction types the paper evaluates
(Fig. 4 / Table 3): Broker Volume, Customer Position, Market Watch,
Security Detail, Trade Status, Trade Update, Trade Lookup, over a
brokerage schema (customers, accounts, brokers, securities, trades,
holdings).  Footprints are calibrated to Table 3:

    Broker = 7, Customer = 9, Market = 9, Security = 5,
    Tr_Stat = 9, Tr_Upd = 8, Tr_Look = 8  (L1-I size units)

As in TPC-C, action wrappers are shared across types where the flows
call the same statements (the three Trade_* transactions all locate
trades through the same ``FIND_TRADES`` path, etc.), so cross-type code
overlap is substantial while each type keeps its Table 3 footprint.

The type mix approximates the TPC-E specification's read-heavy profile.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.workloads.base import (
    TransactionTypeSpec,
    TxnContext,
    Workload,
)

#: Shared action-wrapper sizes, in L1-I units.
WRAPPERS: Dict[str, float] = {
    "exec_glue": 0.60,
    "R_CUSTOMER": 0.40,
    "R_ACCOUNT": 0.40,
    "R_BROKER": 0.40,
    "R_SECURITY": 0.30,
    "R_TRADE": 0.40,
    "IT_HOLDING": 0.45,
    "IT_TRADE": 0.45,
    "FIND_TRADES": 0.50,
    "PRICE_ASSETS": 0.45,
    "U_TRADE": 0.45,
    "U_BROKER": 0.40,
    # Type-private logic, sized to land on Table 3.
    "bv_misc": 0.30,
    "cp_misc": 1.45,
    "mw_misc": 1.85,
    "sd_misc": 0.30,
    "ts_misc": 1.45,
    "tu_misc": 0.10,
    "tl_misc": 1.25,
}

#: Basic functions for the read-only TPC-E paths.
RO_FUNCS = [
    "sm.txn_begin", "sm.txn_commit", "sm.catalog",
    "sm.lock_acquire", "sm.lock_release", "sm.log_write",
    "sm.bufpool_fix", "sm.btree_traverse", "sm.rec_read",
]

#: Read-only paths that also range-scan.
RO_SCAN_FUNCS = RO_FUNCS + ["sm.index_scan"]

#: The read-write path (Trade Update).
RW_FUNCS = RO_SCAN_FUNCS + ["sm.rec_update"]


def _subset(*names: str) -> Dict[str, float]:
    return {name: WRAPPERS[name] for name in names}


def account_key(c: int, a: int) -> int:
    """Primary key of a customer account."""
    return c * 10 + a


def holding_key(c: int, a: int, s: int) -> int:
    """Primary key of a holding row."""
    return account_key(c, a) * 10_000 + s


def trade_key(t: int) -> int:
    """Primary key of a trade row."""
    return t


class TpceWorkload(Workload):
    """TPC-E over the mini storage manager.

    Args:
        blocks_per_unit: L1-I blocks per footprint unit.
        customers: scaled-down customer count (spec: 1000).
        securities: scaled-down security count.
        trades: pre-loaded trade history size.
        brokers: broker count.
        seed: master RNG seed.
    """

    MIX: Dict[str, float] = {
        "BrokerVolume": 0.05,
        "CustomerPosition": 0.13,
        "MarketWatch": 0.18,
        "SecurityDetail": 0.14,
        "TradeStatus": 0.19,
        "TradeUpdate": 0.12,
        "TradeLookup": 0.19,
    }

    ACCOUNTS_PER_CUSTOMER = 2
    HOLDINGS_PER_ACCOUNT = 4

    def __init__(self, blocks_per_unit: int, customers: int = 300,
                 securities: int = 500, trades: int = 3000,
                 brokers: int = 20, seed: int = 1013):
        self.customers = customers
        self.securities = securities
        self.trades = trades
        self.brokers = brokers
        super().__init__("TPC-E", blocks_per_unit, seed)

    # ------------------------------------------------------------------
    # Schema population
    # ------------------------------------------------------------------
    def _build_schema(self) -> None:
        db = self.db
        customer = db.create_table("CUSTOMER", records_per_page=4,
                                   span_blocks=3)
        account = db.create_table("ACCOUNT", records_per_page=4,
                                  span_blocks=2)
        broker = db.create_table("BROKER", span_blocks=2)
        security = db.create_table("SECURITY", records_per_page=4,
                                   span_blocks=2)
        trade = db.create_table("TRADE", records_per_page=4,
                                span_blocks=2)
        holding = db.create_table("HOLDING", records_per_page=4)
        rng = random.Random(7)

        for b in range(self.brokers):
            broker.insert(b, {"b_id": b, "volume": 0.0, "num_trades": 0})
        for s in range(self.securities):
            security.insert(s, {"s_id": s, "price": 10.0 + s % 90,
                                "volume": 0})
        for c in range(self.customers):
            customer.insert(c, {"c_id": c, "tier": 1 + c % 3})
            for a in range(self.ACCOUNTS_PER_CUSTOMER):
                account.insert(
                    account_key(c, a),
                    {"c_id": c, "broker": rng.randrange(self.brokers),
                     "balance": 10_000.0},
                )
                for _ in range(self.HOLDINGS_PER_ACCOUNT):
                    s = rng.randrange(self.securities)
                    holding.insert(holding_key(c, a, s),
                                   {"s_id": s, "qty": 100})
        for t in range(self.trades):
            trade.insert(
                trade_key(t),
                {"t_id": t, "c_id": rng.randrange(self.customers),
                 "s_id": rng.randrange(self.securities),
                 "status": "CMPT", "qty": 10 * (1 + t % 10)},
            )

    # ------------------------------------------------------------------
    # Transaction types
    # ------------------------------------------------------------------
    def _build_types(self) -> None:
        self.register(TransactionTypeSpec(
            name="BrokerVolume",
            target_units=7.0,
            wrappers=_subset("exec_glue", "R_BROKER", "IT_TRADE",
                             "bv_misc"),
            basic_functions=RO_SCAN_FUNCS,
            body=self._broker_volume,
        ))
        self.register(TransactionTypeSpec(
            name="CustomerPosition",
            target_units=9.0,
            wrappers=_subset("exec_glue", "R_CUSTOMER", "R_ACCOUNT",
                             "IT_HOLDING", "PRICE_ASSETS", "cp_misc"),
            basic_functions=RO_SCAN_FUNCS,
            body=self._customer_position,
        ))
        self.register(TransactionTypeSpec(
            name="MarketWatch",
            target_units=9.0,
            wrappers=_subset("exec_glue", "R_CUSTOMER", "IT_HOLDING",
                             "PRICE_ASSETS", "mw_misc"),
            basic_functions=RO_SCAN_FUNCS,
            body=self._market_watch,
        ))
        self.register(TransactionTypeSpec(
            name="SecurityDetail",
            target_units=5.0,
            wrappers=_subset("R_SECURITY", "sd_misc"),
            basic_functions=RO_FUNCS,
            body=self._security_detail,
        ))
        self.register(TransactionTypeSpec(
            name="TradeStatus",
            target_units=9.0,
            wrappers=_subset("exec_glue", "R_ACCOUNT", "FIND_TRADES",
                             "R_TRADE", "ts_misc"),
            basic_functions=RO_SCAN_FUNCS,
            body=self._trade_status,
        ))
        self.register(TransactionTypeSpec(
            name="TradeUpdate",
            target_units=8.0,
            wrappers=_subset("exec_glue", "FIND_TRADES", "U_TRADE",
                             "U_BROKER", "tu_misc"),
            basic_functions=RW_FUNCS,
            body=self._trade_update,
        ))
        self.register(TransactionTypeSpec(
            name="TradeLookup",
            target_units=8.0,
            wrappers=_subset("exec_glue", "FIND_TRADES", "R_TRADE",
                             "tl_misc"),
            basic_functions=RO_SCAN_FUNCS,
            body=self._trade_lookup,
        ))

    def _make_context(self, type_name: str, txn_id: int,
                      rng: random.Random) -> TxnContext:
        return TxnContext(txn_id, {
            "c": rng.randrange(self.customers),
            "a": rng.randrange(self.ACCOUNTS_PER_CUSTOMER),
            "s": rng.randrange(self.securities),
            "b": rng.randrange(self.brokers),
            "t": rng.randrange(self.trades),
            "n": rng.randint(2, 5),
        })

    # -- bodies -----------------------------------------------------------
    def _broker_volume(self, sm, ctx, rng, wrappers) -> None:
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        base = ctx.params["b"]
        rec.execute(wrappers["R_BROKER"])
        for offset in range(ctx.params["n"]):
            sm.index_lookup("BROKER", (base + offset) % self.brokers)
        rec.execute(wrappers["IT_TRADE"])
        t = ctx.params["t"]
        sm.index_scan("TRADE", max(0, t - 6), t, limit=6)
        rec.execute(wrappers["bv_misc"])

    def _customer_position(self, sm, ctx, rng, wrappers) -> None:
        c = ctx.params["c"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_CUSTOMER"])
        sm.index_lookup("CUSTOMER", c)
        rec.execute(wrappers["R_ACCOUNT"])
        sm.index_lookup("ACCOUNT", account_key(c, ctx.params["a"]))
        rec.execute(wrappers["IT_HOLDING"])
        sm.index_scan("HOLDING", holding_key(c, 0, 0),
                      holding_key(c, self.ACCOUNTS_PER_CUSTOMER, 0),
                      limit=8)
        rec.execute(wrappers["PRICE_ASSETS"])
        for _ in range(3):
            sm.index_lookup("SECURITY", rng.randrange(self.securities))
        rec.execute(wrappers["cp_misc"])

    def _market_watch(self, sm, ctx, rng, wrappers) -> None:
        c = ctx.params["c"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_CUSTOMER"])
        sm.index_lookup("CUSTOMER", c)
        rec.execute(wrappers["IT_HOLDING"])
        sm.index_scan("HOLDING", holding_key(c, 0, 0),
                      holding_key(c, self.ACCOUNTS_PER_CUSTOMER, 0),
                      limit=6)
        rec.execute(wrappers["PRICE_ASSETS"])
        for _ in range(ctx.params["n"]):
            sm.index_lookup("SECURITY", rng.randrange(self.securities))
        rec.execute(wrappers["mw_misc"])

    def _security_detail(self, sm, ctx, rng, wrappers) -> None:
        rec = sm.recorder
        rec.execute(wrappers["R_SECURITY"])
        sm.index_lookup("SECURITY", ctx.params["s"])
        sm.index_lookup("SECURITY", (ctx.params["s"] + 1)
                        % self.securities)
        rec.execute(wrappers["sd_misc"])

    def _trade_status(self, sm, ctx, rng, wrappers) -> None:
        c = ctx.params["c"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_ACCOUNT"])
        sm.index_lookup("ACCOUNT", account_key(c, ctx.params["a"]))
        rec.execute(wrappers["FIND_TRADES"])
        t = ctx.params["t"]
        sm.index_scan("TRADE", max(0, t - 10), t, limit=8)
        rec.execute(wrappers["R_TRADE"])
        sm.index_lookup("TRADE", t)
        rec.execute(wrappers["ts_misc"])

    def _trade_update(self, sm, ctx, rng, wrappers) -> None:
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["FIND_TRADES"])
        t = ctx.params["t"]
        sm.index_scan("TRADE", max(0, t - 4), t, limit=4)
        for offset in range(ctx.params["n"]):
            rec.execute(wrappers["U_TRADE"])
            sm.tuple_update("TRADE", (t + offset) % self.trades,
                            {"status": "UPDT"})
        rec.execute(wrappers["U_BROKER"])
        sm.tuple_update("BROKER", ctx.params["b"], {"num_trades": 1})
        rec.execute(wrappers["tu_misc"])

    def _trade_lookup(self, sm, ctx, rng, wrappers) -> None:
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["FIND_TRADES"])
        t = ctx.params["t"]
        sm.index_scan("TRADE", max(0, t - 8), t, limit=6)
        for offset in range(ctx.params["n"]):
            rec.execute(wrappers["R_TRADE"])
            sm.index_lookup("TRADE", (t + offset) % self.trades)
        rec.execute(wrappers["tl_misc"])
