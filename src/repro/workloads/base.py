"""Workload framework: transaction types, actions, and trace generation.

A :class:`TransactionType` is a named flow of *actions* (Fig. 1): each
action executes its own small wrapper code region and then calls storage
-manager basic functions.  Wrapper sizes are calibrated so that the
type's total instruction footprint -- shared basic-function code plus all
wrapper code -- matches the paper's Table 3 value in L1-I size units.

A :class:`Workload` owns the database, the code layout, and a set of
transaction types, and generates :class:`TransactionTrace` objects for
randomly parameterized transaction instances.  Traces are produced
serially (the paper likewise replays pre-collected traces) and replayed
concurrently by the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.db.codemap import (
    CodeLayout,
    CodeRegion,
    PrivateContext,
    TraceRecorder,
)
from repro.db.engine import BASIC_FUNCTION_UNITS, Database, StorageManager
from repro.trace.trace import TraceBuilder, TransactionTrace


@dataclass
class TransactionTypeSpec:
    """Static description of one transaction type.

    Attributes:
        name: type name (e.g. ``"NewOrder"``).
        target_units: Table 3 instruction footprint in L1-I units (for
            validation; the design footprint is the shared basic-function
            code this type calls plus its wrapper regions).
        wrappers: action-wrapper label -> size in L1-I units.  Wrapper
            labels are *workload-scoped*: two types listing the same
            label share the same code region -- this is the cross-type
            code overlap of Section 2.1/Fig. 1 ("New Order and Payment
            transactions perform index lookups on the same tables...
            their code paths are similar at first").
        basic_functions: names of shared basic-function regions this type
            exercises (for the design-footprint arithmetic).
        body: ``body(sm, ctx, rng, wrappers)`` runs the transaction logic
            against a :class:`StorageManager`.
    """

    name: str
    target_units: float
    wrappers: Dict[str, float]
    basic_functions: Sequence[str]
    body: Callable[..., None]

    def shared_units(self) -> float:
        """Footprint contributed by shared basic functions."""
        return sum(BASIC_FUNCTION_UNITS[f] for f in self.basic_functions)

    def design_units(self) -> float:
        """Design footprint: basic functions + all wrapper regions."""
        return self.shared_units() + sum(self.wrappers.values())


class TransactionType:
    """A spec bound to a workload's code layout (regions allocated)."""

    def __init__(self, spec: TransactionTypeSpec, workload_name: str,
                 layout: CodeLayout):
        self.spec = spec
        self.name = spec.name
        self.wrappers: Dict[str, CodeRegion] = {
            wrapper: layout.allocate(f"{workload_name}.{wrapper}", units)
            for wrapper, units in spec.wrappers.items()
        }

    def execute(self, sm: StorageManager, ctx: "TxnContext",
                rng: random.Random) -> None:
        """Run the transaction body."""
        self.spec.body(sm, ctx, rng, self.wrappers)


@dataclass
class TxnContext:
    """Per-instance transaction parameters chosen by the workload."""

    txn_id: int
    params: Dict[str, object] = field(default_factory=dict)


class Workload:
    """Base class for TPC-C / TPC-E / MapReduce workload suites.

    Subclasses populate the database in ``_build_schema`` and register
    transaction types in ``_build_types``; they also implement
    ``_make_context`` to draw per-instance parameters.

    Args:
        name: workload label (Table 1).
        blocks_per_unit: L1-I blocks per footprint unit
            (``SystemConfig.l1i_blocks``).
        seed: RNG seed for schema population and instance parameters.
    """

    #: Relative frequency of each transaction type in the default mix.
    MIX: Dict[str, float] = {}

    #: Whether instances run the transactional begin/commit path.
    #: MapReduce tasks are not database transactions and skip it.
    USES_TRANSACTIONS = True

    #: Private stack/buffer blocks per transaction instance.  Small, so
    #: that a whole STREX team's stacks coexist in one L1-D (architectural
    #: state itself is saved to the L2 on a context switch -- Section
    #: 4.4.2 -- so only the hot top-of-stack stays L1-resident).
    STACK_BLOCKS = 2

    #: Per-transaction scratch, as a multiple of the L1-D capacity: the
    #: cycle must exceed the cache at *any* scale so these accesses
    #: stream and miss under every scheduler; they set the baseline
    #: D-MPKI floor.
    SCRATCH_L1D_FACTOR = 1.5

    def __init__(self, name: str, blocks_per_unit: int, seed: int = 1013):
        self.name = name
        self.layout = CodeLayout(blocks_per_unit)
        self.db = Database(name, self.layout)
        self.rng = random.Random(seed)
        self.types: Dict[str, TransactionType] = {}
        self._next_txn_id = 0
        self._build_schema()
        self._build_types()

    # -- subclass hooks -------------------------------------------------
    def _build_schema(self) -> None:
        raise NotImplementedError

    def _build_types(self) -> None:
        raise NotImplementedError

    def _make_context(self, type_name: str, txn_id: int,
                      rng: random.Random) -> TxnContext:
        raise NotImplementedError

    # -- shared machinery ------------------------------------------------
    def register(self, spec: TransactionTypeSpec) -> None:
        """Bind a type spec to this workload's layout."""
        self.types[spec.name] = TransactionType(spec, self.name,
                                                self.layout)

    def type_names(self) -> List[str]:
        """Registered transaction type names."""
        return list(self.types)

    def generate_trace(self, type_name: str,
                       seed: Optional[int] = None) -> TransactionTrace:
        """Generate the trace of one new transaction instance."""
        txn_type = self.types[type_name]
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        rng = random.Random(
            seed if seed is not None else self.rng.randrange(2**31)
        )
        builder = TraceBuilder(txn_id, type_name)
        stack = PrivateContext(
            self.db.space.allocate("stacks", self.STACK_BLOCKS),
            self.STACK_BLOCKS,
        )
        scratch_blocks = int(self.SCRATCH_L1D_FACTOR
                             * self.layout.blocks_per_unit)
        scratch = PrivateContext(
            self.db.space.allocate("scratch", scratch_blocks),
            scratch_blocks,
        )
        recorder = TraceRecorder(builder, rng, context=stack,
                                 scratch=scratch)
        sm = StorageManager(self.db, txn_id, recorder, rng)
        ctx = self._make_context(type_name, txn_id, rng)
        if self.USES_TRANSACTIONS:
            sm.begin()
            txn_type.execute(sm, ctx, rng)
            sm.commit()
        else:
            txn_type.execute(sm, ctx, rng)
        return builder.build()

    def generate_mix(self, count: int,
                     mix: Optional[Dict[str, float]] = None,
                     seed: Optional[int] = None) -> List[TransactionTrace]:
        """Generate ``count`` traces drawn from a type mix."""
        mix = mix or self.MIX
        if not mix:
            raise ValueError("no mix defined for this workload")
        rng = random.Random(seed if seed is not None else
                            self.rng.randrange(2**31))
        names = list(mix)
        weights = [mix[n] for n in names]
        traces = []
        for _ in range(count):
            type_name = rng.choices(names, weights=weights)[0]
            traces.append(self.generate_trace(
                type_name, seed=rng.randrange(2**31)))
        return traces

    def generate_uniform(self, type_name: str, count: int,
                         seed: Optional[int] = None
                         ) -> List[TransactionTrace]:
        """Generate ``count`` instances of one type."""
        rng = random.Random(seed if seed is not None else
                            self.rng.randrange(2**31))
        return [
            self.generate_trace(type_name, seed=rng.randrange(2**31))
            for _ in range(count)
        ]


def run_wrapper(recorder: TraceRecorder, wrappers: Dict[str, CodeRegion],
                name: str) -> None:
    """Execute an action's wrapper region (helper for workload bodies)."""
    recorder.execute(wrappers[name])
