"""TPC-C workload (Table 1: TPC-C-1 and TPC-C-10).

Implements the five TPC-C transaction types over the storage-manager
substrate, following the action flows of the paper's Fig. 1 for New Order
and Payment and the TPC-C specification's outline for the rest.  Type
footprints are calibrated to Table 3:

    Delivery = 12, New Order = 14, Order (Status) = 11,
    Payment = 14, Stock (Level) = 11  (L1-I size units)

Action wrappers are *shared across types* where Fig. 1 shows common
actions -- New Order and Payment both begin with index lookups on the
Warehouse, District and Customer tables, so those actions execute the
same code regions and the two types overlap initially before diverging
(Section 2.1).  Most of each type's footprint is shared storage-engine
code (basic functions), as in a real DBMS.

The default mix follows the TPC-C specification's weighting, under which
New Order + Payment are ~88% of the transactions.

Scale is reduced relative to the real benchmark (fewer customers/items);
the quantities that matter to the paper -- instruction-footprint-to-L1
ratio and the data-sharing pattern -- are preserved (see DESIGN.md).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.workloads.base import (
    TransactionTypeSpec,
    TxnContext,
    Workload,
)

#: Composite-key encoding strides.
DISTRICTS_PER_WAREHOUSE = 10

#: Size of each shared action wrapper, in L1-I units.
ACTION_UNITS = 0.70

#: Shared executor glue (cursor management, result marshalling) that
#: every transaction type runs.
EXEC_GLUE_UNITS = 0.80

#: All TPC-C wrapper regions: label -> units.  Labels shared by several
#: types map to the same code region.
WRAPPERS: Dict[str, float] = {
    "exec_glue": EXEC_GLUE_UNITS,
    # Fig. 1 common prefix of New Order and Payment.
    "R_WAREHOUSE": ACTION_UNITS,
    "R_DISTRICT": ACTION_UNITS,
    "R_CUSTOMER": ACTION_UNITS,
    "U_DISTRICT": ACTION_UNITS,
    # New Order specific actions.
    "I_ORDER": ACTION_UNITS,
    "I_NEWORDER": ACTION_UNITS,
    "R_ITEM": ACTION_UNITS,
    "R_STOCK": ACTION_UNITS,
    "U_STOCK": ACTION_UNITS,
    "I_ORDERLINE": ACTION_UNITS,
    # Payment specific actions.  The customer is located either by last
    # name (IT over the name index) or by id (direct probe); the two
    # branches are alternative code paths of similar size, so instances
    # stay positionally aligned whichever branch they take.
    "U_WAREHOUSE": ACTION_UNITS,
    "IT_CUSTOMER": ACTION_UNITS,
    "R_CUSTOMER_BYID": ACTION_UNITS,
    "U_CUSTOMER": ACTION_UNITS,
    "I_HISTORY": ACTION_UNITS,
    # Delivery / Order Status / Stock Level actions.
    "IT_NEWORDER": ACTION_UNITS,
    "U_ORDER": ACTION_UNITS,
    "IT_ORDERLINE": ACTION_UNITS,
    "SUM_LINES": ACTION_UNITS,
    "R_ORDER": ACTION_UNITS,
    # Type-private logic sized to land each type on its Table 3 value.
    "pay_misc": 0.70,
    "dlv_misc": 1.90,
    "os_misc": 2.50,
    "sl_misc": 2.60,
}

#: Basic functions used by the read-write types (New Order, Payment).
RW_FUNCS = [
    "sm.txn_begin", "sm.txn_commit", "sm.catalog",
    "sm.lock_acquire", "sm.lock_release", "sm.log_write",
    "sm.bufpool_fix", "sm.btree_traverse", "sm.rec_read",
    "sm.rec_update", "sm.rec_insert", "sm.btree_insert",
]

#: Basic functions used by read-mostly types.
RO_FUNCS = [
    "sm.txn_begin", "sm.txn_commit", "sm.catalog",
    "sm.lock_acquire", "sm.lock_release", "sm.log_write",
    "sm.bufpool_fix", "sm.btree_traverse", "sm.rec_read",
    "sm.index_scan",
]


def _subset(*names: str) -> Dict[str, float]:
    return {name: WRAPPERS[name] for name in names}


def warehouse_key(w: int) -> int:
    """Primary key of a warehouse."""
    return w


def district_key(w: int, d: int) -> int:
    """Primary key of a district."""
    return w * 100 + d


def customer_key(w: int, d: int, c: int) -> int:
    """Primary key of a customer."""
    return (w * 100 + d) * 100_000 + c


def order_key(w: int, d: int, o: int) -> int:
    """Primary key of an order (also used for NEW_ORDER rows)."""
    return (w * 100 + d) * 1_000_000 + o


def order_line_key(w: int, d: int, o: int, line: int) -> int:
    """Primary key of an order line."""
    return order_key(w, d, o) * 100 + line


def stock_key(w: int, i: int) -> int:
    """Primary key of a stock row."""
    return w * 1_000_000 + i


class TpccWorkload(Workload):
    """TPC-C over the mini storage manager.

    Args:
        blocks_per_unit: L1-I blocks per footprint unit.
        warehouses: scale factor (1 for TPC-C-1, 10 for TPC-C-10).
        customers_per_district: scaled-down customer population.
        items: scaled-down item catalogue size.
        seed: master RNG seed.
    """

    MIX: Dict[str, float] = {
        "NewOrder": 0.45,
        "Payment": 0.43,
        "OrderStatus": 0.04,
        "Delivery": 0.04,
        "StockLevel": 0.04,
    }

    #: Scaled-down New Order line-count range (spec: 5..15).
    OL_CNT_RANGE = (3, 8)
    #: Districts processed per Delivery (spec: 10).
    DELIVERY_DISTRICTS = 4

    def __init__(self, blocks_per_unit: int, warehouses: int = 1,
                 customers_per_district: int = 300, items: int = 2000,
                 seed: int = 1013):
        if warehouses <= 0:
            raise ValueError("warehouses must be positive")
        self.warehouses = warehouses
        self.customers_per_district = customers_per_district
        self.items = items
        self._next_order: Dict[int, int] = {}
        name = f"TPC-C-{warehouses}"
        super().__init__(name, blocks_per_unit, seed)

    # ------------------------------------------------------------------
    # Schema population
    # ------------------------------------------------------------------
    def _build_schema(self) -> None:
        db = self.db
        warehouse = db.create_table("WAREHOUSE", span_blocks=2)
        district = db.create_table("DISTRICT", span_blocks=2)
        customer = db.create_table("CUSTOMER", records_per_page=4,
                                   span_blocks=4)
        item = db.create_table("ITEM", records_per_page=8)
        stock = db.create_table("STOCK", records_per_page=4,
                                span_blocks=3)
        db.create_table("ORDERS", records_per_page=4, span_blocks=2)
        db.create_table("NEW_ORDER", records_per_page=8)
        db.create_table("ORDER_LINE", records_per_page=4)
        db.create_table("HISTORY", records_per_page=8)

        for w in range(self.warehouses):
            warehouse.insert(warehouse_key(w),
                             {"w_id": w, "ytd": 0.0, "tax": 0.05})
            for d in range(DISTRICTS_PER_WAREHOUSE):
                district.insert(
                    district_key(w, d),
                    {"d_id": d, "w_id": w, "ytd": 0.0, "next_o_id": 0},
                )
                self._next_order[district_key(w, d)] = 0
                for c in range(self.customers_per_district):
                    customer.insert(
                        customer_key(w, d, c),
                        {"c_id": c, "balance": 0.0, "payments": 0,
                         "deliveries": 0},
                    )
            for i in range(self.items):
                stock.insert(stock_key(w, i),
                             {"i_id": i, "quantity": 50, "ytd": 0})
        for i in range(self.items):
            item.insert(i, {"i_id": i, "price": 1.0 + (i % 100) / 10.0})

    # ------------------------------------------------------------------
    # Transaction types
    # ------------------------------------------------------------------
    def _build_types(self) -> None:
        self.register(TransactionTypeSpec(
            name="NewOrder",
            target_units=14.0,
            wrappers=_subset(
                "exec_glue", "R_WAREHOUSE", "R_DISTRICT", "R_CUSTOMER",
                "U_DISTRICT", "I_ORDER", "I_NEWORDER", "R_ITEM",
                "R_STOCK", "U_STOCK", "I_ORDERLINE",
            ),
            basic_functions=RW_FUNCS,
            body=self._new_order,
        ))
        self.register(TransactionTypeSpec(
            name="Payment",
            target_units=14.0,
            wrappers=_subset(
                "exec_glue", "R_WAREHOUSE", "U_WAREHOUSE", "R_DISTRICT",
                "U_DISTRICT", "IT_CUSTOMER", "R_CUSTOMER_BYID",
                "R_CUSTOMER", "U_CUSTOMER", "I_HISTORY", "pay_misc",
            ),
            basic_functions=RW_FUNCS + ["sm.index_scan"],
            body=self._payment,
        ))
        self.register(TransactionTypeSpec(
            name="OrderStatus",
            target_units=11.0,
            wrappers=_subset(
                "exec_glue", "IT_CUSTOMER", "R_CUSTOMER", "R_ORDER",
                "IT_ORDERLINE", "os_misc",
            ),
            basic_functions=RO_FUNCS,
            body=self._order_status,
        ))
        self.register(TransactionTypeSpec(
            name="Delivery",
            target_units=12.0,
            wrappers=_subset(
                "exec_glue", "IT_NEWORDER", "U_ORDER", "IT_ORDERLINE",
                "SUM_LINES", "U_CUSTOMER", "dlv_misc",
            ),
            basic_functions=RO_FUNCS + ["sm.rec_update"],
            body=self._delivery,
        ))
        self.register(TransactionTypeSpec(
            name="StockLevel",
            target_units=11.0,
            wrappers=_subset(
                "exec_glue", "R_DISTRICT", "IT_ORDERLINE", "R_STOCK",
                "sl_misc",
            ),
            basic_functions=RO_FUNCS,
            body=self._stock_level,
        ))

    def _make_context(self, type_name: str, txn_id: int,
                      rng: random.Random) -> TxnContext:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(self.customers_per_district)
        params: Dict[str, object] = {"w": w, "d": d, "c": c}
        if type_name == "NewOrder":
            ol_cnt = rng.randint(*self.OL_CNT_RANGE)
            params["ol_cnt"] = ol_cnt
            params["items"] = [rng.randrange(self.items)
                               for _ in range(ol_cnt)]
        elif type_name == "Payment":
            params["by_name"] = rng.random() < 0.6
            params["amount"] = round(1.0 + rng.random() * 4999.0, 2)
        return TxnContext(txn_id, params)

    # -- New Order (Fig. 1, left) ---------------------------------------
    def _new_order(self, sm, ctx, rng, wrappers) -> None:
        w = ctx.params["w"]
        d = ctx.params["d"]
        c = ctx.params["c"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_WAREHOUSE"])
        sm.index_lookup("WAREHOUSE", warehouse_key(w))
        rec.execute(wrappers["R_DISTRICT"])
        district = sm.index_lookup("DISTRICT", district_key(w, d),
                                   for_update=True)
        rec.execute(wrappers["R_CUSTOMER"])
        sm.index_lookup("CUSTOMER", customer_key(w, d, c))
        rec.execute(wrappers["U_DISTRICT"])
        o_id = self._next_order[district_key(w, d)]
        self._next_order[district_key(w, d)] = o_id + 1
        next_o_id = (district["next_o_id"] if district else o_id) + 1
        sm.tuple_update("DISTRICT", district_key(w, d),
                        {"next_o_id": next_o_id})
        rec.execute(wrappers["I_ORDER"])
        sm.tuple_insert("ORDERS", order_key(w, d, o_id),
                        {"o_id": o_id, "c_id": c, "carrier": None,
                         "ol_cnt": ctx.params["ol_cnt"]})
        rec.execute(wrappers["I_NEWORDER"])
        sm.tuple_insert("NEW_ORDER", order_key(w, d, o_id),
                        {"o_id": o_id})
        for line, i_id in enumerate(ctx.params["items"]):
            rec.execute(wrappers["R_ITEM"])
            item = sm.index_lookup("ITEM", i_id)
            rec.execute(wrappers["R_STOCK"])
            stock = sm.index_lookup("STOCK", stock_key(w, i_id),
                                    for_update=True)
            rec.execute(wrappers["U_STOCK"])
            quantity = stock["quantity"] if stock else 50
            new_quantity = quantity - 5 if quantity > 14 else quantity + 86
            sm.tuple_update("STOCK", stock_key(w, i_id),
                            {"quantity": new_quantity})
            rec.execute(wrappers["I_ORDERLINE"])
            price = item["price"] if item else 1.0
            sm.tuple_insert("ORDER_LINE",
                            order_line_key(w, d, o_id, line),
                            {"o_id": o_id, "i_id": i_id, "price": price})

    # -- Payment (Fig. 1, right) ----------------------------------------
    def _payment(self, sm, ctx, rng, wrappers) -> None:
        w = ctx.params["w"]
        d = ctx.params["d"]
        c = ctx.params["c"]
        amount = ctx.params["amount"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_WAREHOUSE"])
        sm.index_lookup("WAREHOUSE", warehouse_key(w), for_update=True)
        rec.execute(wrappers["U_WAREHOUSE"])
        sm.tuple_update("WAREHOUSE", warehouse_key(w), {"ytd": amount})
        rec.execute(wrappers["R_DISTRICT"])
        sm.index_lookup("DISTRICT", district_key(w, d), for_update=True)
        rec.execute(wrappers["U_DISTRICT"])
        sm.tuple_update("DISTRICT", district_key(w, d), {"ytd": amount})
        if ctx.params["by_name"]:
            # IT(CUST): locate the customer by last name (Fig. 1's
            # conditional index scan).
            rec.execute(wrappers["IT_CUSTOMER"])
            base = customer_key(w, d, max(0, c - 2))
            sm.index_scan("CUSTOMER", base, customer_key(w, d, c),
                          limit=4)
        else:
            # The by-id path: key-derivation executor code of similar
            # size; the actual probe is the R(CUSTOMER) action below.
            rec.execute(wrappers["R_CUSTOMER_BYID"])
            sm.index_scan("CUSTOMER", customer_key(w, d, c),
                          customer_key(w, d, c), limit=1)
        rec.execute(wrappers["R_CUSTOMER"])
        customer = sm.index_lookup("CUSTOMER", customer_key(w, d, c),
                                   for_update=True)
        rec.execute(wrappers["U_CUSTOMER"])
        balance = (customer["balance"] if customer else 0.0) - amount
        sm.tuple_update("CUSTOMER", customer_key(w, d, c),
                        {"balance": balance})
        rec.execute(wrappers["I_HISTORY"])
        sm.tuple_insert("HISTORY", ctx.txn_id,
                        {"c_id": c, "amount": amount})
        rec.execute(wrappers["pay_misc"])

    # -- Order Status -----------------------------------------------------
    def _order_status(self, sm, ctx, rng, wrappers) -> None:
        w = ctx.params["w"]
        d = ctx.params["d"]
        c = ctx.params["c"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["IT_CUSTOMER"])
        sm.index_scan("CUSTOMER", customer_key(w, d, max(0, c - 1)),
                      customer_key(w, d, c), limit=3)
        rec.execute(wrappers["R_CUSTOMER"])
        sm.index_lookup("CUSTOMER", customer_key(w, d, c))
        rec.execute(wrappers["R_ORDER"])
        last = max(0, self._next_order.get(district_key(w, d), 1) - 1)
        sm.index_lookup("ORDERS", order_key(w, d, last))
        rec.execute(wrappers["IT_ORDERLINE"])
        sm.index_scan("ORDER_LINE", order_line_key(w, d, last, 0),
                      order_line_key(w, d, last, 99), limit=8)
        rec.execute(wrappers["os_misc"])

    # -- Delivery ---------------------------------------------------------
    def _delivery(self, sm, ctx, rng, wrappers) -> None:
        w = ctx.params["w"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        for d in range(self.DELIVERY_DISTRICTS):
            rec.execute(wrappers["IT_NEWORDER"])
            last = max(0, self._next_order.get(district_key(w, d), 1) - 1)
            found = sm.index_scan("NEW_ORDER", order_key(w, d, 0),
                                  order_key(w, d, last), limit=1)
            if found:
                # The oldest undelivered order leaves NEW_ORDER.
                sm.tuple_delete("NEW_ORDER",
                                order_key(w, d, found[0]["o_id"]))
            rec.execute(wrappers["U_ORDER"])
            sm.tuple_update("ORDERS", order_key(w, d, last),
                            {"carrier": 7})
            rec.execute(wrappers["IT_ORDERLINE"])
            sm.index_scan("ORDER_LINE", order_line_key(w, d, last, 0),
                          order_line_key(w, d, last, 99), limit=8)
            rec.execute(wrappers["SUM_LINES"])
            rec.execute(wrappers["U_CUSTOMER"])
            c = rng.randrange(self.customers_per_district)
            sm.tuple_update("CUSTOMER", customer_key(w, d, c),
                            {"deliveries": 1})
        rec.execute(wrappers["dlv_misc"])

    # -- Stock Level --------------------------------------------------------
    def _stock_level(self, sm, ctx, rng, wrappers) -> None:
        w = ctx.params["w"]
        d = ctx.params["d"]
        rec = sm.recorder
        rec.execute(wrappers["exec_glue"])
        rec.execute(wrappers["R_DISTRICT"])
        sm.index_lookup("DISTRICT", district_key(w, d))
        rec.execute(wrappers["IT_ORDERLINE"])
        last = max(0, self._next_order.get(district_key(w, d), 1) - 1)
        lo = max(0, last - 5)
        sm.index_scan("ORDER_LINE", order_line_key(w, d, lo, 0),
                      order_line_key(w, d, last, 99), limit=12)
        rec.execute(wrappers["R_STOCK"])
        for _ in range(4):
            i_id = rng.randrange(self.items)
            sm.index_lookup("STOCK", stock_key(w, i_id))
        rec.execute(wrappers["sl_misc"])
