"""Transaction latency distributions (Section 5.4, Fig. 7).

A transaction's latency is the number of cycles from entering the
transaction queue until it completes.  Fig. 7 plots the latency
histogram for the baseline, STREX as a function of team size
(STREX-2T..20T), and SLICC as a function of core count (SLICC-2..16);
the legend reports mean latencies in M-cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class LatencyDistribution:
    """A labelled latency histogram."""

    label: str
    latencies: List[int]

    @property
    def mean_mcycles(self) -> float:
        """Mean latency in mega-cycles (Fig. 7's legend values)."""
        if not self.latencies:
            return 0.0
        return float(np.mean(self.latencies)) / 1e6

    @property
    def p50_mcycles(self) -> float:
        """Median latency in mega-cycles."""
        if not self.latencies:
            return 0.0
        return float(np.median(self.latencies)) / 1e6

    @property
    def p95_mcycles(self) -> float:
        """95th-percentile latency in mega-cycles."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, 95)) / 1e6

    def histogram(self, bin_mcycles: float = 2.0,
                  max_mcycles: float = 50.0) -> List[float]:
        """Frequency per latency bin, normalized to sum to 1.

        Mirrors Fig. 7's x-axis: fixed-width bins up to ``max_mcycles``
        with a final "More" bucket.
        """
        if not self.latencies:
            return []
        edges = list(np.arange(0.0, max_mcycles, bin_mcycles)) \
            + [max_mcycles, float("inf")]
        values = np.asarray(self.latencies, dtype=float) / 1e6
        counts, _ = np.histogram(values, bins=edges)
        total = counts.sum()
        if total == 0:
            return [0.0] * len(counts)
        return (counts / total).tolist()


def compare_distributions(distributions: Sequence[LatencyDistribution]
                          ) -> str:
    """Multi-line text table of latency statistics."""
    lines = [f"{'config':>14} {'mean':>8} {'p50':>8} {'p95':>8}  (M-cycles)"]
    for dist in distributions:
        lines.append(
            f"{dist.label:>14} {dist.mean_mcycles:8.2f} "
            f"{dist.p50_mcycles:8.2f} {dist.p95_mcycles:8.2f}"
        )
    return "\n".join(lines)
