"""Text rendering of experiment results: tables and ASCII bar charts.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable
in a terminal (no plotting dependencies).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
        rendered = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(str(h).rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for rendered in rendered_rows:
        lines.append(
            "  ".join(rendered[i].rjust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def bar_chart(values: Mapping[str, float], width: int = 48,
              title: str = "") -> str:
    """Render a horizontal ASCII bar chart."""
    if not values:
        return title
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.2f}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      width: int = 40, title: str = "") -> str:
    """Render groups of bars (e.g. per core count, per scheduler)."""
    lines = [title] if title else []
    peak = max(
        (value for group in groups.values() for value in group.values()),
        default=1.0,
    ) or 1.0
    for group_label, group in groups.items():
        lines.append(f"{group_label}:")
        label_width = max(len(label) for label in group)
        for label, value in group.items():
            bar = "#" * max(0, round(width * value / peak))
            lines.append(f"  {label.rjust(label_width)} | {bar} {value:.2f}")
    return "\n".join(lines)


def percent_delta(before: float, after: float) -> float:
    """Relative change in percent (negative means a reduction)."""
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before


def comparison_summary(results: Dict[str, float],
                       baseline_key: str) -> str:
    """One line per entry with the delta versus a named baseline."""
    base = results[baseline_key]
    lines = []
    for key, value in results.items():
        if key == baseline_key:
            lines.append(f"{key}: {value:.3f} (baseline)")
        else:
            delta = percent_delta(base, value)
            lines.append(f"{key}: {value:.3f} ({delta:+.1f}% vs "
                         f"{baseline_key})")
    return "\n".join(lines)
