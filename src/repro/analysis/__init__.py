"""Analysis utilities: temporal overlap (Fig. 2), latency
distributions (Fig. 7), and text report rendering."""

from repro.analysis.latency import LatencyDistribution, compare_distributions
from repro.analysis.overlap import (BANDS, OverlapAnalysis,
                                    OverlapInterval, summarize)
from repro.analysis.report import bar_chart, format_table, grouped_bar_chart

__all__ = [
    "LatencyDistribution",
    "compare_distributions",
    "BANDS",
    "OverlapAnalysis",
    "OverlapInterval",
    "summarize",
    "bar_chart",
    "format_table",
    "grouped_bar_chart",
]
