"""Temporal overlap analysis (Section 2.2, Fig. 2).

Sixteen randomly chosen same-type transactions execute concurrently, one
per core, each over a private L1-I at one instruction per cycle.  Every
100 instructions per core, the unique instruction blocks that each core
touched during the interval are checked against the other cores' caches:
the *overlap* of a block is the number of L1-I caches containing it.
The figure plots, over time, the fraction of touched blocks in the
overlap bands {1, <5, <10, >=10}; measurement stops when at least half
of the threads complete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cache.cache import Cache
from repro.config import SystemConfig
from repro.trace.trace import TransactionTrace

#: Band labels in plotting order (Fig. 2's legend).
BANDS = ("1", "<5", "<10", ">=10")


def _band(count: int) -> str:
    if count >= 10:
        return ">=10"
    if count >= 5:
        return "<10"
    if count >= 2:
        return "<5"
    return "1"


@dataclass
class OverlapInterval:
    """One measurement interval of the overlap experiment."""

    kilo_instructions: float
    fractions: Dict[str, float] = field(default_factory=dict)

    def fraction(self, band: str) -> float:
        """Fraction of touched blocks whose overlap falls in ``band``."""
        return self.fractions.get(band, 0.0)

    def to_dict(self) -> dict:
        return {"kilo_instructions": self.kilo_instructions,
                "fractions": dict(self.fractions)}

    @classmethod
    def from_dict(cls, data: dict) -> "OverlapInterval":
        return cls(kilo_instructions=data["kilo_instructions"],
                   fractions=dict(data["fractions"]))


@dataclass
class OverlapResult:
    """The full time series of one Fig. 2 overlap experiment.

    The serialized form this exposes (:meth:`to_dict` /
    :meth:`from_dict`, bit-identical round trip) is what lets overlap
    runs live in the content-addressed result cache next to ordinary
    simulation results (``RunSpec(mode="overlap")``).
    """

    txn_type: str
    intervals: List[OverlapInterval] = field(default_factory=list)

    def summarize(self) -> Dict[str, float]:
        """Time-averaged band fractions over the whole run."""
        return summarize(self.intervals)

    def summarize_early(self, fraction: float = 1 / 3) -> Dict[str, float]:
        """Band fractions over the first ``fraction`` of the run."""
        count = max(1, int(len(self.intervals) * fraction))
        return summarize(self.intervals[:count])

    def to_dict(self) -> dict:
        return {"txn_type": self.txn_type,
                "intervals": [i.to_dict() for i in self.intervals]}

    @classmethod
    def from_dict(cls, data: dict) -> "OverlapResult":
        return cls(
            txn_type=data["txn_type"],
            intervals=[OverlapInterval.from_dict(i)
                       for i in data["intervals"]],
        )


class OverlapAnalysis:
    """Runs Fig. 2's experiment for one transaction type.

    Args:
        config: system config (supplies L1-I geometry).
        interval_instructions: instructions per core per interval
            (paper: 100).
    """

    def __init__(self, config: SystemConfig,
                 interval_instructions: int = 100):
        self.config = config
        self.interval_instructions = interval_instructions

    def run(self, traces: Sequence[TransactionTrace]
            ) -> List[OverlapInterval]:
        """Execute the traces in lockstep and measure overlap bands."""
        num_cores = len(traces)
        if num_cores < 2:
            raise ValueError("overlap analysis needs at least two traces")
        rng = random.Random(self.config.seed)
        caches = [
            Cache(self.config.l1i, rng=random.Random(rng.randrange(2**31)))
            for _ in range(num_cores)
        ]
        positions = [0] * num_cores
        budgets = [0] * num_cores
        intervals: List[OverlapInterval] = []
        elapsed_instructions = 0

        def alive(core: int) -> bool:
            return positions[core] < len(traces[core])

        while sum(1 for c in range(num_cores) if alive(c)) \
                > num_cores // 2:
            touched: List[set] = [set() for _ in range(num_cores)]
            for core in range(num_cores):
                budgets[core] += self.interval_instructions
                trace = traces[core]
                # Plain-int list views regardless of the trace's column
                # backing (loaded traces keep NumPy arrays).
                iblocks, ilens = trace.event_columns()[:2]
                pos = positions[core]
                cache = caches[core]
                while pos < len(trace) and budgets[core] > 0:
                    block = iblocks[pos]
                    budgets[core] -= ilens[pos]
                    cache.access(block)
                    touched[core].add(block)
                    pos += 1
                positions[core] = pos
            elapsed_instructions += self.interval_instructions
            counts: Dict[str, int] = {band: 0 for band in BANDS}
            total = 0
            for core in range(num_cores):
                for block in touched[core]:
                    overlap = sum(
                        1 for other in range(num_cores)
                        if caches[other].contains(block)
                    )
                    counts[_band(overlap)] += 1
                    total += 1
            if total:
                intervals.append(OverlapInterval(
                    kilo_instructions=elapsed_instructions / 1000.0,
                    fractions={
                        band: counts[band] / total for band in BANDS
                    },
                ))
        return intervals


def summarize(intervals: Sequence[OverlapInterval]) -> Dict[str, float]:
    """Time-averaged band fractions (the claims quoted in Section 2.2)."""
    if not intervals:
        return {band: 0.0 for band in BANDS}
    result = {}
    for band in BANDS:
        result[band] = sum(i.fraction(band) for i in intervals) \
            / len(intervals)
    result["five_or_more"] = result["<10"] + result[">=10"]
    return result
