"""System configuration for the STREX reproduction.

The dataclasses here mirror Table 2 of the paper (the simulated CMP) plus
the knobs that govern STREX, SLICC, the hybrid selector, and the synthetic
workload scale.  Two presets are provided:

* :func:`paper_scale` -- the paper's parameters (32 KiB L1, 1 MiB/core L2).
* :func:`default_scale` -- a proportionally scaled-down system (8 KiB L1)
  used by the test-suite and benchmark harness so that pure-Python runs
  finish in seconds.  All footprints are expressed in *L1-size units*, so
  the miss behaviour that the paper's evaluation depends on is preserved.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


BLOCK_SIZE = 64
"""Cache block size in bytes (fixed; the paper uses 64 B everywhere)."""

BLOCK_SHIFT = 6
"""log2(BLOCK_SIZE); addresses are converted to blocks via ``addr >> 6``."""


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of a single cache.

    Attributes:
        size_bytes: total capacity in bytes.
        assoc: number of ways per set.
        block_bytes: line size in bytes.
        hit_latency: load-to-use latency in cycles.
        replacement: policy name registered in ``repro.cache.replacement``.
    """

    size_bytes: int
    assoc: int = 8
    block_bytes: int = BLOCK_SIZE
    hit_latency: int = 3
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.block_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.assoc * self.block_bytes) != 0:
            raise ValueError(
                "size_bytes must be a multiple of assoc * block_bytes"
            )
        if self.hit_latency < 0:
            raise ValueError("hit_latency must be >= 0")

    @property
    def num_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_blocks // self.assoc


@dataclass(frozen=True)
class MemoryConfig:
    """DDR3-lite DRAM timing (Table 2, Memory row).

    The paper lists full DDR3-1600 timing; we keep the parameters that
    matter at block-run granularity: a base access latency plus row-buffer
    effects across a small number of banks.
    """

    base_latency: int = 105  # ~42 ns at 2.5 GHz
    row_hit_latency: int = 55
    num_channels: int = 2
    num_banks: int = 8
    row_bytes: int = 8192
    open_page: bool = True

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.row_hit_latency < 0:
            raise ValueError("DRAM latencies must be >= 0")
        if self.num_channels <= 0 or self.num_banks <= 0 \
                or self.row_bytes <= 0:
            raise ValueError("DRAM geometry must be positive")


@dataclass(frozen=True)
class NocConfig:
    """2D torus interconnect (Table 2, Interconnect row)."""

    hop_latency: int = 1
    router_latency: int = 0

    def __post_init__(self) -> None:
        if self.hop_latency < 0 or self.router_latency < 0:
            raise ValueError("NoC latencies must be >= 0")


@dataclass(frozen=True)
class StrexConfig:
    """STREX mechanism parameters (Sections 4.2--4.3).

    Attributes:
        team_size: maximum transactions per team (thread-queue depth).
        window: team-formation search window (paper: 30 in-flight txns).
        phase_bits: width of the phaseID tag / counter (paper: 8).
        context_switch_cycles: cost of one save+restore via the local L2
            slice.
        min_progress_events: forward-progress floor, in instruction-block
            visits, before a context switch is honoured.  Section 4.4.2:
            "An implementation may choose to enforce a minimum number of
            instructions or cycles that a transaction ought to execute
            before a context switch is allowed."  ``None`` (the default)
            auto-sizes it to one L1-I's worth of block visits, which lets
            followers absorb divergence misses and replay a full phase
            segment per turn; 0 disables the floor.
    """

    team_size: int = 10
    window: int = 30
    phase_bits: int = 8
    context_switch_cycles: int = 120
    min_progress_events: int | None = None

    def __post_init__(self) -> None:
        if self.team_size <= 0 or self.window <= 0:
            raise ValueError("team_size and window must be positive")
        if not 1 <= self.phase_bits <= 30:
            raise ValueError("phase_bits must be in [1, 30]")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be >= 0")
        if self.min_progress_events is not None \
                and self.min_progress_events < 0:
            raise ValueError("min_progress_events must be >= 0 or None")

    @property
    def phase_modulo(self) -> int:
        """Modulus of the phaseID counter (2**phase_bits)."""
        return 1 << self.phase_bits


@dataclass(frozen=True)
class SliccConfig:
    """SLICC migration parameters (modelled after Atta et al., MICRO'12).

    Attributes:
        miss_window: number of recent instruction-block fetches tracked.
        miss_threshold: misses within the window that signal a new segment.
        migration_cycles: cost of migrating a context between cores.
        signature_match: fraction of recent missed blocks that must hit in
            a remote core's signature to justify migrating there.
        team_factor: SLICC forms teams of up to ``team_factor * cores``
            threads (paper: 2N).
        cooldown_events: block visits a thread must execute after a
            migration before the burst detector re-arms (suppresses
            ping-pong between cores holding interleaved region copies).
    """

    miss_window: int = 16
    miss_threshold: int = 4
    migration_cycles: int = 50
    signature_match: float = 0.5
    team_factor: int = 2
    cooldown_events: int = 24

    def __post_init__(self) -> None:
        if self.miss_window <= 0 or self.miss_threshold <= 0 \
                or self.team_factor <= 0:
            raise ValueError(
                "miss_window, miss_threshold and team_factor must be "
                "positive"
            )
        if self.migration_cycles < 0 or self.cooldown_events < 0:
            raise ValueError(
                "migration_cycles and cooldown_events must be >= 0"
            )
        if not 0.0 <= self.signature_match <= 1.0:
            raise ValueError("signature_match must be in [0, 1]")


@dataclass(frozen=True)
class HybridConfig:
    """STREX+SLICC hybrid selector (Section 5.5).

    The FPTable stores the mean instruction footprint of each transaction
    type in L1-I size units.  SLICC is selected when the available core
    count covers the footprint of the scheduled transaction types.
    """

    profile_fraction: float = 0.002
    slack_units: int = 0


@dataclass(frozen=True)
class CoreConfig:
    """Timing model of one core (Table 2, Processing Cores row).

    The paper simulates 6-wide OoO cores; we use a flat base CPI plus
    per-miss stalls (see DESIGN.md, decision 4).

    Attributes:
        base_cpi: cycles per instruction with all caches hitting.
        frequency_ghz: clock (Table 2: 2.5 GHz).
        covered_stall_fraction: fraction of the L2 round trip charged
            for an instruction miss that a prefetcher covered -- the
            paper's PIF model still "generates demand traffic for cache
            blocks that would have otherwise missed, thus partially
            modeling the contention"; this is that contention charge.
    """

    base_cpi: float = 0.3
    frequency_ghz: float = 2.5
    covered_stall_fraction: float = 0.60

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.frequency_ghz <= 0:
            raise ValueError("base_cpi and frequency_ghz must be "
                             "positive")
        if not 0.0 <= self.covered_stall_fraction <= 1.0:
            raise ValueError(
                "covered_stall_fraction must be in [0, 1]"
            )


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-system description."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024))
    l2_slice: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            1024 * 1024, assoc=16, hit_latency=16
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    strex: StrexConfig = field(default_factory=StrexConfig)
    slicc: SliccConfig = field(default_factory=SliccConfig)
    hybrid: HybridConfig = field(default_factory=HybridConfig)
    seed: int = 1013

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Return a copy of this config with a different core count."""
        return dataclasses.replace(self, num_cores=num_cores)

    def with_strex(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with updated STREX parameters."""
        return dataclasses.replace(
            self, strex=dataclasses.replace(self.strex, **kwargs)
        )

    def with_l1_replacement(self, policy: str) -> "SystemConfig":
        """Return a copy with a different L1 replacement policy."""
        return dataclasses.replace(
            self,
            l1i=dataclasses.replace(self.l1i, replacement=policy),
            l1d=dataclasses.replace(self.l1d, replacement=policy),
        )

    def to_dict(self) -> dict:
        """Plain-dict form (nested, JSON-serializable).

        The dict is the canonical serialized form of a configuration:
        `repro.exp` hashes it (with sorted keys) to derive
        content-addressed cache keys, so equal configs always produce
        equal dicts.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild a :class:`SystemConfig` from :meth:`to_dict` output.

        Unknown keys are rejected (they would silently change the
        meaning of a cache key); missing keys fall back to defaults.
        """
        nested = {
            "core": CoreConfig,
            "l1i": CacheConfig,
            "l1d": CacheConfig,
            "l2_slice": CacheConfig,
            "memory": MemoryConfig,
            "noc": NocConfig,
            "strex": StrexConfig,
            "slicc": SliccConfig,
            "hybrid": HybridConfig,
        }
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SystemConfig keys: {sorted(unknown)}")
        kwargs = {}
        for name, value in data.items():
            sub = nested.get(name)
            kwargs[name] = sub(**value) if sub is not None else value
        return cls(**kwargs)

    @property
    def l1i_blocks(self) -> int:
        """Blocks per L1-I; one *footprint unit* is this many blocks."""
        return self.l1i.num_blocks


def paper_scale(num_cores: int = 4, **kwargs: object) -> SystemConfig:
    """The paper's Table 2 system: 32 KiB L1s, 1 MiB/core NUCA L2."""
    return SystemConfig(num_cores=num_cores, **kwargs)


def default_scale(num_cores: int = 4, **kwargs: object) -> SystemConfig:
    """Scaled-down system used by tests and benches: 8 KiB L1s.

    Footprints are defined in L1-size units, so miss behaviour relative to
    the cache is the same while traces are 4x shorter.
    """
    return SystemConfig(
        num_cores=num_cores,
        l1i=CacheConfig(8 * 1024),
        l1d=CacheConfig(8 * 1024),
        l2_slice=CacheConfig(256 * 1024, assoc=16, hit_latency=16),
        **kwargs,
    )


def tiny_scale(num_cores: int = 2, **kwargs: object) -> SystemConfig:
    """Very small system for unit tests: 2 KiB L1s (32 blocks)."""
    return SystemConfig(
        num_cores=num_cores,
        l1i=CacheConfig(2 * 1024, assoc=4),
        l1d=CacheConfig(2 * 1024, assoc=4),
        l2_slice=CacheConfig(32 * 1024, assoc=8, hit_latency=16),
        **kwargs,
    )


#: Named scale presets, as selectable from `RunSpec`/CLI (`--scale`).
SCALES = {
    "paper": paper_scale,
    "default": default_scale,
    "tiny": tiny_scale,
}
