"""Tracked performance benchmarks for the simulation kernel.

``python -m repro perf`` measures the specialized engine loops against
the reference implementation (``REPRO_SIM_REFERENCE=1``) on identical
traces, verifies the two paths still agree bit-for-bit, and writes the
numbers to ``BENCH_sim.json`` so regressions show up in review.
"""

from repro.perf.bench import (
    append_history,
    check_regression,
    profile_kernel,
    run_bench,
    write_bench,
)

__all__ = [
    "append_history",
    "check_regression",
    "profile_kernel",
    "run_bench",
    "write_bench",
]
