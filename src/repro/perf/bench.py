"""Simulation-kernel microbenchmark (``python -m repro perf``).

Measures how fast the engine replays trace events on the specialized
fast path versus the reference implementation, on the *same traces in
the same process*.  Both paths are warmed first (trace memos, allocator
state), then timed over interleaved repeats with the minimum wall time
kept -- the most reproducible statistic on a shared machine.  Before
any timing is trusted, the two paths' full :class:`RunResult` dicts are
compared; a mismatch raises rather than recording a meaningless number.

Three series are timed: ``fast`` (the full kernel including the batch
replay layer of :mod:`repro.sim.batch` -- its min reflects warm-slice
replay, the steady state of repeated identical runs), ``fast_nobatch``
(``REPRO_SIM_NOBATCH=1``: the interpreting kernel alone), and
``reference``.  After timing, a replayed run is re-checked against the
reference result byte for byte.

The report is written as JSON (``BENCH_sim.json`` at the repo root by
convention) so CI can archive it and reviews can diff it;
:func:`append_history` keeps a one-line-per-run ``BENCH_history.jsonl``
ledger and :func:`profile_kernel` prints the kernel's cProfile hot
spots.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro import obs
from repro.config import SCALES
from repro.fastpath import ENV_VAR, NOBATCH_ENV
from repro.sim.api import SCHEDULERS, simulate
from repro.workloads import WORKLOADS

#: Schedulers timed individually on the fast path.
DEFAULT_SCHEDULERS = ("base", "strex", "slicc", "hybrid", "smt")


def _set_reference(on: bool) -> None:
    if on:
        os.environ[ENV_VAR] = "1"
    else:
        os.environ.pop(ENV_VAR, None)


def _set_nobatch(on: bool) -> None:
    if on:
        os.environ[NOBATCH_ENV] = "1"
    else:
        os.environ.pop(NOBATCH_ENV, None)


def _time_run(config, traces, scheduler: str, workload: str) -> float:
    start = time.perf_counter()
    simulate(config, traces, scheduler, workload)
    return time.perf_counter() - start


def run_bench(
    scale: str = "default",
    workload: str = "tpcc",
    transactions: int = 40,
    repeats: int = 5,
    seed: int = 1013,
    cores: Optional[int] = None,
    schedulers: Iterable[str] = DEFAULT_SCHEDULERS,
    trace_counters: bool = False,
) -> Dict[str, object]:
    """Benchmark the kernel; returns the JSON-ready report dict.

    The headline number is ``speedup``: fast-path events/second over
    reference events/second for the ``base`` scheduler, which exercises
    the tightest loop.  Parity between the paths is asserted before
    timing.

    With ``trace_counters`` the report additionally embeds
    ``kernel_counters``: the engine's own attribution for one cold
    (first-sighting) fast run -- fast-forward runs taken, memo hit
    rate, event/instruction totals -- plus the batch layer's
    record/replay tallies from the timed repeats, so a regression
    report arrives with its own diagnosis (did ff stop taking runs?
    did replay fall back?).  The extra run happens after all timing.
    """
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(WORKLOADS)}")
    schedulers = tuple(schedulers)
    for name in schedulers:
        if name not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {name!r}")
    config = SCALES[scale]() if cores is None \
        else SCALES[scale](num_cores=cores)
    suite = WORKLOADS[workload](config.l1i_blocks, seed)
    traces = suite.generate_mix(transactions, seed=seed)
    events = sum(len(trace) for trace in traces)
    saved = os.environ.get(ENV_VAR)
    saved_nobatch = os.environ.get(NOBATCH_ENV)
    from repro.sim import batch as batch_replay
    batch_replay.reset_registry()
    bench_span = obs.span(
        "perf.bench", scale=scale, workload=workload,
        cores=config.num_cores)
    try:
        with bench_span:
            # Warm both paths and check parity while doing so.
            with obs.span("perf.warmup"):
                _set_nobatch(False)
                _set_reference(False)
                fast_result = simulate(
                    config, traces, "base", workload)
                _set_reference(True)
                ref_result = simulate(
                    config, traces, "base", workload)
            parity = fast_result.to_dict() == ref_result.to_dict()
            if not parity:
                raise AssertionError(
                    "fast and reference paths disagree; fix parity "
                    "before benchmarking (run the tests in "
                    "tests/test_parity.py)")
            # Timed repeats.  The batch layer sees the fast runs as
            # identical re-executions: the first timed repeat records,
            # the rest replay -- keeping the min therefore reports the
            # steady (replayed) throughput, which is what sweep reruns
            # get.  The nobatch series times the same kernel with the
            # layer disabled (the pre-batch fast path).
            fast_wall = []
            nobatch_wall = []
            ref_wall = []
            with obs.span("perf.timed", repeats=max(1, repeats)):
                for _ in range(max(1, repeats)):
                    _set_reference(False)
                    fast_wall.append(
                        _time_run(config, traces, "base", workload))
                    _set_nobatch(True)
                    nobatch_wall.append(
                        _time_run(config, traces, "base", workload))
                    _set_nobatch(False)
                    _set_reference(True)
                    ref_wall.append(
                        _time_run(config, traces, "base", workload))
            # A replayed run must still be byte-identical to the
            # reference (the timed repeats discarded their results).
            _set_reference(False)
            replay_result = simulate(config, traces, "base", workload)
            if replay_result.to_dict() != ref_result.to_dict():
                raise AssertionError(
                    "a batch-replayed run diverged from the reference; "
                    "fix repro.sim.batch before benchmarking")
            with obs.span("perf.schedulers"):
                per_scheduler = {
                    name: round(
                        _time_run(config, traces, name, workload), 4)
                    for name in schedulers
                }
            # Snapshot the timed phase's batch tallies before the
            # optional traced run below resets the registry.
            registry = batch_replay.registry()
            batch_counts = {
                "recordings": registry.recordings,
                "replays": registry.replays,
                "fallbacks": registry.fallbacks,
                "aborts": registry.aborts,
            }
            kernel_counters = None
            if trace_counters:
                kernel_counters = _traced_kernel_counters(
                    config, traces, workload)
                kernel_counters.update(
                    {f"batch_{k}": v for k, v in batch_counts.items()}
                )
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
        if saved_nobatch is None:
            os.environ.pop(NOBATCH_ENV, None)
        else:
            os.environ[NOBATCH_ENV] = saved_nobatch
    fast_s = min(fast_wall)
    nobatch_s = min(nobatch_wall)
    ref_s = min(ref_wall)
    report: Dict[str, object] = {
        "bench": "sim_kernel",
        "scale": scale,
        "workload": workload,
        "transactions": transactions,
        "cores": config.num_cores,
        "seed": seed,
        "events": events,
        "repeats": max(1, repeats),
        "parity": parity,
        "fast": {
            "wall_s": round(fast_s, 4),
            "events_per_s": round(events / fast_s),
        },
        "fast_nobatch": {
            "wall_s": round(nobatch_s, 4),
            "events_per_s": round(events / nobatch_s),
        },
        "reference": {
            "wall_s": round(ref_s, 4),
            "events_per_s": round(events / ref_s),
        },
        "speedup": round(ref_s / fast_s, 3),
        "batch_speedup": round(nobatch_s / fast_s, 3),
        "batch": batch_counts,
        "schedulers_wall_s": per_scheduler,
        "python": platform.python_version(),
        "timestamp": time.time(),
    }
    if kernel_counters is not None:
        report["kernel_counters"] = kernel_counters
    return report


def _traced_kernel_counters(config, traces, workload: str
                            ) -> Dict[str, object]:
    """Kernel self-attribution for one cold fast run.

    Resets the batch registry so the run is a first sighting -- the
    interpreting kernel with hit-run fast-forwarding, not a memoized
    replay -- and harvests the engine's ``sim.run`` span counters
    through a private in-memory tracer (no sink, no effect on any
    ambient ``REPRO_TRACE``).
    """
    from repro.sim import batch as batch_replay
    batch_replay.reset_registry()
    tracer = obs.Tracer()
    with obs.use(tracer):
        simulate(config, traces, "base", workload)
    span = next(
        s for s in reversed(tracer.ring) if s.name == "sim.run")
    counters = span.counters
    ff_runs = int(counters.get("ff_runs", 0))
    ff_memo_hits = int(counters.get("ff_memo_hits", 0))
    return {
        "events": int(counters.get("events", 0)),
        "instructions": int(counters.get("instructions", 0)),
        "ff_runs": ff_runs,
        "ff_memo_hits": ff_memo_hits,
        "ff_memo_hit_rate": (
            round(ff_memo_hits / ff_runs, 4) if ff_runs else 0.0
        ),
    }


#: Bench-report keys that must match for two reports to be comparable
#: (per-event throughput is only meaningful on the same workload shape).
_COMPARABLE_KEYS = ("bench", "scale", "workload", "transactions",
                    "cores", "seed")


def check_regression(current: Dict[str, object],
                     prior: Dict[str, object],
                     max_slowdown: float = 0.15
                     ) -> "Tuple[bool, str]":
    """Gate a fresh bench report against a prior artifact.

    Compares fast-path ``events_per_s`` (wall time normalized per
    event, so jitter in trace generation cannot hide in the number)
    and fails on a drop of more than ``max_slowdown``.  Reports taken
    under different parameters are not comparable and fail loudly —
    a gate that silently skips is not a gate.

    Returns ``(ok, message)``; the CLI turns ``ok`` into the exit
    code.
    """
    if max_slowdown <= 0:
        raise ValueError("max_slowdown must be positive")
    mismatched = [
        key for key in _COMPARABLE_KEYS
        if current.get(key) != prior.get(key)
    ]
    if mismatched:
        pairs = ", ".join(
            f"{key}: {prior.get(key)!r} -> {current.get(key)!r}"
            for key in mismatched)
        return False, (
            f"bench reports are not comparable ({pairs}); re-baseline "
            f"with matching parameters")
    try:
        prior_eps = float(prior["fast"]["events_per_s"])
        current_eps = float(current["fast"]["events_per_s"])
    except (KeyError, TypeError, ValueError):
        return False, "prior bench report is malformed; re-baseline"
    if prior_eps <= 0:
        return False, "prior bench report has no throughput; re-baseline"
    slowdown = 1.0 - current_eps / prior_eps
    verdict = (
        f"fast path {current_eps:,.0f} events/s vs prior "
        f"{prior_eps:,.0f} ({-100 * slowdown:+.1f}%; budget "
        f"-{100 * max_slowdown:.0f}%)")
    if slowdown > max_slowdown:
        return False, f"kernel slowdown exceeds budget: {verdict}"
    return True, f"kernel within budget: {verdict}"


def write_bench(report: Dict[str, object], out: Path) -> None:
    """Write the report as stable, diff-friendly JSON."""
    out = Path(out)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")


def append_history(report: Dict[str, object], path: Path) -> None:
    """Append the report as one JSON line to a ``.jsonl`` ledger.

    ``BENCH_sim.json`` is overwritten per run; the history file keeps
    every run so throughput can be plotted over the repo's life (CI
    uploads it as an artifact).  One compact line per run, newest
    last.
    """
    path = Path(path)
    with path.open("a") as handle:
        handle.write(json.dumps(report, sort_keys=True,
                                separators=(",", ":")) + "\n")


def profile_kernel(
    scale: str = "default",
    workload: str = "tpcc",
    transactions: int = 40,
    seed: int = 1013,
    cores: Optional[int] = None,
    top: int = 25,
) -> str:
    """cProfile one fast-path run; returns the top-``top`` report.

    The registry is reset first so the profiled run is a *first*
    sighting: the interpreting kernel (scalar loops plus hit-run
    fast-forwarding) is what's measured, not a memoized replay of it.
    """
    import cProfile
    import io
    import pstats

    config = SCALES[scale]() if cores is None \
        else SCALES[scale](num_cores=cores)
    suite = WORKLOADS[workload](config.l1i_blocks, seed)
    traces = suite.generate_mix(transactions, seed=seed)
    from repro.sim import batch as batch_replay
    batch_replay.reset_registry()
    profiler = cProfile.Profile()
    profiler.enable()
    simulate(config, traces, "base", workload)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs().sort_stats("tottime").print_stats(top)
    return out.getvalue().rstrip()


def format_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a bench report."""
    fast = report["fast"]
    ref = report["reference"]
    lines = [
        f"sim kernel bench: {report['workload']} @ {report['scale']} "
        f"scale, {report['cores']} cores, {report['events']} events, "
        f"min of {report['repeats']} repeats",
        f"  fast:      {fast['wall_s']:.3f}s "
        f"({fast['events_per_s']:,} events/s)",
        f"  reference: {ref['wall_s']:.3f}s "
        f"({ref['events_per_s']:,} events/s)",
        f"  speedup:   x{report['speedup']:.2f} "
        f"(parity {'OK' if report['parity'] else 'FAILED'})",
    ]
    nobatch = report.get("fast_nobatch")
    if nobatch is not None:
        batch = report.get("batch", {})
        lines.append(
            f"  no-batch:  {nobatch['wall_s']:.3f}s "
            f"({nobatch['events_per_s']:,} events/s; batch layer "
            f"x{report['batch_speedup']:.2f}, "
            f"{batch.get('recordings', 0)} recorded / "
            f"{batch.get('replays', 0)} replayed / "
            f"{batch.get('fallbacks', 0)} fallbacks)")
    lines.append("  scheduler wall times (fast path):")
    for name, wall in report["schedulers_wall_s"].items():
        lines.append(f"    {name:7s} {wall:.3f}s")
    return "\n".join(lines)
