"""Simulation-kernel microbenchmark (``python -m repro perf``).

Measures how fast the engine replays trace events on the specialized
fast path versus the reference implementation, on the *same traces in
the same process*.  Both paths are warmed first (trace memos, allocator
state), then timed over interleaved repeats with the minimum wall time
kept -- the most reproducible statistic on a shared machine.  Before
any timing is trusted, the two paths' full :class:`RunResult` dicts are
compared; a mismatch raises rather than recording a meaningless number.

The report is written as JSON (``BENCH_sim.json`` at the repo root by
convention) so CI can archive it and reviews can diff it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro.config import SCALES
from repro.fastpath import ENV_VAR
from repro.sim.api import SCHEDULERS, simulate
from repro.workloads import WORKLOADS

#: Schedulers timed individually on the fast path.
DEFAULT_SCHEDULERS = ("base", "strex", "slicc", "hybrid", "smt")


def _set_reference(on: bool) -> None:
    if on:
        os.environ[ENV_VAR] = "1"
    else:
        os.environ.pop(ENV_VAR, None)


def _time_run(config, traces, scheduler: str, workload: str) -> float:
    start = time.perf_counter()
    simulate(config, traces, scheduler, workload)
    return time.perf_counter() - start


def run_bench(
    scale: str = "default",
    workload: str = "tpcc",
    transactions: int = 40,
    repeats: int = 5,
    seed: int = 1013,
    cores: Optional[int] = None,
    schedulers: Iterable[str] = DEFAULT_SCHEDULERS,
) -> Dict[str, object]:
    """Benchmark the kernel; returns the JSON-ready report dict.

    The headline number is ``speedup``: fast-path events/second over
    reference events/second for the ``base`` scheduler, which exercises
    the tightest loop.  Parity between the paths is asserted before
    timing.
    """
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(WORKLOADS)}")
    schedulers = tuple(schedulers)
    for name in schedulers:
        if name not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {name!r}")
    config = SCALES[scale]() if cores is None \
        else SCALES[scale](num_cores=cores)
    suite = WORKLOADS[workload](config.l1i_blocks, seed)
    traces = suite.generate_mix(transactions, seed=seed)
    events = sum(len(trace) for trace in traces)
    saved = os.environ.get(ENV_VAR)
    try:
        # Warm both paths and check parity while doing so.
        _set_reference(False)
        fast_result = simulate(config, traces, "base", workload)
        _set_reference(True)
        ref_result = simulate(config, traces, "base", workload)
        parity = fast_result.to_dict() == ref_result.to_dict()
        if not parity:
            raise AssertionError(
                "fast and reference paths disagree; fix parity before "
                "benchmarking (run the tests in tests/test_parity.py)")
        fast_wall = []
        ref_wall = []
        for _ in range(max(1, repeats)):
            _set_reference(False)
            fast_wall.append(_time_run(config, traces, "base", workload))
            _set_reference(True)
            ref_wall.append(_time_run(config, traces, "base", workload))
        _set_reference(False)
        per_scheduler = {
            name: round(_time_run(config, traces, name, workload), 4)
            for name in schedulers
        }
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    fast_s = min(fast_wall)
    ref_s = min(ref_wall)
    return {
        "bench": "sim_kernel",
        "scale": scale,
        "workload": workload,
        "transactions": transactions,
        "cores": config.num_cores,
        "seed": seed,
        "events": events,
        "repeats": max(1, repeats),
        "parity": parity,
        "fast": {
            "wall_s": round(fast_s, 4),
            "events_per_s": round(events / fast_s),
        },
        "reference": {
            "wall_s": round(ref_s, 4),
            "events_per_s": round(events / ref_s),
        },
        "speedup": round(ref_s / fast_s, 3),
        "schedulers_wall_s": per_scheduler,
        "python": platform.python_version(),
        "timestamp": time.time(),
    }


#: Bench-report keys that must match for two reports to be comparable
#: (per-event throughput is only meaningful on the same workload shape).
_COMPARABLE_KEYS = ("bench", "scale", "workload", "transactions",
                    "cores", "seed")


def check_regression(current: Dict[str, object],
                     prior: Dict[str, object],
                     max_slowdown: float = 0.15
                     ) -> "Tuple[bool, str]":
    """Gate a fresh bench report against a prior artifact.

    Compares fast-path ``events_per_s`` (wall time normalized per
    event, so jitter in trace generation cannot hide in the number)
    and fails on a drop of more than ``max_slowdown``.  Reports taken
    under different parameters are not comparable and fail loudly —
    a gate that silently skips is not a gate.

    Returns ``(ok, message)``; the CLI turns ``ok`` into the exit
    code.
    """
    if max_slowdown <= 0:
        raise ValueError("max_slowdown must be positive")
    mismatched = [
        key for key in _COMPARABLE_KEYS
        if current.get(key) != prior.get(key)
    ]
    if mismatched:
        pairs = ", ".join(
            f"{key}: {prior.get(key)!r} -> {current.get(key)!r}"
            for key in mismatched)
        return False, (
            f"bench reports are not comparable ({pairs}); re-baseline "
            f"with matching parameters")
    try:
        prior_eps = float(prior["fast"]["events_per_s"])
        current_eps = float(current["fast"]["events_per_s"])
    except (KeyError, TypeError, ValueError):
        return False, "prior bench report is malformed; re-baseline"
    if prior_eps <= 0:
        return False, "prior bench report has no throughput; re-baseline"
    slowdown = 1.0 - current_eps / prior_eps
    verdict = (
        f"fast path {current_eps:,.0f} events/s vs prior "
        f"{prior_eps:,.0f} ({-100 * slowdown:+.1f}%; budget "
        f"-{100 * max_slowdown:.0f}%)")
    if slowdown > max_slowdown:
        return False, f"kernel slowdown exceeds budget: {verdict}"
    return True, f"kernel within budget: {verdict}"


def write_bench(report: Dict[str, object], out: Path) -> None:
    """Write the report as stable, diff-friendly JSON."""
    out = Path(out)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")


def format_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a bench report."""
    fast = report["fast"]
    ref = report["reference"]
    lines = [
        f"sim kernel bench: {report['workload']} @ {report['scale']} "
        f"scale, {report['cores']} cores, {report['events']} events, "
        f"min of {report['repeats']} repeats",
        f"  fast:      {fast['wall_s']:.3f}s "
        f"({fast['events_per_s']:,} events/s)",
        f"  reference: {ref['wall_s']:.3f}s "
        f"({ref['events_per_s']:,} events/s)",
        f"  speedup:   x{report['speedup']:.2f} "
        f"(parity {'OK' if report['parity'] else 'FAILED'})",
        "  scheduler wall times (fast path):",
    ]
    for name, wall in report["schedulers_wall_s"].items():
        lines.append(f"    {name:7s} {wall:.3f}s")
    return "\n".join(lines)
