"""Result diffing: compare two sweeps cell by cell (``repro diff``).

Every figure and table runs through the content-addressed cache, so a
simulator change that shifts MPKI or throughput used to be caught only
if it happened to break a coarse shape assertion.  This module turns
the manifest + cache pair into an auditable history:

* :func:`manifest_cells` reads a run manifest, aligns its rows by
  *spec identity* (:func:`repro.exp.cache.spec_identity` — the spec's
  own fields, never the code fingerprint), and loads each cell's
  cached result into a flat **metric vector**;
* :func:`diff_cells` classifies every aligned cell as ``identical`` /
  ``changed`` / ``added`` / ``removed`` / ``missing`` and reports
  per-metric deltas under configurable absolute/relative tolerances;
* :func:`reference_diff` runs the same specs through the fast-path
  *and* the ``REPRO_SIM_REFERENCE=1`` kernels and asserts the
  serialized results are byte-equal per cell — a second consumer of
  the reference path beyond the parity tests.

Metric vectors, not raw bytes, are what get compared: a
fingerprint-only change (comment edit, refactor) re-keys the cache but
leaves every metric bit-identical, so the diff — and the pinned
baselines built on it (:mod:`repro.exp.baseline`) — stays green.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exp.cache import RESULT_TYPES, ResultCache, spec_identity
from repro.exp.manifest import Manifest
from repro.exp.spec import RunSpec

#: Cell statuses, in report order.
STATUSES = ("changed", "missing", "removed", "added", "identical")


def metric_vector(result) -> Dict[str, float]:
    """Flatten any registered result type into ``{metric: number}``.

    Every :data:`~repro.exp.cache.RESULT_TYPES` entry is covered:

    * ``RunResult`` — the raw counters plus the paper's derived
      metrics (``i_mpki``/``d_mpki``/``throughput``/``mean_latency``);
    * ``OverlapResult`` — the time-averaged overlap-band fractions
      (``band.<name>``) plus the interval count;
    * ``FootprintResult`` — per-type footprints (``units.<type>``)
      plus the median.
    """
    name = type(result).__name__
    if name == "RunResult":
        metrics = {
            field_.name: getattr(result, field_.name)
            for field_ in dataclasses.fields(result)
            if field_.name not in ("workload", "scheduler", "latencies",
                                   "extra")
        }
        metrics["i_mpki"] = result.i_mpki
        metrics["d_mpki"] = result.d_mpki
        metrics["throughput"] = result.throughput
        metrics["mean_latency"] = result.mean_latency
        for key, value in result.extra.items():
            metrics[f"extra.{key}"] = value
        return metrics
    if name == "OverlapResult":
        metrics = {f"band.{band}": fraction
                   for band, fraction in result.summarize().items()}
        metrics["intervals"] = len(result.intervals)
        return metrics
    if name == "FootprintResult":
        metrics = {f"units.{txn_type}": units
                   for txn_type, units in result.as_dict().items()}
        metrics["median_units"] = result.median_units()
        return metrics
    raise TypeError(
        f"no metric extractor for result type {name!r}; "
        f"registered: {sorted(RESULT_TYPES)}"
    )


def result_blob(result) -> bytes:
    """Canonical serialized form of a result (byte-equality checks)."""
    return json.dumps(result.to_dict(), sort_keys=True,
                      separators=(",", ":")).encode()


@dataclass(frozen=True)
class Tolerance:
    """Absolute/relative tolerance for metric comparison.

    A delta is *within* tolerance when
    ``|b - a| <= max(abs_tol, rel_tol * |a|)`` (the A side is the
    reference).  The default is exact equality — the simulator is
    deterministic, so that is the right bar for same-version reruns
    and pinned baselines; loosen it when comparing across intentional
    changes.
    """

    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.abs_tol < 0 or self.rel_tol < 0:
            raise ValueError("tolerances must be >= 0")

    def within(self, a: Optional[float], b: Optional[float]) -> bool:
        if a is None or b is None:
            return False
        return abs(b - a) <= max(self.abs_tol,
                                 self.rel_tol * abs(a))


@dataclass(frozen=True)
class Cell:
    """One aligned sweep cell: a spec plus its flattened metrics.

    ``metrics`` is ``None`` when the manifest row exists but its
    result could not be loaded from the cache (entry evicted, torn,
    or written by an incompatible schema) — the diff reports such
    cells as ``missing`` rather than silently treating them as equal.
    """

    identity: str
    spec: dict
    label: str
    result_type: Optional[str] = None
    metrics: Optional[Dict[str, float]] = None
    key: Optional[str] = None

    @classmethod
    def from_result(cls, spec: RunSpec, result,
                    key: Optional[str] = None) -> "Cell":
        return cls(
            identity=spec_identity(spec),
            spec=spec.to_dict(),
            label=spec.describe(),
            result_type=type(result).__name__,
            metrics=metric_vector(result),
            key=key,
        )


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the two sides of a cell."""

    metric: str
    a: Optional[float]
    b: Optional[float]
    within: bool

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def relative(self) -> Optional[float]:
        """Signed relative delta vs the A side (``None`` when a side
        is absent or A is zero)."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    def to_dict(self) -> dict:
        return {"metric": self.metric, "a": self.a, "b": self.b,
                "delta": self.delta, "relative": self.relative,
                "within": self.within}


@dataclass(frozen=True)
class CellDiff:
    """One cell's classification plus its out-of-tolerance metrics.

    ``deltas`` holds *every* compared metric for a ``changed`` cell
    (the within-tolerance ones flagged as such, so a ``--json``
    consumer sees the full vector) and is empty for the other
    statuses.
    """

    identity: str
    label: str
    spec: dict
    status: str
    result_type_a: Optional[str] = None
    result_type_b: Optional[str] = None
    deltas: Tuple[MetricDelta, ...] = ()
    note: Optional[str] = None

    @property
    def moved(self) -> Tuple[MetricDelta, ...]:
        """The out-of-tolerance deltas only."""
        return tuple(d for d in self.deltas if not d.within)

    def to_dict(self) -> dict:
        return {
            "identity": self.identity,
            "label": self.label,
            "spec": self.spec,
            "status": self.status,
            "result_type_a": self.result_type_a,
            "result_type_b": self.result_type_b,
            "deltas": [d.to_dict() for d in self.deltas],
            "note": self.note,
        }


@dataclass
class DiffReport:
    """Outcome of a cell-by-cell sweep comparison.

    ``ok`` is the gate: ``True`` iff no cell is ``changed`` or
    ``missing``.  ``added``/``removed`` cells are reported but only
    fail under ``strict`` (grids legitimately grow; a shrinking or
    shifting grid is worth a loud look).
    """

    cells: List[CellDiff] = field(default_factory=list)
    tolerance: Tolerance = field(default_factory=Tolerance)

    def by_status(self, status: str) -> List[CellDiff]:
        return [c for c in self.cells if c.status == status]

    @property
    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for cell in self.cells:
            counts[cell.status] += 1
        return counts

    def ok(self, strict: bool = False) -> bool:
        counts = self.counts
        bad = counts["changed"] + counts["missing"]
        if strict:
            bad += counts["added"] + counts["removed"]
        return bad == 0

    def exit_code(self, strict: bool = False) -> int:
        return 0 if self.ok(strict) else 1

    def to_dict(self) -> dict:
        return {
            "counts": self.counts,
            "ok": self.ok(),
            "tolerance": {"abs_tol": self.tolerance.abs_tol,
                          "rel_tol": self.tolerance.rel_tol},
            "cells": [cell.to_dict() for cell in self.cells
                      if cell.status != "identical"],
        }

    # -- renderers -----------------------------------------------------
    def _summary_line(self) -> str:
        counts = self.counts
        parts = [f"{counts[status]} {status}" for status in STATUSES
                 if counts[status] or status in ("changed", "identical")]
        return f"{len(self.cells)} cell(s): " + ", ".join(parts)

    def _delta_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for cell in self.by_status("changed"):
            for delta in cell.moved:
                rows.append([
                    cell.label,
                    delta.metric,
                    "-" if delta.a is None else f"{delta.a:g}",
                    "-" if delta.b is None else f"{delta.b:g}",
                    "-" if delta.delta is None
                    else f"{delta.delta:+g}",
                    "-" if delta.relative is None
                    else f"{100 * delta.relative:+.2f}%",
                ])
            if not cell.moved and cell.note:
                rows.append([cell.label, f"({cell.note})", "-", "-",
                             "-", "-"])
        return rows

    def format_text(self) -> str:
        """Plain-table rendering (the default CLI output)."""
        from repro.analysis.report import format_table

        lines = [self._summary_line()]
        rows = self._delta_rows()
        if rows:
            lines.append("")
            lines.append(format_table(
                ["cell", "metric", "a", "b", "delta", "rel"], rows))
        for status in ("missing", "removed", "added"):
            cells = self.by_status(status)
            if cells:
                lines.append("")
                lines.append(f"{status}:")
                for cell in cells:
                    suffix = f"  ({cell.note})" if cell.note else ""
                    lines.append(f"  {cell.label}{suffix}")
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for PR comments)."""
        lines = [f"**{self._summary_line()}**"]
        rows = self._delta_rows()
        if rows:
            lines.append("")
            lines.append("| cell | metric | a | b | delta | rel |")
            lines.append("| --- | --- | --- | --- | --- | --- |")
            for row in rows:
                lines.append("| " + " | ".join(str(v) for v in row)
                             + " |")
        for status in ("missing", "removed", "added"):
            cells = self.by_status(status)
            if cells:
                lines.append("")
                lines.append(f"**{status}:** "
                             + ", ".join(f"`{c.label}`" for c in cells))
        return "\n".join(lines)


def _compare_cell(a: Cell, b: Cell, tolerance: Tolerance) -> CellDiff:
    """Classify one aligned cell (present on both sides)."""
    base = dict(identity=a.identity, label=a.label, spec=a.spec,
                result_type_a=a.result_type, result_type_b=b.result_type)
    if a.metrics is None or b.metrics is None:
        sides = [side for side, cell in (("a", a), ("b", b))
                 if cell.metrics is None]
        return CellDiff(status="missing", note=(
            f"result unavailable on side(s): {', '.join(sides)}"),
            **base)
    if a.result_type != b.result_type:
        return CellDiff(status="changed", note=(
            f"result type changed: {a.result_type} -> "
            f"{b.result_type}"), **base)
    deltas = tuple(
        MetricDelta(metric=name, a=a.metrics.get(name),
                    b=b.metrics.get(name),
                    within=tolerance.within(a.metrics.get(name),
                                            b.metrics.get(name)))
        for name in sorted(set(a.metrics) | set(b.metrics))
    )
    if all(d.within for d in deltas):
        return CellDiff(status="identical", **base)
    return CellDiff(status="changed", deltas=deltas, **base)


def diff_cells(a: Dict[str, Cell], b: Dict[str, Cell],
               tolerance: Optional[Tolerance] = None) -> DiffReport:
    """Diff two identity-aligned cell maps (A is the reference side).

    Cells only in A are ``removed``, only in B ``added``; cells on
    both sides compare metric by metric.  Report order is
    deterministic: cells sorted by label, then identity.
    """
    tolerance = tolerance or Tolerance()
    report = DiffReport(tolerance=tolerance)
    identities = sorted(
        set(a) | set(b),
        key=lambda i: ((a.get(i) or b[i]).label, i))
    for identity in identities:
        if identity not in b:
            cell = a[identity]
            report.cells.append(CellDiff(
                identity=identity, label=cell.label, spec=cell.spec,
                status="removed", result_type_a=cell.result_type))
        elif identity not in a:
            cell = b[identity]
            report.cells.append(CellDiff(
                identity=identity, label=cell.label, spec=cell.spec,
                status="added", result_type_b=cell.result_type))
        else:
            report.cells.append(
                _compare_cell(a[identity], b[identity], tolerance))
    return report


def manifest_cells(manifest: Union[Manifest, Path, str],
                   cache_root: Optional[Union[Path, str]] = None
                   ) -> Dict[str, Cell]:
    """Load a manifest's cells, deduplicated by identity (last wins).

    ``cache_root`` defaults to the manifest's directory (the layout
    the :class:`~repro.exp.runner.Runner` writes); per-bench audit
    manifests live one level down in ``<cache>/audit/``, which is
    resolved automatically.  Rows whose spec no longer parses are
    skipped with a warning; rows whose cached result is gone produce
    cells with ``metrics=None`` (reported as ``missing``).
    """
    if not isinstance(manifest, Manifest):
        manifest = Manifest(manifest)
    if cache_root is None:
        cache_root = manifest.path.parent
        if cache_root.name == "audit":
            cache_root = cache_root.parent
    cache = ResultCache(cache_root)
    rows: Dict[str, Tuple[RunSpec, str]] = {}
    for entry in manifest.read():
        try:
            spec = RunSpec.from_dict(entry.spec)
        except (TypeError, ValueError) as exc:
            warnings.warn(
                f"manifest {manifest.path}: skipping row whose spec "
                f"no longer parses ({exc})", RuntimeWarning,
                stacklevel=2)
            continue
        rows[spec_identity(spec)] = (spec, entry.key)
    cells: Dict[str, Cell] = {}
    for identity, (spec, key) in rows.items():
        result = cache.get(key)
        if result is None:
            cells[identity] = Cell(
                identity=identity, spec=spec.to_dict(),
                label=spec.describe(), key=key)
        else:
            cells[identity] = Cell.from_result(spec, result, key=key)
    return cells


def diff_manifests(manifest_a: Union[Path, str],
                   manifest_b: Union[Path, str],
                   cache_a: Optional[Union[Path, str]] = None,
                   cache_b: Optional[Union[Path, str]] = None,
                   tolerance: Optional[Tolerance] = None) -> DiffReport:
    """``repro diff`` as an API: align two sweeps and compare them."""
    return diff_cells(
        manifest_cells(manifest_a, cache_a),
        manifest_cells(manifest_b, cache_b),
        tolerance,
    )


@dataclass(frozen=True)
class AuditFigure:
    """One figure's pairing between two audit directories."""

    name: str
    status: str  # "ok" | "drift" | "only-a" | "only-b"
    report: Optional[DiffReport] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "report": None if self.report is None
            else self.report.to_dict(),
        }


@dataclass
class AuditReport:
    """Per-figure drift summary between two checkouts' audit dirs.

    The figure-level dashboard (``repro diff --audit``): every bench
    writes a per-figure manifest to ``<cache>/audit/<fig>.jsonl``, so
    walking two such directories and diffing the pairs summarizes a
    whole release's drift in one table.  A figure present on only one
    side is reported (``only-a``/``only-b``) and fails under
    ``strict`` -- a silently dropped figure is as suspicious as a
    moved metric.
    """

    figures: List[AuditFigure] = field(default_factory=list)
    tolerance: Tolerance = field(default_factory=Tolerance)

    def ok(self, strict: bool = False) -> bool:
        for figure in self.figures:
            if figure.status == "drift":
                return False
            if strict and figure.status in ("only-a", "only-b"):
                return False
            if figure.report is not None \
                    and not figure.report.ok(strict):
                return False
        return True

    def exit_code(self, strict: bool = False) -> int:
        return 0 if self.ok(strict) else 1

    def to_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "tolerance": {"abs_tol": self.tolerance.abs_tol,
                          "rel_tol": self.tolerance.rel_tol},
            "figures": [figure.to_dict() for figure in self.figures],
        }

    def _rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for figure in self.figures:
            if figure.report is None:
                rows.append([figure.name, "-", "-", "-", "-", "-",
                             figure.status])
                continue
            counts = figure.report.counts
            rows.append([
                figure.name,
                len(figure.report.cells),
                counts["identical"],
                counts["changed"],
                counts["missing"],
                counts["added"] + counts["removed"],
                figure.status,
            ])
        return rows

    _HEADERS = ["figure", "cells", "identical", "changed", "missing",
                "added/removed", "verdict"]

    def format_text(self) -> str:
        from repro.analysis.report import format_table

        verdict = "OK" if self.ok() else "DRIFT"
        lines = [f"{len(self.figures)} figure(s): {verdict}",
                 "",
                 format_table(self._HEADERS, self._rows())]
        for figure in self.figures:
            if figure.status == "drift" and figure.report is not None:
                lines.append("")
                lines.append(f"--- {figure.name} ---")
                lines.append(figure.report.format_text())
        return "\n".join(lines)

    def format_markdown(self) -> str:
        verdict = "OK" if self.ok() else "DRIFT"
        lines = [f"**{len(self.figures)} figure(s): {verdict}**", "",
                 "| " + " | ".join(self._HEADERS) + " |",
                 "| " + " | ".join("---" for _ in self._HEADERS) + " |"]
        for row in self._rows():
            lines.append("| " + " | ".join(str(v) for v in row) + " |")
        for figure in self.figures:
            if figure.status == "drift" and figure.report is not None:
                lines.append("")
                lines.append(f"### {figure.name}")
                lines.append(figure.report.format_markdown())
        return "\n".join(lines)


def _audit_dir(root: Union[Path, str]) -> Path:
    """Resolve a cache directory or audit directory to the latter."""
    root = Path(root)
    if root.name == "audit":
        return root
    if (root / "audit").is_dir():
        return root / "audit"
    return root


def audit_diff(a_dir: Union[Path, str], b_dir: Union[Path, str],
               tolerance: Optional[Tolerance] = None) -> AuditReport:
    """Walk two audit directories and diff every paired figure.

    Accepts cache roots (``.../.cache``) or their ``audit/``
    subdirectories; figures pair by manifest filename stem.  Each
    pair goes through :func:`diff_manifests` (cache roots are
    resolved per side by :func:`manifest_cells`' audit-layout rule).
    """
    tolerance = tolerance or Tolerance()
    audit_a = _audit_dir(a_dir)
    audit_b = _audit_dir(b_dir)
    names_a = {p.stem: p for p in sorted(audit_a.glob("*.jsonl"))}
    names_b = {p.stem: p for p in sorted(audit_b.glob("*.jsonl"))}
    report = AuditReport(tolerance=tolerance)
    for name in sorted(set(names_a) | set(names_b)):
        if name not in names_b:
            report.figures.append(AuditFigure(name, "only-a"))
            continue
        if name not in names_a:
            report.figures.append(AuditFigure(name, "only-b"))
            continue
        pair = diff_manifests(names_a[name], names_b[name],
                              tolerance=tolerance)
        status = "ok" if pair.ok() else "drift"
        report.figures.append(AuditFigure(name, status, report=pair))
    return report


def reference_diff(specs: Sequence[RunSpec]) -> DiffReport:
    """Run specs through the fast *and* reference kernels and compare.

    Byte-equality of the canonical serialized results is the bar (the
    parity guarantee of DESIGN.md decision 12), which is stricter than
    the metric vector: two results whose flattened metrics agree but
    whose latency lists differ still fail.  The A side is the fast
    path, the B side ``REPRO_SIM_REFERENCE=1``.
    """
    from repro.exp.runner import execute_spec
    from repro.fastpath import ENV_VAR

    report = DiffReport()
    saved = os.environ.get(ENV_VAR)
    try:
        for spec in specs:
            os.environ.pop(ENV_VAR, None)
            fast = execute_spec(spec)
            os.environ[ENV_VAR] = "1"
            reference = execute_spec(spec)
            fast_cell = Cell.from_result(spec, fast)
            ref_cell = Cell.from_result(spec, reference)
            diff = _compare_cell(fast_cell, ref_cell, Tolerance())
            if diff.status == "identical" and \
                    result_blob(fast) != result_blob(reference):
                diff = dataclasses.replace(
                    diff, status="changed",
                    note="serialized results differ beyond the "
                         "metric vector")
            report.cells.append(diff)
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    return report
