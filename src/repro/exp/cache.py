"""Content-addressed result cache.

Every run is keyed by a SHA-256 over the *content* that determines its
outcome: the serialized :class:`~repro.config.SystemConfig`, the
workload name and generation parameters, the scheduler / prefetcher /
team-size triple, and a fingerprint of the ``repro`` package source.

Determinism guarantee: the simulator is a pure function of
(config, workload params, scheduler, prefetcher, team_size, seeds) —
every stochastic choice flows from seeded RNGs held in the spec (see
DESIGN.md, decision 3).  Two expansions of the same
:class:`~repro.exp.spec.SweepSpec` therefore map to the same keys and
bit-identical :class:`~repro.sim.results.RunResult` payloads, which is
what makes re-running a sweep near-free (100% cache hits).

The source fingerprint folds a hash of every ``.py`` file under the
installed ``repro`` package into the key, so editing the simulator
invalidates stale results instead of silently replaying them.

Entries are one JSON file per key, sharded by the first two hex digits
(``<root>/ab/abcd....json``), written atomically (temp file +
``os.replace``) so parallel workers and killed runs can never leave a
truncated entry; a torn or corrupt entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

import repro
from repro.analysis.overlap import OverlapResult
from repro.core.fptable import FootprintResult
from repro.sim.results import RunResult
from repro.exp.spec import RunSpec

#: Bump when the key schema or result schema changes shape.
CACHE_SCHEMA = 2

#: Bump when the *identity* payload (see :func:`spec_identity`)
#: changes shape.  Deliberately independent of :data:`CACHE_SCHEMA`:
#: identities must stay comparable across cache-schema bumps or every
#: schema change would de-align every audit diff.
IDENTITY_SCHEMA = 1

#: Serializable result classes by name.  Every experiment mode's
#: result type round-trips bit-identically through
#: ``to_dict``/``from_dict``; the entry payload records which class to
#: rebuild.  Entries naming an unknown type read as a miss.
RESULT_TYPES = {
    "RunResult": RunResult,
    "OverlapResult": OverlapResult,
    "FootprintResult": FootprintResult,
}

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of the ``repro`` package source (memoized per process).

    Covers file *contents and relative paths* of every ``.py`` file
    under the package directory, so any simulator edit — including
    adding or deleting a module — changes every cache key.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def spec_key(spec: RunSpec) -> str:
    """The content-addressed cache key of one run.

    Stable across processes and platforms: the payload is canonical
    JSON (sorted keys, no whitespace) over plain dicts, hashed with
    SHA-256.  Note the *expanded* config is hashed, not the scale
    name — two scale presets that resolve to identical systems share
    cache entries.  Config overrides (``strex_overrides`` etc.) enter
    the key the same way: they are applied by ``build_config`` before
    hashing, so an override spelling out a default value addresses the
    same content as no override at all.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "config": spec.build_config().to_dict(),
        "workload": spec.workload,
        "transactions": spec.transactions,
        "seed": spec.seed,
        "mix_seed": spec.effective_mix_seed(),
        "scheduler": spec.scheduler,
        "prefetcher": spec.prefetcher,
        "team_size": spec.team_size,
        "mode": spec.mode,
        "txn_type": spec.txn_type,
        "replicas": spec.replicas,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_identity(spec: RunSpec) -> str:
    """The version-independent *identity* of a cell (``repro.audit``).

    Two runs of "the same experiment" under different simulator
    versions have different cache keys (the key folds in the source
    fingerprint, and the expanded config if a default moved) but the
    same identity.  The identity therefore hashes the spec's *own
    fields* — workload, scheduler, prefetcher, cores, seeds, scale
    name, mode, overrides — never the code fingerprint and never the
    materialized config: a simulator change (even one that shifts a
    config default) keeps the cell aligned so the resulting metric
    drift is reported as *changed* rather than as an added/removed
    pair (DESIGN.md, decision 14).

    ``mix_seed`` is normalized to its effective value so the two
    spellings of "mix seed defaults to seed" share an identity, the
    same way they share a cache key.
    """
    payload = spec.to_dict()
    payload["mix_seed"] = spec.effective_mix_seed()
    blob = json.dumps({"identity": IDENTITY_SCHEMA, "spec": payload},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Disk cache of serialized :class:`RunResult`s under ``root``."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Sharded entry path for a key."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on a miss.

        A corrupt or schema-incompatible entry (truncated JSON, empty
        file, wrong schema version, unknown result type, unexpected
        result fields) is removed and treated as a miss rather than
        poisoning the run.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            if data["schema"] != CACHE_SCHEMA:
                raise ValueError(f"schema {data['schema']!r}")
            result_cls = RESULT_TYPES[data.get("result_type",
                                               "RunResult")]
            return result_cls.from_dict(data["result"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result,
            spec: Optional[RunSpec] = None) -> Path:
        """Atomically store ``result`` under ``key``.

        ``result`` may be any registered result type (see
        :data:`RESULT_TYPES`).  The spec is stored alongside it for
        debuggability (entries are self-describing), but only the key
        is ever used for lookup.
        """
        result_type = type(result).__name__
        if result_type not in RESULT_TYPES:
            raise TypeError(
                f"unregistered result type {result_type!r}; "
                f"choose from {sorted(RESULT_TYPES)}"
            )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": spec.to_dict() if spec is not None else None,
            "result_type": result_type,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> list:
        """All entry keys currently on disk, sorted.

        Only files in the two-level ``<hex2>/<key>.json`` layout count;
        anything nested deeper (e.g. the per-shard caches an
        orchestrated run keeps under ``<root>/shards/``) is invisible
        to the parent cache.
        """
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*/*.json"))

    def read_bytes(self, key: str) -> bytes:
        """The raw serialized entry for ``key`` (``FileNotFoundError``
        on a miss).  Shard merges compare and copy these bytes verbatim
        so merged entries stay bit-identical to their producers'."""
        return self.path_for(key).read_bytes()

    def put_bytes(self, key: str, blob: bytes) -> Path:
        """Atomically store an already-serialized entry verbatim.

        This is the merge half of :meth:`read_bytes`: shard caches are
        unioned by copying entry bytes, never by re-serializing, so a
        merged cache is byte-identical to one produced by a single
        unsharded run.  The blob must parse as a current-schema entry
        for ``key``; anything else raises ``ValueError`` rather than
        planting a poisoned entry.
        """
        data = json.loads(blob.decode())
        if data.get("schema") != CACHE_SCHEMA:
            raise ValueError(
                f"entry schema {data.get('schema')!r} != {CACHE_SCHEMA}"
            )
        if data.get("key") != key:
            raise ValueError(
                f"entry is keyed {data.get('key')!r}, not {key!r}"
            )
        if data.get("result_type", "RunResult") not in RESULT_TYPES:
            raise ValueError(
                f"unregistered result type {data.get('result_type')!r}"
            )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
