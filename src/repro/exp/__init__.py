"""Experiment orchestration: sweeps, parallel execution, result cache.

The subsystem has four parts (see DESIGN.md §3):

* :mod:`repro.exp.spec` — declarative :class:`RunSpec` / grid-style
  :class:`SweepSpec` with deterministic expansion order;
* :mod:`repro.exp.runner` — :class:`Runner`, a process-pool executor
  with per-run timeouts, bounded retry, and order-stable results;
* :mod:`repro.exp.cache` — :class:`ResultCache`, a content-addressed
  store of serialized results keyed by a stable hash of the config,
  workload parameters, scheduler/prefetcher/team-size, seeds, and the
  package source fingerprint;
* :mod:`repro.exp.manifest` — :class:`Manifest`, an append-only JSONL
  audit trail of every run (key, hit/miss, wall time, worker, shard).

:mod:`repro.exp.shard` layers cross-process sharding on top: a
:class:`ShardSpec` partitions any sweep by hash-range of the cache
key, :func:`run_shard` executes one slice into a private directory,
:func:`merge_caches` unions shard caches conflict-safely, and
:func:`run_all_shards` orchestrates a full local multi-process sweep
(``repro shard`` on the command line).
"""

from repro.exp.cache import (
    CACHE_SCHEMA,
    RESULT_TYPES,
    ResultCache,
    code_fingerprint,
    spec_key,
)
from repro.exp.manifest import (
    Manifest,
    ManifestEntry,
    ManifestSummary,
    summarize_entries,
)
from repro.exp.runner import (
    RunError,
    Runner,
    SimTimeoutError,
    execute_spec,
)
from repro.exp.shard import (
    MergeReport,
    ShardFailure,
    ShardMergeConflict,
    ShardRun,
    ShardSweepReport,
    merge_caches,
    partition,
    run_all_shards,
    run_shard,
    shard_root,
)
from repro.exp.spec import MODES, RunSpec, ShardSpec, SweepSpec

__all__ = [
    "CACHE_SCHEMA",
    "MODES",
    "Manifest",
    "ManifestEntry",
    "ManifestSummary",
    "MergeReport",
    "RESULT_TYPES",
    "ResultCache",
    "RunError",
    "RunSpec",
    "Runner",
    "ShardFailure",
    "ShardMergeConflict",
    "ShardRun",
    "ShardSpec",
    "ShardSweepReport",
    "SimTimeoutError",
    "SweepSpec",
    "code_fingerprint",
    "execute_spec",
    "merge_caches",
    "partition",
    "run_all_shards",
    "run_shard",
    "shard_root",
    "spec_key",
    "summarize_entries",
]
