"""Experiment orchestration: sweeps, parallel execution, result cache.

The subsystem has four parts (see DESIGN.md §3):

* :mod:`repro.exp.spec` — declarative :class:`RunSpec` / grid-style
  :class:`SweepSpec` with deterministic expansion order;
* :mod:`repro.exp.runner` — :class:`Runner`, a process-pool executor
  with per-run timeouts, bounded retry, and order-stable results;
* :mod:`repro.exp.cache` — :class:`ResultCache`, a content-addressed
  store of serialized results keyed by a stable hash of the config,
  workload parameters, scheduler/prefetcher/team-size, seeds, and the
  package source fingerprint;
* :mod:`repro.exp.manifest` — :class:`Manifest`, an append-only JSONL
  audit trail of every run (key, hit/miss, wall time, worker, shard).

:mod:`repro.exp.shard` layers cross-process sharding on top: a
:class:`ShardSpec` partitions any sweep by hash-range of the cache
key, :func:`run_shard` executes one slice into a private directory,
:func:`merge_caches` unions shard caches conflict-safely, and
:func:`run_all_shards` orchestrates a full local multi-process sweep
(``repro shard`` on the command line).

:mod:`repro.exp.diff` and :mod:`repro.exp.baseline` are ``repro.audit``
— the auditing layer over the whole pipeline: ``repro diff`` aligns
two sweeps by spec identity and reports per-metric drift,
``repro diff --reference`` cross-checks the fast and reference
kernels byte-for-byte, and ``repro baseline pin|check|update``
maintains committed metric snapshots that give CI a cell-level
regression gate.
"""

from repro.exp.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineError,
    check_baseline,
    pin_baseline,
    snapshot_cells,
    update_baseline,
)
from repro.exp.cache import (
    CACHE_SCHEMA,
    IDENTITY_SCHEMA,
    RESULT_TYPES,
    ResultCache,
    code_fingerprint,
    spec_identity,
    spec_key,
)
from repro.exp.diff import (
    AuditFigure,
    AuditReport,
    Cell,
    CellDiff,
    DiffReport,
    MetricDelta,
    Tolerance,
    audit_diff,
    diff_cells,
    diff_manifests,
    manifest_cells,
    metric_vector,
    reference_diff,
)
from repro.exp.manifest import (
    Manifest,
    ManifestEntry,
    ManifestSummary,
    summarize_entries,
)
from repro.exp.runner import (
    RunError,
    Runner,
    SimTimeoutError,
    execute_spec,
)
from repro.exp.shard import (
    MergeReport,
    ShardFailure,
    ShardMergeConflict,
    ShardRun,
    ShardSweepReport,
    merge_caches,
    partition,
    run_all_shards,
    run_shard,
    shard_root,
)
from repro.exp.spec import MODES, RunSpec, ShardSpec, SweepSpec

__all__ = [
    "AuditFigure",
    "AuditReport",
    "BASELINE_SCHEMA",
    "Baseline",
    "BaselineError",
    "CACHE_SCHEMA",
    "Cell",
    "CellDiff",
    "DiffReport",
    "IDENTITY_SCHEMA",
    "MODES",
    "Manifest",
    "ManifestEntry",
    "ManifestSummary",
    "MergeReport",
    "MetricDelta",
    "RESULT_TYPES",
    "ResultCache",
    "RunError",
    "RunSpec",
    "Runner",
    "ShardFailure",
    "ShardMergeConflict",
    "ShardRun",
    "ShardSpec",
    "ShardSweepReport",
    "SimTimeoutError",
    "SweepSpec",
    "Tolerance",
    "audit_diff",
    "check_baseline",
    "code_fingerprint",
    "diff_cells",
    "diff_manifests",
    "execute_spec",
    "manifest_cells",
    "merge_caches",
    "metric_vector",
    "partition",
    "pin_baseline",
    "snapshot_cells",
    "reference_diff",
    "run_all_shards",
    "run_shard",
    "shard_root",
    "spec_identity",
    "spec_key",
    "summarize_entries",
    "update_baseline",
]
