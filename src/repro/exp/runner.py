"""Parallel experiment runner.

:class:`Runner` fans a list of :class:`~repro.exp.spec.RunSpec`s out
over a ``ProcessPoolExecutor``, with:

* **cache short-circuit** — runs whose key is already in the
  :class:`~repro.exp.cache.ResultCache` never reach a worker;
* **per-run timeout** — enforced *inside* the worker process with a
  real-time interval timer (``SIGALRM``), so a wedged simulation is
  interrupted rather than merely abandoned;
* **bounded retry** — transient failures (a killed worker, a broken
  pool, a timeout) are retried up to ``retries`` times; deterministic
  errors (e.g. a ``ValueError`` from the simulator) fail fast;
* **deterministic ordering** — results are returned positionally
  aligned with the submitted specs regardless of completion order.

``jobs <= 1`` runs everything in-process (no pool), which is also the
fallback the benchmarks use by default so a plain ``pytest`` invocation
stays single-process.  Parallel and serial execution produce identical
results: each run re-derives everything from its spec's seeds.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import uuid
import warnings
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.analysis.overlap import OverlapAnalysis, OverlapResult
from repro.core.fptable import FootprintResult, profile_fptable
from repro.core.identical import replicate_instances
from repro.exp.cache import RESULT_TYPES, ResultCache, spec_key
from repro.exp.manifest import Manifest, ManifestEntry
from repro.exp.spec import RunSpec, ShardSpec, SweepSpec
from repro.sim.api import simulate
from repro.workloads import make_workload


class SimTimeoutError(RuntimeError):
    """A run exceeded its per-run wall-clock budget."""


class RunError(RuntimeError):
    """A run failed permanently (retries exhausted or deterministic).

    Attributes:
        spec: the failing :class:`RunSpec`.
        attempts: how many times it was attempted.
    """

    def __init__(self, spec: RunSpec, attempts: int, cause: BaseException):
        super().__init__(
            f"run {spec.describe()} failed after {attempts} "
            f"attempt(s): {cause!r}"
        )
        self.spec = spec
        self.attempts = attempts


#: Per-process memo of generated trace sets.  A sweep typically varies
#: schedulers/cores/overrides over few distinct workload settings, so
#: each worker regenerates the same traces over and over without this.
#: Bounded LRU: trace sets are a few MB each at default scale.
_TRACE_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_TRACE_MEMO_MAX = 32

#: Per-process memo tallies.  The sweep service reads these through
#: :func:`trace_memo_stats` to report how warm each long-lived worker
#: actually is (a cold worker regenerates traces; a warm one reuses).
_TRACE_MEMO_STATS = {"hits": 0, "misses": 0}


def trace_memo_stats() -> Dict[str, int]:
    """Snapshot of this process's trace-memo hit/miss counters."""
    return dict(_TRACE_MEMO_STATS)


def _workload_traces(spec: RunSpec, l1i_blocks: int) -> Tuple[str, list]:
    """``(workload_name, traces)`` for a spec, memoized per process.

    Trace generation is a pure function of the key fields (workload
    suite, L1-I geometry, seeds, mode, type, counts), so sharing one
    trace set across a sweep's cells is safe: traces are immutable by
    convention and the engine's derived-view memos
    (:meth:`~repro.trace.trace.TransactionTrace.packed_events`) stay
    warm across cells as a bonus.
    """
    mix_seed = spec.effective_mix_seed()
    key = (spec.workload, l1i_blocks, spec.seed, spec.mode,
           spec.txn_type, spec.transactions, spec.replicas, mix_seed)
    memo = _TRACE_MEMO.get(key)
    if memo is not None:
        _TRACE_MEMO.move_to_end(key)
        _TRACE_MEMO_STATS["hits"] += 1
        return memo
    _TRACE_MEMO_STATS["misses"] += 1
    workload = make_workload(spec.workload, l1i_blocks, spec.seed)
    if spec.mode == "mix":
        traces = workload.generate_mix(spec.transactions, seed=mix_seed)
    elif spec.mode in ("uniform", "overlap"):
        traces = workload.generate_uniform(
            spec.txn_type, spec.transactions, seed=mix_seed)
    elif spec.mode == "identical":
        traces = replicate_instances(
            workload, spec.txn_type, instances=spec.transactions,
            replicas=spec.replicas, seed=mix_seed)
    elif spec.mode == "fptable":
        traces = []
        for type_name in workload.type_names():
            traces += workload.generate_uniform(
                type_name, spec.transactions, seed=mix_seed)
    else:  # pragma: no cover - spec validation rejects unknown modes
        raise ValueError(f"unknown mode {spec.mode!r}")
    memo = (workload.name, traces)
    _TRACE_MEMO[key] = memo
    if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.popitem(last=False)
    return memo


def execute_spec(spec: RunSpec):
    """Execute one spec end to end (config, workload, traces, run).

    Dispatches on ``spec.mode`` (see :data:`repro.exp.spec.MODES`):
    the simulation modes return a :class:`RunResult`, ``overlap``
    returns an :class:`OverlapResult`, and ``fptable`` a
    :class:`FootprintResult` — every mode's result type is registered
    in :data:`repro.exp.cache.RESULT_TYPES` so it caches identically.
    Trace generation is memoized per process (see
    :func:`_workload_traces`).
    """
    config = spec.build_config()
    workload_name, traces = _workload_traces(spec, config.l1i_blocks)
    if spec.mode == "overlap":
        analysis = OverlapAnalysis(config)
        return OverlapResult(txn_type=spec.txn_type,
                             intervals=analysis.run(traces))
    if spec.mode == "fptable":
        table = profile_fptable(traces, config,
                                samples_per_type=spec.transactions)
        return FootprintResult(units_by_type=table.as_dict())
    return simulate(
        config,
        traces,
        spec.scheduler,
        workload_name,
        prefetcher=spec.prefetcher,
        team_size=spec.team_size,
    )


#: One warning per process when a timeout is requested but cannot be
#: armed (no SIGALRM, or we are not on the main thread — ``signal.
#: signal`` raises ``ValueError`` anywhere else).  The run proceeds
#: without a budget rather than dying on the arming attempt.
_TIMEOUT_UNARMED_WARNED = False


def _worker_run(spec: RunSpec, timeout: Optional[float]):
    """Worker entry point: run one spec under an optional alarm.

    Returns ``(result_dict, result_type, worker_pid, wall_seconds)``.
    The result crosses the process boundary as a plain dict plus its
    registered type name, which doubles as the cache's serialized
    form.

    The alarm is armed only when the platform has ``SIGALRM`` *and*
    this is the process's main thread: signal handlers can only be
    installed there, and the sweep service runs cells inline on a
    worker's executor thread.  When a timeout is requested but cannot
    be armed, the run falls back to no-timeout with a one-time
    warning instead of crashing on ``signal.signal``.
    """
    global _TIMEOUT_UNARMED_WARNED
    start = time.perf_counter()
    use_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if timeout is not None and not use_alarm and \
            not _TIMEOUT_UNARMED_WARNED:
        _TIMEOUT_UNARMED_WARNED = True
        warnings.warn(
            "per-run timeout requested but SIGALRM cannot be armed "
            "(not on the main thread or platform lacks SIGALRM); "
            "running without a wall-clock budget",
            RuntimeWarning,
            stacklevel=2,
        )
    if use_alarm:
        def _on_alarm(signum, frame):
            raise SimTimeoutError(
                f"run exceeded {timeout:.3f}s: {spec.describe()}")
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        # One span per executed cell; a timeout or crash still closes
        # it (tagged error=<type>) before the exception propagates to
        # the retry logic, so the sink records where the time went.
        with obs.span(
            "cell",
            spec=spec.describe(),
            workload=spec.workload,
            scheduler=spec.scheduler,
            mode=spec.mode,
            cores=spec.cores,
            seed=spec.seed,
        ):
            result = execute_spec(spec)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
        # Flush this process's metrics delta after every cell: pool
        # workers are long-lived and may be torn down without running
        # exit hooks, and a per-cell delta line is tiny.
        obs.flush()
    return (result.to_dict(), type(result).__name__, os.getpid(),
            time.perf_counter() - start)


#: Failures worth retrying: a worker died, the pool broke, a run timed
#: out, or the OS hiccuped.  Anything else is assumed deterministic
#: (the simulator is a pure function of the spec) and fails fast.
_RETRYABLE = (BrokenProcessPool, SimTimeoutError, OSError, EOFError)


class Runner:
    """Executes specs with caching, parallelism, timeout, and retry.

    Args:
        jobs: worker processes; ``<= 1`` runs in-process.
        cache: result cache, or ``None`` to disable caching entirely.
        manifest: run manifest, or ``None`` to skip manifest logging.
            Defaults to ``manifest.jsonl`` inside the cache root.
        timeout: per-run wall-clock budget in seconds (``None`` = no
            limit).
        retries: extra attempts after a *transient* failure.
        shard: hash-range slice of the sweep to execute
            (:class:`~repro.exp.spec.ShardSpec`), or ``None`` for the
            whole sweep.  Sharding partitions *computation*, not
            reads: a spec outside the shard is still served from the
            cache when possible (reads are free and keep a merged
            cache fully usable), but on a miss it is skipped — no
            execution, no manifest row, a ``None`` hole in the
            positional results — and tallied in :attr:`skipped`.
            Manifest rows of a sharded run carry the shard's ``"i/N"``
            label.

    After each :meth:`run`, :attr:`hits` / :attr:`misses` /
    :attr:`skipped` hold the cache and shard tallies and
    :attr:`entries` the manifest rows of that sweep.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        manifest: Optional[Manifest] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        shard: Optional[ShardSpec] = None,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = max(1, int(jobs))
        self.cache = cache
        if manifest is None and cache is not None:
            manifest = Manifest(cache.root / "manifest.jsonl")
        self.manifest = manifest
        self.timeout = timeout
        self.retries = retries
        self.shard = shard
        self.hits = 0
        self.misses = 0
        self.skipped = 0
        self.entries: List[ManifestEntry] = []
        self._sweep_id = uuid.uuid4().hex[:12]
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: Union[SweepSpec, Iterable[RunSpec]]
            ) -> List:
        """Run every spec; results align positionally with the specs.

        A :class:`SweepSpec` is expanded first (its deterministic
        order *is* the result order).  Each result's type follows its
        spec's mode (``RunResult`` for the simulation modes,
        ``OverlapResult``/``FootprintResult`` for the analysis modes).

        With a :attr:`shard`, only the specs the shard owns (or the
        cache already holds) produce results; the rest stay ``None``
        in the returned list.
        """
        if isinstance(specs, SweepSpec):
            specs = specs.expand()
        specs = list(specs)
        self.hits = 0
        self.misses = 0
        self.skipped = 0
        self.entries = []
        # One id per run() call: manifest retention ("keep the last N
        # sweeps") groups rows by it.
        self._sweep_id = uuid.uuid4().hex[:12]

        with obs.span(
            "sweep",
            sweep=self._sweep_id,
            cells=len(specs),
            jobs=self.jobs,
            shard=str(self.shard) if self.shard is not None else None,
        ) as span:
            keys = [spec_key(spec) for spec in specs]
            results: List[Optional[object]] = [None] * len(specs)
            pending: List[int] = []
            for idx, spec in enumerate(specs):
                cached = (
                    self.cache.get(keys[idx]) if self.cache else None
                )
                if cached is not None:
                    results[idx] = cached
                    self._record(idx, spec, keys[idx], hit=True,
                                 wall=0.0, worker=None, attempts=0)
                elif self.shard is not None and \
                        not self.shard.selects(keys[idx]):
                    self.skipped += 1
                else:
                    pending.append(idx)

            if pending:
                if self.jobs <= 1 or len(pending) == 1:
                    self._run_serial(specs, keys, pending, results)
                else:
                    self._run_parallel(specs, keys, pending, results)
            if span.armed:
                span.add("hits", self.hits)
                span.add("misses", self.misses)
                span.add("skipped", self.skipped)
                tracer = obs.tracer()
                if tracer is not None:
                    metrics = tracer.metrics
                    metrics.inc("exp.cells.hit", self.hits)
                    metrics.inc("exp.cells.executed", self.misses)
                    metrics.inc("exp.cells.skipped", self.skipped)
                    tracer.flush_metrics()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(self, specs, keys, pending, results) -> None:
        for idx in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload, rtype, worker, wall = _worker_run(
                        specs[idx], self.timeout)
                except Exception as exc:
                    self._check_attempt(specs[idx], attempts, exc)
                    continue
                break
            self._complete(idx, specs, keys, results, payload, rtype,
                           wall, worker, attempts)

    def _run_parallel(self, specs, keys, pending, results) -> None:
        attempts: Dict[int, int] = {idx: 0 for idx in pending}
        futures = {}
        try:
            for idx in pending:
                futures[self._submit(specs[idx])] = idx
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    idx = futures.pop(future)
                    attempts[idx] += 1
                    try:
                        payload, rtype, worker, wall = future.result()
                    except Exception as exc:
                        self._check_attempt(specs[idx], attempts[idx], exc)
                        futures[self._submit(specs[idx])] = idx
                        continue
                    self._complete(idx, specs, keys, results, payload,
                                   rtype, wall, worker, attempts[idx])
        finally:
            self._shutdown_pool()

    def _submit(self, spec: RunSpec):
        """Submit to the pool, replacing it once if it has broken."""
        for _ in range(2):
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                return self._pool.submit(_worker_run, spec, self.timeout)
            except BrokenProcessPool:
                self._shutdown_pool()
        raise RunError(spec, 0, BrokenProcessPool(
            "worker pool broke twice during submission"))

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _check_attempt(self, spec: RunSpec, attempts: int,
                       exc: BaseException) -> None:
        """Raise :class:`RunError` unless another retry is allowed."""
        retryable = isinstance(exc, _RETRYABLE)
        if not retryable or attempts > self.retries:
            obs.add("failures")
            obs.metric_inc("exp.failures")
            raise RunError(spec, attempts, exc) from exc
        # A retry is about to happen: tally it on the open sweep span
        # and in the process metrics (timeouts separately -- they are
        # the retry cause perf triage cares about most).
        obs.add("retries")
        obs.metric_inc("exp.retries")
        if isinstance(exc, SimTimeoutError):
            obs.add("timeouts")
            obs.metric_inc("exp.timeouts")
        if isinstance(exc, BrokenProcessPool):
            self._shutdown_pool()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _complete(self, idx, specs, keys, results, payload, rtype,
                  wall, worker, attempts) -> None:
        result = RESULT_TYPES[rtype].from_dict(payload)
        results[idx] = result
        if self.cache is not None:
            self.cache.put(keys[idx], result, specs[idx])
        self._record(idx, specs[idx], keys[idx], hit=False, wall=wall,
                     worker=worker, attempts=attempts)

    def _record(self, idx, spec, key, hit, wall, worker,
                attempts) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            obs.metric_observe("exp.cell.wall_us", wall * 1e6)
        entry = ManifestEntry(
            key=key,
            spec=spec.to_dict(),
            hit=hit,
            wall_s=round(wall, 6),
            worker=worker,
            attempts=attempts,
            ts=round(time.time(), 3),
            sweep=self._sweep_id,
            shard=str(self.shard) if self.shard is not None else None,
        )
        self.entries.append(entry)
        if self.manifest is not None:
            self.manifest.record(entry)
