"""Pinned baselines: a committed regression gate for cached sweeps.

A *baseline* snapshots a sweep's **metric vectors** — not raw result
bytes — keyed by spec identity, into a small JSON file meant to live
in version control (``baselines/`` by convention).  Because the
snapshot holds metrics rather than cache keys, a fingerprint-only
change (refactor, comment, docstring) re-keys the cache but leaves
the baseline green; only a change that actually moves a metric trips
it.  That makes ``repro baseline check`` a real CI regression gate:

* ``repro baseline pin <file> <grid flags>`` — run a grid (tiny scale
  in CI) and write the snapshot;
* ``repro baseline check <file>`` — re-run the *pinned specs* (the
  file is self-contained; no grid flags needed) and diff the fresh
  metric vectors against the pin, exiting nonzero on drift;
* ``repro baseline update <file>`` — re-run the pinned specs and
  overwrite the snapshot (the "this change is intentional" half of
  the workflow, reviewed like any other diff).

The comparison itself is :func:`repro.exp.diff.diff_cells`, so a
failing check names the exact cells and metrics that moved.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exp.cache import IDENTITY_SCHEMA, spec_identity
from repro.exp.diff import Cell, DiffReport, Tolerance, diff_cells
from repro.exp.runner import Runner
from repro.exp.spec import RunSpec

#: Bump when the baseline file format changes shape.
BASELINE_SCHEMA = 1


class BaselineError(ValueError):
    """A baseline file is malformed or incompatible."""


def snapshot_cells(specs: Sequence[RunSpec], results: Sequence[object]
                   ) -> Dict[str, Cell]:
    """Identity-aligned cells for spec/result pairs (run them first)."""
    if len(specs) != len(results):
        raise ValueError(
            f"{len(specs)} spec(s) but {len(results)} result(s)")
    cells: Dict[str, Cell] = {}
    for spec, result in zip(specs, results):
        if result is None:
            raise ValueError(
                f"cell {spec.describe()} has no result (sharded run?); "
                f"baselines need the whole grid")
        cell = Cell.from_result(spec, result)
        cells[cell.identity] = cell
    return cells


class Baseline:
    """An identity-keyed metric snapshot with a stable file form."""

    def __init__(self, cells: Dict[str, Cell],
                 name: Optional[str] = None,
                 created: Optional[float] = None):
        self.cells = dict(cells)
        self.name = name
        self.created = created

    @classmethod
    def from_run(cls, specs: Sequence[RunSpec],
                 results: Sequence[object],
                 name: Optional[str] = None) -> "Baseline":
        return cls(snapshot_cells(specs, results), name=name,
                   created=round(time.time(), 3))

    def specs(self) -> List[RunSpec]:
        """The pinned specs, in stable (label) order."""
        return [RunSpec.from_dict(cell.spec)
                for cell in sorted(self.cells.values(),
                                   key=lambda c: (c.label, c.identity))]

    def to_dict(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "identity_schema": IDENTITY_SCHEMA,
            "name": self.name,
            "created": self.created,
            "cells": [
                {
                    "identity": cell.identity,
                    "label": cell.label,
                    "spec": cell.spec,
                    "result_type": cell.result_type,
                    "metrics": cell.metrics,
                }
                for cell in sorted(self.cells.values(),
                                   key=lambda c: (c.label, c.identity))
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Baseline":
        if not isinstance(data, dict):
            raise BaselineError(
                f"baseline must be a JSON object, got "
                f"{type(data).__name__}")
        if data.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"baseline schema {data.get('schema')!r} != "
                f"{BASELINE_SCHEMA}; re-pin it")
        if data.get("identity_schema") != IDENTITY_SCHEMA:
            raise BaselineError(
                f"baseline identity schema "
                f"{data.get('identity_schema')!r} != {IDENTITY_SCHEMA}; "
                f"re-pin it")
        cells: Dict[str, Cell] = {}
        for row in data.get("cells", []):
            spec = RunSpec.from_dict(row["spec"])
            identity = spec_identity(spec)
            if row.get("identity") not in (None, identity):
                raise BaselineError(
                    f"cell {row.get('label')!r} carries identity "
                    f"{row.get('identity')!r} but its spec hashes to "
                    f"{identity!r}; the file was hand-edited or "
                    f"corrupted — re-pin it")
            cells[identity] = Cell(
                identity=identity,
                spec=spec.to_dict(),
                label=spec.describe(),
                result_type=row.get("result_type"),
                metrics=row.get("metrics"),
            )
        if not cells:
            raise BaselineError("baseline holds no cells")
        return cls(cells, name=data.get("name"),
                   created=data.get("created"))

    def save(self, path: Union[Path, str]) -> Path:
        """Write the stable, diff-friendly JSON form."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True)
            + "\n")
        return path

    @classmethod
    def load(cls, path: Union[Path, str]) -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def pin_baseline(specs: Sequence[RunSpec], path: Union[Path, str],
                 runner: Optional[Runner] = None,
                 name: Optional[str] = None) -> Baseline:
    """Run ``specs`` and snapshot their metric vectors to ``path``."""
    runner = runner or Runner()
    results = runner.run(list(specs))
    baseline = Baseline.from_run(list(specs), results, name=name)
    baseline.save(path)
    return baseline


def check_baseline(baseline: Union[Baseline, Path, str],
                   runner: Optional[Runner] = None,
                   tolerance: Optional[Tolerance] = None) -> DiffReport:
    """Re-run a baseline's pinned specs and diff against the pin.

    The pinned side is A (the reference); the fresh run is B.  The
    cache is fair game for the fresh side — the content-addressed key
    folds in the source fingerprint, so a code change forces real
    re-execution while an unchanged tree is served instantly.
    """
    if not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)
    runner = runner or Runner()
    specs = baseline.specs()
    results = runner.run(specs)
    fresh = snapshot_cells(specs, results)
    return diff_cells(baseline.cells, fresh, tolerance)


def update_baseline(path: Union[Path, str],
                    runner: Optional[Runner] = None) -> Baseline:
    """Re-run a baseline's pinned specs and overwrite the snapshot."""
    prior = Baseline.load(path)
    runner = runner or Runner()
    specs = prior.specs()
    results = runner.run(specs)
    fresh = Baseline.from_run(specs, results, name=prior.name)
    fresh.save(path)
    return fresh
