"""Cross-process sweep sharding: partition, run, relay, merge.

The :class:`~repro.exp.runner.Runner` parallelizes within one process
pool; this module scales a sweep *across* processes and machines.  The
design has one load-bearing idea: a sweep is partitioned by hash-range
of its content-addressed cache keys (see
:class:`~repro.exp.spec.ShardSpec`), so every executor derives the
same partition independently and the cache directory is the only merge
point.  Three layers build on it:

* :func:`run_shard` — execute one shard of a spec list into a
  *private* cache/manifest directory (what ``repro shard --shard i/N``
  runs, on this machine or any other);
* :func:`merge_caches` — union shard caches into a destination cache
  by copying entry bytes verbatim, refusing loudly on a conflict
  (same key, different payload ⇒ :class:`ShardMergeConflict` citing
  both copies) — never last-writer-wins;
* :func:`run_all_shards` — a local orchestrator
  (``repro shard --all``) that launches one subprocess per shard,
  streams each shard's manifest rows into the shared manifest as they
  appear, relaunches a crashed shard with *only its missing keys*
  (the private cache preserves completed cells across the crash), and
  merges everything at the end.

Determinism makes the merge safe: the simulator is a pure function of
the spec, serialization is canonical, so two shards can only disagree
about a key if their code or environment diverged — exactly the
condition a conflict error should surface instead of papering over.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.exp.cache import ResultCache, spec_key
from repro.exp.manifest import Manifest, ManifestEntry
from repro.exp.runner import Runner
from repro.exp.spec import RunSpec, ShardSpec, SweepSpec


class ShardMergeConflict(RuntimeError):
    """Two caches hold different payloads for the same key.

    Raised by :func:`merge_caches` instead of picking a winner: the
    cache is content-addressed, so a conflict means the 'content'
    (simulator code, environment, or determinism) diverged between the
    executors and every cell they produced is suspect.

    Attributes:
        key: the conflicting cache key.
        ours: path of the copy already merged (or pre-existing in the
            destination).
        theirs: path of the conflicting shard copy.
    """

    def __init__(self, key: str, ours: Path, theirs: Path):
        super().__init__(
            f"merge conflict for cache key {key}: {ours} and {theirs} "
            f"hold different payloads for the same content-addressed "
            f"key; refusing to merge.  The simulator is deterministic, "
            f"so the shards' code or environment diverged — re-run the "
            f"affected shard(s) at one version."
        )
        self.key = key
        self.ours = Path(ours)
        self.theirs = Path(theirs)


class ShardFailure(RuntimeError):
    """A shard subprocess could not be driven to completion."""


def shard_root(cache_dir: Union[Path, str], shard: ShardSpec) -> Path:
    """The conventional private cache directory of one shard.

    Lives *under* the shared cache directory (``shards/<i>-of-<N>``)
    so everything about a sweep stays in one tree, but nested one
    level deeper than the ``<hex2>/<key>.json`` layout so the shared
    cache never globs shard-private entries by accident.
    """
    return Path(cache_dir) / "shards" / f"{shard.index}-of-{shard.count}"


def partition(specs: Sequence[RunSpec], count: int
              ) -> Tuple[List[str], Dict[int, List[int]]]:
    """Keys and the shard partition of a spec list.

    Returns ``(keys, by_shard)`` where ``keys`` aligns with ``specs``
    and ``by_shard[i]`` lists the spec indices shard ``i`` owns.  Every
    index lands in exactly one shard (the partition property
    ``tests/test_properties.py`` pins).
    """
    keys = [spec_key(spec) for spec in specs]
    by_shard: Dict[int, List[int]] = {i: [] for i in range(count)}
    for idx, key in enumerate(keys):
        by_shard[ShardSpec.assign(key, count)].append(idx)
    return keys, by_shard


# ---------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------

@dataclass
class MergeReport:
    """What :func:`merge_caches` did.

    Attributes:
        added: entries copied into the destination.
        identical: entries skipped because the destination already held
            an equal payload (byte-identical, or differing only in the
            debug ``spec`` field two spellings of one key can carry).
        corrupt: source entries skipped because they do not parse as
            valid current-schema entries (a shard killed mid-write
            leaves none thanks to atomic writes, but a torn copy is a
            local cache miss and must stay one here).
        sources: shard directories examined.
    """

    added: int = 0
    identical: int = 0
    corrupt: int = 0
    sources: int = 0

    def describe(self) -> str:
        return (f"merged {self.added} entr(ies) from {self.sources} "
                f"shard cache(s); {self.identical} already present, "
                f"{self.corrupt} corrupt source entr(ies) skipped")


def _parse_entry(blob: bytes, key: str) -> Optional[dict]:
    """The decoded entry, or ``None`` if it is not a valid entry for
    ``key`` under the current schema."""
    from repro.exp.cache import CACHE_SCHEMA, RESULT_TYPES

    try:
        data = json.loads(blob.decode())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("schema") != CACHE_SCHEMA or data.get("key") != key:
        return None
    if data.get("result_type", "RunResult") not in RESULT_TYPES:
        return None
    if "result" not in data:
        return None
    return data


def _same_result(ours: dict, theirs: dict) -> bool:
    """Whether two valid entries carry the same result content.

    Two *different specs* can address one key (e.g. an override
    spelling out a default value), so the debug ``spec`` field may
    differ while the content agrees; only ``result_type`` + ``result``
    decide a conflict.
    """
    return (ours.get("result_type"), ours.get("result")) == \
        (theirs.get("result_type"), theirs.get("result"))


def merge_caches(dest: Union[ResultCache, Path, str],
                 sources: Iterable[Union[Path, str]]) -> MergeReport:
    """Union shard caches into ``dest``, byte-for-byte, conflict-safe.

    Entries are copied verbatim (:meth:`ResultCache.read_bytes` →
    :meth:`ResultCache.put_bytes`), so a merged cache is byte-identical
    to one an unsharded run would have produced.  A key present on
    both sides with *different result content* raises
    :class:`ShardMergeConflict` naming both copies — by design there
    is no way to silently prefer either.
    """
    if not isinstance(dest, ResultCache):
        dest = ResultCache(dest)
    report = MergeReport()
    merged_from: Dict[str, Path] = {}
    with obs.span("shard.merge", dest=str(dest.root)) as span:
        for source_root in sources:
            source = ResultCache(source_root)
            report.sources += 1
            for key in source.keys():
                blob = source.read_bytes(key)
                entry = _parse_entry(blob, key)
                if entry is None:
                    report.corrupt += 1
                    continue
                dest_path = dest.path_for(key)
                if dest_path.exists():
                    current = dest_path.read_bytes()
                    if current == blob:
                        report.identical += 1
                        continue
                    existing = _parse_entry(current, key)
                    if existing is None:
                        # Torn destination entry: a local miss, safe to
                        # heal with the shard's valid copy.
                        dest.put_bytes(key, blob)
                        merged_from[key] = source.path_for(key)
                        report.added += 1
                        continue
                    if _same_result(existing, entry):
                        report.identical += 1
                        continue
                    raise ShardMergeConflict(
                        key, merged_from.get(key, dest_path),
                        source.path_for(key))
                dest.put_bytes(key, blob)
                merged_from[key] = source.path_for(key)
                report.added += 1
        if span.armed:
            span.add("sources", report.sources)
            span.add("added", report.added)
            span.add("identical", report.identical)
            span.add("corrupt", report.corrupt)
    return report


# ---------------------------------------------------------------------
# One shard
# ---------------------------------------------------------------------

@dataclass
class ShardRun:
    """Outcome of :func:`run_shard`.

    ``results`` aligns positionally with the spec list that was passed
    in; cells the shard does not own are ``None`` holes.
    """

    shard: ShardSpec
    root: Path
    results: List[Optional[object]]
    hits: int
    misses: int
    skipped: int

    @property
    def selected(self) -> int:
        return self.hits + self.misses


def run_shard(specs: Union[SweepSpec, Sequence[RunSpec]],
              shard: ShardSpec,
              root: Union[Path, str],
              jobs: int = 1,
              timeout: Optional[float] = None,
              retries: int = 2) -> ShardRun:
    """Execute one shard of ``specs`` into a private cache at ``root``.

    The private directory gets its own ``manifest.jsonl`` whose rows
    carry the shard label; completed cells persist there across
    crashes, which is what lets a relaunch skip straight to the
    missing keys.  Merge the directory back with :func:`merge_caches`
    (or ``repro shard --merge``).
    """
    root = Path(root)
    cache = ResultCache(root)
    manifest = Manifest(root / "manifest.jsonl")
    with obs.span("shard", shard=str(shard), root=str(root)) as span:
        runner = Runner(jobs=jobs, cache=cache, manifest=manifest,
                        timeout=timeout, retries=retries, shard=shard)
        results = runner.run(specs)
        if span.armed:
            span.add("hits", runner.hits)
            span.add("misses", runner.misses)
            span.add("skipped", runner.skipped)
    return ShardRun(shard=shard, root=root, results=results,
                    hits=runner.hits, misses=runner.misses,
                    skipped=runner.skipped)


# ---------------------------------------------------------------------
# Local multi-process orchestrator
# ---------------------------------------------------------------------

def _shard_entry(specs: List[RunSpec], shard: ShardSpec, root: str,
                 jobs: int, timeout: Optional[float],
                 retries: int) -> None:
    """Subprocess entry point: run one shard's pending specs."""
    run_shard(specs, shard, root, jobs=jobs, timeout=timeout,
              retries=retries)


@dataclass
class ShardSweepReport:
    """Outcome of :func:`run_all_shards`.

    Attributes:
        specs: the expanded sweep, in deterministic order.
        keys: cache keys aligned with ``specs``.
        results: results aligned with ``specs`` (read back from the
            merged cache, so they are exactly what any later run will
            be served).
        count: how many shards the sweep was split into.
        launches: shard index → subprocess launches (>1 means the
            shard crashed and was relaunched on its missing keys).
        precached: cells already present in the shared cache that no
            shard had to touch.
        merge: the final :class:`MergeReport`.
    """

    specs: List[RunSpec]
    keys: List[str]
    results: List[object]
    count: int
    launches: Dict[int, int] = field(default_factory=dict)
    precached: int = 0
    merge: MergeReport = field(default_factory=MergeReport)

    @property
    def executed(self) -> int:
        return len(self.specs) - self.precached

    def describe(self) -> str:
        relaunched = sum(1 for n in self.launches.values() if n > 1)
        return (f"{len(self.specs)} cells over {self.count} shard(s): "
                f"{self.precached} pre-cached, {self.executed} ran in "
                f"{sum(self.launches.values())} shard launch(es) "
                f"({relaunched} shard(s) relaunched after a crash); "
                + self.merge.describe())


def run_all_shards(specs: Union[SweepSpec, Sequence[RunSpec]],
                   cache_dir: Union[Path, str],
                   count: int = 2,
                   procs: Optional[int] = None,
                   jobs: int = 1,
                   timeout: Optional[float] = None,
                   retries: int = 2,
                   relaunches: int = 2,
                   poll_interval: float = 0.05,
                   mp_context=None) -> ShardSweepReport:
    """Run a whole sweep as ``count`` shard subprocesses and merge.

    At most ``procs`` shards run concurrently (default: ``count``),
    each into its private directory under ``<cache_dir>/shards/``.
    While they run, their manifest rows are relayed into the shared
    ``<cache_dir>/manifest.jsonl`` (the ``shard`` column says who did
    what).  The orchestrator waits on the subprocess *sentinels* (with
    ``poll_interval`` as an upper bound so relaying keeps streaming),
    so an exit is noticed immediately rather than on the next poll
    tick.  A shard whose process exits with owned cells still missing
    from its private cache — a crash, a kill, an unhandled error, or
    even a *clean exit 0* that silently skipped work — is relaunched
    with *only the missing specs*, up to ``relaunches`` extra times;
    completed cells are never recomputed because they survive in the
    private cache.  Exit status is never trusted as a success signal:
    owned-key completeness is verified on every exit.  When every shard is complete the
    private caches are merged into ``cache_dir`` (conflicts are hard
    errors) and results are read back from the merged cache.

    Cells already present in the shared cache are never assigned to a
    shard at all, so a warm rerun launches nothing.
    """
    with obs.span(
        "shard.orchestrate", cache_dir=str(cache_dir), shards=count
    ) as span:
        report = _run_all_shards(
            specs, cache_dir, count, procs, jobs, timeout, retries,
            relaunches, poll_interval, mp_context)
        if span.armed:
            relaunched = sum(
                n - 1 for n in report.launches.values() if n > 1)
            span.add("cells", len(report.specs))
            span.add("precached", report.precached)
            span.add("launches", sum(report.launches.values()))
            span.add("relaunches", relaunched)
            tracer = obs.tracer()
            if tracer is not None:
                tracer.metrics.inc(
                    "exp.shard.launches",
                    sum(report.launches.values()))
                tracer.metrics.inc(
                    "exp.shard.relaunches", relaunched)
                tracer.flush_metrics()
    return report


def _run_all_shards(specs, cache_dir, count, procs, jobs, timeout,
                    retries, relaunches, poll_interval,
                    mp_context) -> ShardSweepReport:
    if isinstance(specs, SweepSpec):
        specs = specs.expand()
    specs = list(specs)
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if relaunches < 0:
        raise ValueError("relaunches must be >= 0")
    procs = count if procs is None else max(1, int(procs))
    cache_dir = Path(cache_dir)
    dest = ResultCache(cache_dir)
    shared_manifest = Manifest(cache_dir / "manifest.jsonl")
    context = mp_context
    if context is None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)

    keys, by_shard = partition(specs, count)
    shards = {i: ShardSpec(i, count) for i in range(count)}
    roots = {i: shard_root(cache_dir, shards[i]) for i in range(count)}
    caches = {i: ResultCache(roots[i]) for i in range(count)}

    # Cells the shared cache already holds are settled; record them as
    # hits (attributed to their owning shard) and never ship them out.
    sweep_id = uuid.uuid4().hex[:12]
    precached = 0
    todo_by_shard: Dict[int, List[int]] = {i: [] for i in range(count)}
    for shard_index, indices in by_shard.items():
        for idx in indices:
            if dest.get(keys[idx]) is not None:
                precached += 1
                shared_manifest.record(ManifestEntry(
                    key=keys[idx], spec=specs[idx].to_dict(), hit=True,
                    wall_s=0.0, worker=None, attempts=0,
                    ts=round(time.time(), 3), sweep=sweep_id,
                    shard=str(shards[shard_index])))
            else:
                todo_by_shard[shard_index].append(idx)

    launches = {i: 0 for i in range(count) if todo_by_shard[i]}
    offsets: Dict[int, int] = {i: 0 for i in launches}

    def missing_specs(shard_index: int) -> List[RunSpec]:
        return [specs[idx] for idx in todo_by_shard[shard_index]
                if caches[shard_index].get(keys[idx]) is None]

    def relay(shard_index: int) -> None:
        lines, offsets[shard_index] = Manifest(
            roots[shard_index] / "manifest.jsonl"
        ).tail(offsets[shard_index])
        for line in lines:
            shared_manifest.record_raw(line)

    queue = deque(sorted(launches))
    running: Dict[int, multiprocessing.process.BaseProcess] = {}
    try:
        while queue or running:
            while queue and len(running) < procs:
                shard_index = queue.popleft()
                pending = missing_specs(shard_index)
                if not pending:
                    continue
                launches[shard_index] += 1
                process = context.Process(
                    target=_shard_entry,
                    args=(pending, shards[shard_index],
                          str(roots[shard_index]), jobs, timeout,
                          retries),
                )
                process.start()
                running[shard_index] = process
            if not running:
                continue
            # Block on the running processes' sentinels instead of a
            # fixed sleep: the loop wakes the instant any shard exits,
            # while the bounded timeout keeps manifest rows streaming
            # into the shared manifest for long-running shards.
            multiprocessing.connection.wait(
                [process.sentinel for process in running.values()],
                timeout=poll_interval)
            for shard_index, process in list(running.items()):
                relay(shard_index)
                if process.is_alive():
                    continue
                process.join()
                del running[shard_index]
                relay(shard_index)
                # Exit status alone proves nothing: a shard that exits
                # 0 with owned keys absent from its private cache (an
                # early sys.exit, a swallowed error) is as incomplete
                # as a crash.  Completeness of the owned key set is the
                # only success criterion; anything else relaunches on
                # the missing set or fails citing how the shard exited.
                still_missing = missing_specs(shard_index)
                if not still_missing:
                    continue
                if launches[shard_index] > relaunches:
                    exited = (
                        "cleanly (exit code 0)"
                        if process.exitcode == 0
                        else f"with code {process.exitcode}"
                    )
                    raise ShardFailure(
                        f"shard {shards[shard_index]} exited {exited} "
                        f"but left {len(still_missing)} owned cell(s) "
                        f"missing after {launches[shard_index]} "
                        f"launch(es); inspect {roots[shard_index]}"
                    )
                queue.append(shard_index)
    finally:
        for process in running.values():
            process.terminate()
        for process in running.values():
            process.join()

    merge = merge_caches(
        dest, [roots[i] for i in sorted(launches)])
    results: List[object] = []
    for spec, key in zip(specs, keys):
        result = dest.get(key)
        if result is None:  # pragma: no cover - defensive
            raise ShardFailure(
                f"cell {spec.describe()} (key {key}) is missing from "
                f"the merged cache at {cache_dir}"
            )
        results.append(result)
    return ShardSweepReport(specs=specs, keys=keys, results=results,
                            count=count, launches=launches,
                            precached=precached, merge=merge)
