"""Declarative experiment specifications.

A :class:`RunSpec` names one experiment completely: the workload and
its generation seeds, the system scale and core count, the scheduler /
prefetcher pair, the STREX team size, optional *config overrides*
(ablation knobs folded into the materialized
:class:`~repro.config.SystemConfig`), and the experiment *mode* (a
full mix simulation, a uniform single-type simulation, Fig. 4's
identical-replica construction, Fig. 2's overlap analysis, or Table
3's footprint profiling).  It is a frozen dataclass so it can be
hashed, pickled across process boundaries, and serialized into the
run manifest.

A :class:`SweepSpec` is a grid over those axes; :meth:`SweepSpec.expand`
flattens it into a deterministically-ordered list of ``RunSpec``s
(workload-major, seeds innermost), which is the order the
:class:`~repro.exp.runner.Runner` reports results in regardless of
which worker finishes first.  Override fields are declared as
``{knob: [values...]}`` grids and expand like any other axis, which is
what makes ablation studies declarative::

    SweepSpec(workloads=("tpcc",), schedulers=("strex",),
              strex_overrides={"phase_bits": [2, 4, 8]})
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import (
    SCALES,
    CacheConfig,
    HybridConfig,
    StrexConfig,
    SystemConfig,
)
from repro.sim.api import PREFETCHERS, SCHEDULERS
from repro.workloads import WORKLOADS

#: Experiment modes a spec can run (see :func:`repro.exp.runner.execute_spec`).
#:
#: * ``mix`` — simulate a ``generate_mix`` batch (the default; Figs. 5-9);
#: * ``uniform`` — simulate a single-type ``generate_uniform`` batch;
#: * ``identical`` — Fig. 4: ``transactions`` random instances of one
#:   type, each replicated ``replicas`` times, simulated back to back;
#: * ``overlap`` — Fig. 2: ``transactions`` concurrent same-type
#:   instances over private L1-Is, measured in overlap bands
#:   (produces an :class:`~repro.analysis.overlap.OverlapResult`);
#: * ``fptable`` — Table 3: profile ``transactions`` samples per
#:   transaction type into an FPTable (produces a
#:   :class:`~repro.core.fptable.FootprintResult`).
MODES = ("mix", "uniform", "identical", "overlap", "fptable")

#: Modes whose results are plain simulations (a ``RunResult``).
_SIMULATE_MODES = ("mix", "uniform", "identical")

#: Modes that require a ``txn_type``.
_TYPED_MODES = ("uniform", "identical", "overlap")

#: Schedulers that understand a STREX team size / StrexConfig knobs.
_TEAM_SCHEDULERS = ("strex", "hybrid")

#: Override field name -> config dataclass it targets.
_OVERRIDE_TARGETS = {
    "strex_overrides": StrexConfig,
    "cache_overrides": CacheConfig,
    "hybrid_overrides": HybridConfig,
}

#: JSON-scalar types allowed as override values (they must survive a
#: canonical-JSON round trip bit-identically to keep cache keys stable).
_SCALAR_TYPES = (bool, int, float, str, type(None))

Overrides = Optional[Tuple[Tuple[str, object], ...]]


def _freeze_overrides(field_name: str, value: object) -> Overrides:
    """Canonicalize an override mapping to a sorted tuple of pairs.

    Accepts ``None``, a mapping, or an already-frozen tuple of pairs;
    an empty mapping normalizes to ``None`` so that
    ``strex_overrides={}`` *is* (and cache-keys like) no overrides.
    """
    if value is None:
        return None
    if isinstance(value, Mapping):
        items = value.items()
    elif isinstance(value, tuple):
        items = value  # type: ignore[assignment]
    else:
        raise TypeError(
            f"{field_name} must be a mapping of config-field name to "
            f"value, got {value!r}"
        )
    target = _OVERRIDE_TARGETS[field_name]
    known = {f.name for f in dataclasses.fields(target)}
    frozen = []
    for item in items:
        name, val = item
        if name not in known:
            raise ValueError(
                f"{field_name}: unknown {target.__name__} field "
                f"{name!r}; choose from {sorted(known)}"
            )
        if not isinstance(val, _SCALAR_TYPES):
            raise TypeError(
                f"{field_name}[{name!r}] must be a JSON scalar "
                f"(bool/int/float/str/None), got {val!r}"
            )
        frozen.append((name, val))
    if not frozen:
        return None
    frozen.sort()
    names = [name for name, _ in frozen]
    if len(set(names)) != len(names):
        raise ValueError(f"{field_name}: duplicate field names {names}")
    return tuple(frozen)


def _overrides_dict(overrides: Overrides) -> Optional[Dict[str, object]]:
    """Back to a plain dict (``None`` stays ``None``)."""
    if overrides is None:
        return None
    return dict(overrides)


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified experiment run.

    Attributes:
        workload: registered workload name (see
            :data:`repro.workloads.WORKLOADS`).
        scheduler: scheduler name (see :data:`repro.sim.api.SCHEDULERS`).
        prefetcher: instruction-prefetcher name (``none`` disables).
        cores: simulated core count.
        transactions: batch size.  Mode-dependent meaning: mix/uniform
            batch size, instances per type (``identical``), concurrent
            traces (``overlap``), or samples per type (``fptable``).
        seed: workload construction seed (database + code layout RNG).
        mix_seed: seed for drawing the transaction batch; defaults to
            ``seed`` when ``None``.
        team_size: STREX team-size override (``strex``/``hybrid`` only).
        scale: system preset name (see :data:`repro.config.SCALES`).
        replacement: optional L1 replacement-policy override (Fig. 9).
        mode: experiment mode (see :data:`MODES`).
        txn_type: transaction type for the typed modes
            (``uniform``/``identical``/``overlap``).
        replicas: replicas per instance (``identical`` mode only).
        strex_overrides: :class:`~repro.config.StrexConfig` field
            overrides (ablations), applied by :meth:`build_config` and
            therefore folded into the content-addressed cache key.
            Only valid with the ``strex``/``hybrid`` schedulers.
        cache_overrides: :class:`~repro.config.CacheConfig` field
            overrides applied to *both* L1s (mirrors
            ``with_l1_replacement``).
        hybrid_overrides: :class:`~repro.config.HybridConfig` field
            overrides.  Only valid with the ``hybrid`` scheduler.

    Override mappings are canonicalized to sorted tuples of pairs so
    specs stay hashable; empty mappings normalize to ``None`` (no
    overrides), so ``strex_overrides={}`` equals no overrides — both
    as dataclass equality and as cache key.
    """

    workload: str
    scheduler: str = "base"
    prefetcher: str = "none"
    cores: int = 4
    transactions: int = 40
    seed: int = 1013
    mix_seed: Optional[int] = None
    team_size: Optional[int] = None
    scale: str = "default"
    replacement: Optional[str] = None
    mode: str = "mix"
    txn_type: Optional[str] = None
    replicas: int = 1
    strex_overrides: Overrides = None
    cache_overrides: Overrides = None
    hybrid_overrides: Overrides = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}"
            )
        if self.prefetcher not in PREFETCHERS:
            raise ValueError(
                f"unknown prefetcher {self.prefetcher!r}; "
                f"choose from {sorted(PREFETCHERS)}"
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; "
                f"choose from {sorted(SCALES)}"
            )
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.transactions <= 0:
            raise ValueError("transactions must be positive")
        if self.team_size is not None and \
                self.scheduler not in _TEAM_SCHEDULERS:
            raise ValueError(
                f"team_size only applies to the 'strex' and 'hybrid' "
                f"schedulers, not {self.scheduler!r}"
            )
        for field_name in _OVERRIDE_TARGETS:
            object.__setattr__(
                self, field_name,
                _freeze_overrides(field_name, getattr(self, field_name)))
        self._validate_overrides()
        self._validate_mode()

    def _validate_overrides(self) -> None:
        """Reject overrides the chosen scheduler would never read.

        A ``strex_overrides`` on a ``base`` run would change the cache
        key (the expanded config is hashed) without changing the
        simulation — a dead cache cell — so it is an error, mirroring
        the ``team_size`` rule.
        """
        if self.strex_overrides is not None and \
                self.scheduler not in _TEAM_SCHEDULERS:
            raise ValueError(
                f"strex_overrides only apply to the 'strex' and "
                f"'hybrid' schedulers, not {self.scheduler!r} (they "
                f"would create dead cache cells)"
            )
        if self.hybrid_overrides is not None and \
                self.scheduler != "hybrid":
            raise ValueError(
                f"hybrid_overrides only apply to the 'hybrid' "
                f"scheduler, not {self.scheduler!r}"
            )
        if self.strex_overrides is not None and \
                self.team_size is not None and \
                any(name == "team_size" for name, _ in
                    self.strex_overrides):
            raise ValueError(
                "team_size is set both directly and via "
                "strex_overrides; pick one"
            )
        if self.cache_overrides is not None and \
                self.replacement is not None and \
                any(name == "replacement" for name, _ in
                    self.cache_overrides):
            raise ValueError(
                "replacement is set both directly and via "
                "cache_overrides; pick one"
            )

    def _validate_mode(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; choose from {MODES}"
            )
        if self.mode in _TYPED_MODES:
            if self.txn_type is None:
                raise ValueError(
                    f"mode {self.mode!r} requires txn_type"
                )
        elif self.txn_type is not None:
            raise ValueError(
                f"txn_type only applies to modes {_TYPED_MODES}, "
                f"not {self.mode!r}"
            )
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.replicas != 1 and self.mode != "identical":
            raise ValueError(
                "replicas only applies to the 'identical' mode"
            )
        if self.mode in ("overlap", "fptable"):
            # These modes never run a scheduler or prefetcher; any
            # non-default value would be a dead cache-key axis.
            if self.scheduler != "base" or self.prefetcher != "none":
                raise ValueError(
                    f"mode {self.mode!r} ignores the scheduler and "
                    f"prefetcher; leave them at 'base'/'none'"
                )
        if self.mode == "overlap" and self.transactions < 2:
            raise ValueError(
                "overlap mode needs at least two concurrent traces"
            )

    def build_config(self) -> SystemConfig:
        """The :class:`SystemConfig` this spec materializes.

        Overrides are applied here, which automatically folds them into
        the content-addressed cache key (the *expanded* config is
        hashed, not the spelling), so ``strex_overrides={"window": 30}``
        — the default value — shares its cache entry with no overrides.
        """
        config = SCALES[self.scale](num_cores=self.cores)
        if self.replacement is not None:
            config = config.with_l1_replacement(self.replacement)
        if self.cache_overrides is not None:
            fields = _overrides_dict(self.cache_overrides)
            config = dataclasses.replace(
                config,
                l1i=dataclasses.replace(config.l1i, **fields),
                l1d=dataclasses.replace(config.l1d, **fields),
            )
        if self.strex_overrides is not None:
            config = config.with_strex(
                **_overrides_dict(self.strex_overrides))
        if self.hybrid_overrides is not None:
            config = dataclasses.replace(
                config,
                hybrid=dataclasses.replace(
                    config.hybrid,
                    **_overrides_dict(self.hybrid_overrides)),
            )
        return config

    def effective_mix_seed(self) -> int:
        """The seed actually passed to the trace generator."""
        return self.seed if self.mix_seed is None else self.mix_seed

    def to_dict(self) -> dict:
        """Plain-dict form (manifest rows, worker payloads).

        Overrides serialize as plain dicts (or ``None``) so manifest
        rows stay ordinary JSON objects.
        """
        data = dataclasses.asdict(self)
        for field_name in _OVERRIDE_TARGETS:
            data[field_name] = _overrides_dict(getattr(self, field_name))
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Missing keys fall back to defaults, so manifest rows written
        before a field existed still parse.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {sorted(unknown)}")
        return cls(**data)

    def describe(self) -> str:
        """Compact one-line label for logs and progress output."""
        parts = [self.workload, self.scheduler]
        if self.prefetcher != "none":
            parts.append(f"+{self.prefetcher}")
        parts.append(f"{self.cores}c")
        if self.team_size is not None:
            parts.append(f"{self.team_size}T")
        if self.replacement is not None:
            parts.append(self.replacement)
        if self.mode != "mix":
            label = self.mode
            if self.txn_type is not None:
                label += f":{self.txn_type}"
            parts.append(label)
        for prefix, overrides in (("strex", self.strex_overrides),
                                  ("cache", self.cache_overrides),
                                  ("hybrid", self.hybrid_overrides)):
            if overrides is not None:
                knobs = ",".join(f"{k}={v}" for k, v in overrides)
                parts.append(f"{prefix}{{{knobs}}}")
        parts.append(f"seed={self.seed}")
        return "/".join(parts)


def _tuple(values: Sequence) -> Tuple:
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {values!r}")
    return tuple(values)


def _freeze_override_grid(field_name: str, value: object
                          ) -> Tuple[Tuple[str, Tuple], ...]:
    """Canonicalize a ``{knob: [values...]}`` grid for a sweep axis."""
    if value is None:
        return ()
    if not isinstance(value, Mapping):
        if isinstance(value, tuple) and all(
                isinstance(item, tuple) and len(item) == 2
                for item in value):
            value = dict(value)
        else:
            raise TypeError(
                f"{field_name} must map config-field names to value "
                f"sequences, got {value!r}"
            )
    grid = []
    for name, values in sorted(value.items()):
        values = _tuple(values)
        if not values:
            raise ValueError(
                f"{field_name}[{name!r}] sweep axis is empty"
            )
        grid.append((name, values))
    return tuple(grid)


def _grid_cells(grid: Tuple[Tuple[str, Tuple], ...]
                ) -> List[Optional[Dict[str, object]]]:
    """All override dicts of a grid (``[None]`` when the grid is empty)."""
    if not grid:
        return [None]
    names = [name for name, _ in grid]
    return [dict(zip(names, combo))
            for combo in product(*(values for _, values in grid))]


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sweep: shard ``index`` of ``count``.

    Sharding partitions a sweep by *cache key*, not by position: shard
    ``i`` of ``N`` selects exactly the cells whose content-addressed
    key (see :func:`repro.exp.cache.spec_key`) satisfies
    ``int(key, 16) % N == i``.  Because the key is a pure function of
    a cell's content, every executor derives the same partition
    independently — two machines handed the same sweep and their
    ``i/N`` strings agree on who owns which cells with no
    coordination, and the cache directory is the only merge point
    (see :mod:`repro.exp.shard`).  Hashes spread cells uniformly, so
    shards are load-balanced in expectation regardless of how the
    grid's axes correlate with cell cost.

    The canonical spelling is ``"i/N"`` (e.g. ``--shard 1/3``,
    ``REPRO_BENCH_SHARD=1/3``); :meth:`parse` reads it and ``str()``
    writes it.  ``1/1`` is the identity shard: it selects everything.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {self.count}"
            )
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), "
                f"got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the canonical ``"i/N"`` spelling."""
        index, sep, count = str(text).partition("/")
        try:
            if not sep:
                raise ValueError(text)
            return cls(int(index), int(count))
        except ValueError:
            raise ValueError(
                f"shard must be spelled 'i/N' with 0 <= i < N, "
                f"got {text!r}"
            ) from None

    @staticmethod
    def assign(key: str, count: int) -> int:
        """The shard index that owns a cache key under an N-way split."""
        return int(key, 16) % count

    def selects(self, key: str) -> bool:
        """Whether this shard owns the cell with cache key ``key``."""
        return int(key, 16) % self.count == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class SweepSpec:
    """A grid of runs: the cross product of every axis below.

    ``transactions``, ``mix_seed``, ``mode``, and ``replicas`` are
    shared by every cell; all other axes are sequences.  The override
    grids (``strex_overrides`` etc.) are ``{knob: [values...]}``
    mappings whose knobs expand as extra axes — the declarative form of
    an ablation study.  Axis values are validated eagerly on expansion
    (each cell is a validated :class:`RunSpec`).
    """

    workloads: Tuple[str, ...]
    schedulers: Tuple[str, ...] = ("base",)
    prefetchers: Tuple[str, ...] = ("none",)
    cores: Tuple[int, ...] = (4,)
    team_sizes: Tuple[Optional[int], ...] = (None,)
    seeds: Tuple[int, ...] = (1013,)
    scales: Tuple[str, ...] = ("default",)
    txn_types: Tuple[Optional[str], ...] = (None,)
    transactions: int = 40
    mix_seed: Optional[int] = None
    mode: str = "mix"
    replicas: int = 1
    strex_overrides: Tuple[Tuple[str, Tuple], ...] = ()
    cache_overrides: Tuple[Tuple[str, Tuple], ...] = ()
    hybrid_overrides: Tuple[Tuple[str, Tuple], ...] = ()

    def __post_init__(self) -> None:
        for axis in ("workloads", "schedulers", "prefetchers", "cores",
                     "team_sizes", "seeds", "scales", "txn_types"):
            object.__setattr__(self, axis, _tuple(getattr(self, axis)))
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} is empty")
        for field_name in _OVERRIDE_TARGETS:
            object.__setattr__(
                self, field_name,
                _freeze_override_grid(field_name,
                                      getattr(self, field_name)))
        # Scheduler-specific override grids need at least one scheduler
        # that reads them — otherwise every cell they generate would be
        # a dead cache cell (key changes, simulation doesn't).
        if self.strex_overrides and not any(
                s in _TEAM_SCHEDULERS for s in self.schedulers):
            raise ValueError(
                f"strex_overrides require a 'strex' or 'hybrid' "
                f"scheduler in the sweep, got {self.schedulers}"
            )
        if self.hybrid_overrides and "hybrid" not in self.schedulers:
            raise ValueError(
                f"hybrid_overrides require the 'hybrid' scheduler in "
                f"the sweep, got {self.schedulers}"
            )

    def __len__(self) -> int:
        return len(self.expand())

    def expand(self) -> List[RunSpec]:
        """Flatten the grid into a deterministically-ordered run list.

        Order: workload-major, then scale, cores, scheduler,
        prefetcher, team size, txn type, override combinations, and
        seed innermost — i.e. the natural nested-loop order of the
        field declarations.  The order is a stable contract: the
        runner returns results positionally aligned with it.

        Scheduler-specific axes only apply to schedulers that read
        them: for the rest, ``team_sizes``, ``strex_overrides``, and
        ``hybrid_overrides`` collapse to ``None`` and the resulting
        duplicate cells are dropped, so a grid like
        ``schedulers=(base, strex), team_sizes=(2, 8)`` yields one
        ``base`` run and two ``strex`` runs per cell.
        """
        strex_cells = _grid_cells(self.strex_overrides)
        cache_cells = _grid_cells(self.cache_overrides)
        hybrid_cells = _grid_cells(self.hybrid_overrides)
        specs: List[RunSpec] = []
        seen = set()
        for (workload, scale, cores, scheduler, prefetcher, team_size,
             txn_type, strex_ov, cache_ov, hybrid_ov, seed) in product(
                self.workloads, self.scales, self.cores,
                self.schedulers, self.prefetchers, self.team_sizes,
                self.txn_types, strex_cells, cache_cells, hybrid_cells,
                self.seeds):
            if scheduler not in _TEAM_SCHEDULERS:
                team_size = None
                strex_ov = None
            if scheduler != "hybrid":
                hybrid_ov = None
            spec = RunSpec(
                workload=workload,
                scheduler=scheduler,
                prefetcher=prefetcher,
                cores=cores,
                transactions=self.transactions,
                seed=seed,
                mix_seed=self.mix_seed,
                team_size=team_size,
                scale=scale,
                mode=self.mode,
                txn_type=txn_type,
                replicas=self.replicas,
                strex_overrides=strex_ov,
                cache_overrides=cache_ov,
                hybrid_overrides=hybrid_ov,
            )
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
        return specs
