"""Declarative experiment specifications.

A :class:`RunSpec` names one simulation completely: the workload and
its generation seeds, the system scale and core count, the scheduler /
prefetcher pair, and the STREX team size.  It is a frozen dataclass so
it can be hashed, pickled across process boundaries, and serialized
into the run manifest.

A :class:`SweepSpec` is a grid over those axes; :meth:`SweepSpec.expand`
flattens it into a deterministically-ordered list of ``RunSpec``s
(workload-major, seeds innermost), which is the order the
:class:`~repro.exp.runner.Runner` reports results in regardless of
which worker finishes first.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence, Tuple

from repro.config import SCALES, SystemConfig
from repro.sim.api import PREFETCHERS, SCHEDULERS
from repro.workloads import WORKLOADS


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation run.

    Attributes:
        workload: registered workload name (see
            :data:`repro.workloads.WORKLOADS`).
        scheduler: scheduler name (see :data:`repro.sim.api.SCHEDULERS`).
        prefetcher: instruction-prefetcher name (``none`` disables).
        cores: simulated core count.
        transactions: number of transactions in the generated batch.
        seed: workload construction seed (database + code layout RNG).
        mix_seed: seed for drawing the transaction mix; defaults to
            ``seed`` when ``None``.
        team_size: STREX team-size override (``strex``/``hybrid`` only).
        scale: system preset name (see :data:`repro.config.SCALES`).
        replacement: optional L1 replacement-policy override (Fig. 9).
    """

    workload: str
    scheduler: str = "base"
    prefetcher: str = "none"
    cores: int = 4
    transactions: int = 40
    seed: int = 1013
    mix_seed: Optional[int] = None
    team_size: Optional[int] = None
    scale: str = "default"
    replacement: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}"
            )
        if self.prefetcher not in PREFETCHERS:
            raise ValueError(
                f"unknown prefetcher {self.prefetcher!r}; "
                f"choose from {sorted(PREFETCHERS)}"
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; "
                f"choose from {sorted(SCALES)}"
            )
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.transactions <= 0:
            raise ValueError("transactions must be positive")
        if self.team_size is not None and \
                self.scheduler not in ("strex", "hybrid"):
            raise ValueError(
                f"team_size only applies to the 'strex' and 'hybrid' "
                f"schedulers, not {self.scheduler!r}"
            )

    def build_config(self) -> SystemConfig:
        """The :class:`SystemConfig` this spec simulates."""
        config = SCALES[self.scale](num_cores=self.cores)
        if self.replacement is not None:
            config = config.with_l1_replacement(self.replacement)
        return config

    def effective_mix_seed(self) -> int:
        """The seed actually passed to ``generate_mix``."""
        return self.seed if self.mix_seed is None else self.mix_seed

    def to_dict(self) -> dict:
        """Plain-dict form (manifest rows, worker payloads)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {sorted(unknown)}")
        return cls(**data)

    def describe(self) -> str:
        """Compact one-line label for logs and progress output."""
        parts = [self.workload, self.scheduler]
        if self.prefetcher != "none":
            parts.append(f"+{self.prefetcher}")
        parts.append(f"{self.cores}c")
        if self.team_size is not None:
            parts.append(f"{self.team_size}T")
        if self.replacement is not None:
            parts.append(self.replacement)
        parts.append(f"seed={self.seed}")
        return "/".join(parts)


def _tuple(values: Sequence) -> Tuple:
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {values!r}")
    return tuple(values)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of runs: the cross product of every axis below.

    ``transactions`` and ``mix_seed`` are shared by every cell; all
    other axes are sequences.  Axis values are validated eagerly on
    expansion (each cell is a validated :class:`RunSpec`).
    """

    workloads: Tuple[str, ...]
    schedulers: Tuple[str, ...] = ("base",)
    prefetchers: Tuple[str, ...] = ("none",)
    cores: Tuple[int, ...] = (4,)
    team_sizes: Tuple[Optional[int], ...] = (None,)
    seeds: Tuple[int, ...] = (1013,)
    scales: Tuple[str, ...] = ("default",)
    transactions: int = 40
    mix_seed: Optional[int] = None

    def __post_init__(self) -> None:
        for axis in ("workloads", "schedulers", "prefetchers", "cores",
                     "team_sizes", "seeds", "scales"):
            object.__setattr__(self, axis, _tuple(getattr(self, axis)))
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} is empty")

    def __len__(self) -> int:
        return len(self.expand())

    def expand(self) -> List[RunSpec]:
        """Flatten the grid into a deterministically-ordered run list.

        Order: workload-major, then scale, cores, scheduler,
        prefetcher, team size, and seed innermost — i.e. the natural
        nested-loop order of the field declarations.  The order is a
        stable contract: the runner returns results positionally
        aligned with it.

        The ``team_sizes`` axis only applies to schedulers that take a
        team size (``strex``/``hybrid``); for the rest it collapses to
        ``None`` and the resulting duplicate cells are dropped, so a
        grid like ``schedulers=(base, strex), team_sizes=(2, 8)``
        yields one ``base`` run and two ``strex`` runs per cell.
        """
        specs: List[RunSpec] = []
        seen = set()
        for (workload, scale, cores, scheduler, prefetcher, team_size,
             seed) in product(self.workloads, self.scales, self.cores,
                              self.schedulers, self.prefetchers,
                              self.team_sizes, self.seeds):
            if scheduler not in ("strex", "hybrid"):
                team_size = None
            spec = RunSpec(
                workload=workload,
                scheduler=scheduler,
                prefetcher=prefetcher,
                cores=cores,
                transactions=self.transactions,
                seed=seed,
                mix_seed=self.mix_seed,
                team_size=team_size,
                scale=scale,
            )
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
        return specs
