"""Append-only run manifest (JSONL).

One line per completed run, recording the spec, its cache key, whether
it was served from cache, wall time, which worker process executed it,
and how many attempts it took.  The manifest is the audit trail of a
sweep: ``benchmarks/out/.cache/manifest.jsonl`` answers "what did we
run, where did the time go, and what hit the cache".

Writes are a single ``write()`` of one ``\\n``-terminated line on a
file opened in append mode, which POSIX keeps intact for lines well
under ``PIPE_BUF`` — concurrent benchmark processes can share one
manifest without interleaving partial lines.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional


@dataclass(frozen=True)
class ManifestEntry:
    """One manifest row."""

    key: str
    spec: dict
    hit: bool
    wall_s: float
    worker: Optional[int] = None
    attempts: int = 1

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ManifestEntry":
        return cls(**json.loads(line))


class Manifest:
    """Appends :class:`ManifestEntry` rows to a JSONL file."""

    def __init__(self, path: Path | str):
        self.path = Path(path)

    def record(self, entry: ManifestEntry) -> None:
        """Append one row (creates parent directories on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(entry.to_json() + "\n")

    def read(self) -> List[ManifestEntry]:
        """All rows recorded so far (empty if the file doesn't exist).

        A trailing partial line (killed writer) is skipped rather than
        raised on.
        """
        if not self.path.exists():
            return []
        entries = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(ManifestEntry.from_json(line))
            except (json.JSONDecodeError, TypeError):
                continue
        return entries
