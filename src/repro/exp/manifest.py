"""Append-only run manifest (JSONL).

One line per completed run, recording the spec, its cache key, whether
it was served from cache, wall time, which worker process executed it,
and how many attempts it took.  The manifest is the audit trail of a
sweep: ``benchmarks/out/.cache/manifest.jsonl`` answers "what did we
run, where did the time go, and what hit the cache".

Writes are a single ``write()`` of one ``\\n``-terminated line on a
file opened in append mode, which POSIX keeps intact for lines well
under ``PIPE_BUF`` — concurrent benchmark processes can share one
manifest without interleaving partial lines.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ManifestEntry:
    """One manifest row.

    ``ts`` (epoch seconds) and ``sweep`` (an opaque per-:meth:`run`
    identifier) were added for retention: ``--since`` filters on the
    former, ``--keep-last`` groups rows by the latter.  Rows written by
    older versions carry neither and are treated as the oldest.

    ``shard`` records which hash-range slice of a sweep executed the
    row (the ``"i/N"`` spelling of a
    :class:`~repro.exp.spec.ShardSpec`); unsharded runs leave it
    ``None``.  The shard orchestrator relays private shard-manifest
    rows into the shared manifest as they appear, so the column is how
    a merged manifest stays attributable.
    """

    key: str
    spec: dict
    hit: bool
    wall_s: float
    worker: Optional[int] = None
    attempts: int = 1
    ts: Optional[float] = None
    sweep: Optional[str] = None
    shard: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ManifestEntry":
        return cls(**json.loads(line))


class Manifest:
    """Appends :class:`ManifestEntry` rows to a JSONL file."""

    def __init__(self, path: Path | str):
        self.path = Path(path)

    def record(self, entry: ManifestEntry) -> None:
        """Append one row (creates parent directories on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(entry.to_json() + "\n")

    def record_raw(self, line: str) -> None:
        """Append one already-serialized row verbatim.

        The shard orchestrator relays rows from private shard
        manifests into the shared one; copying the line (rather than
        parsing and re-serializing) keeps relayed rows byte-identical
        to what the shard wrote.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line.rstrip("\n") + "\n")

    def tail(self, offset: int = 0) -> Tuple[List[str], int]:
        """Complete, well-formed lines appended since byte ``offset``.

        Returns ``(lines, new_offset)``; a trailing partial line (a
        writer mid-``write``, or one killed mid-line) is left for the
        next call rather than returned truncated.  This is the
        streaming half of :meth:`record_raw`: the orchestrator polls
        each shard's manifest with its last offset to relay progress
        while shards are still running.

        A *torn* line — a SIGKILLed shard's partial row that a
        relaunched shard then appended a fresh row after, gluing the
        fragment to the next newline-terminated write — does not parse
        as JSON.  Such lines are skipped with a warning instead of
        being relayed (and later raised on) downstream; the valid rows
        around them still flow.
        """
        if not self.path.exists():
            return [], offset
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        lines = []
        for line in blob[:end].decode(errors="replace").split("\n"):
            line = line.strip()
            if not line:
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"manifest {self.path}: skipping torn row "
                    f"{line[:60]!r}... (a writer was killed mid-line)",
                    RuntimeWarning, stacklevel=2)
                continue
            lines.append(line)
        return lines, offset + end + 1

    def read(self) -> List[ManifestEntry]:
        """All rows recorded so far (empty if the file doesn't exist).

        A trailing partial line (killed writer) is skipped rather than
        raised on.
        """
        if not self.path.exists():
            return []
        entries = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(ManifestEntry.from_json(line))
            except (json.JSONDecodeError, TypeError):
                continue
        return entries

    def compact(self, keep_last: int) -> Tuple[int, int]:
        """Keep only the rows of the last ``keep_last`` sweeps.

        Rows are grouped by their ``sweep`` id; groups are ordered by
        each group's latest timestamp (rows without ``ts``/``sweep`` —
        written before retention existed — form one group that sorts
        oldest).  The file is rewritten atomically via a temp file in
        the same directory.

        Returns:
            ``(kept, dropped)`` row counts.
        """
        if keep_last <= 0:
            raise ValueError("keep_last must be positive")
        entries = self.read()
        if not entries:
            return (0, 0)
        latest: Dict[Optional[str], float] = {}
        for entry in entries:
            ts = entry.ts if entry.ts is not None else float("-inf")
            group = entry.sweep
            if group not in latest or ts > latest[group]:
                latest[group] = ts
        keep = set(sorted(latest, key=lambda g: latest[g])[-keep_last:])
        kept = [e for e in entries if e.sweep in keep]
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            for entry in kept:
                handle.write(entry.to_json() + "\n")
        tmp.replace(self.path)
        return (len(kept), len(entries) - len(kept))


def _entry_label(entry: ManifestEntry) -> str:
    """A human-readable label for an entry's spec.

    Manifest rows are self-describing dicts; rows written by older
    versions (missing fields) still label fine, and rows that no
    longer parse as specs fall back to their raw workload/scheduler.
    """
    from repro.exp.spec import RunSpec

    try:
        return RunSpec.from_dict(entry.spec).describe()
    except (TypeError, ValueError):
        workload = entry.spec.get("workload", "?")
        scheduler = entry.spec.get("scheduler", "?")
        return f"{workload}/{scheduler}"


@dataclass
class ManifestSummary:
    """Aggregates over a set of manifest rows (see ``repro manifest``).

    Attributes:
        runs: total rows.
        hits: rows served from cache.
        misses: rows that executed.
        wall_s: total executed wall seconds (hits cost ~0).
        saved_s: wall seconds the cache saved — each hit credited with
            the mean executed wall time of its key (0 when the key
            never executed inside this manifest).
        retried: rows that needed more than one attempt.
        groups: ``(workload, scheduler) -> {runs, hits, misses,
            wall_s}`` aggregates.
        slowest: the top-N executed rows as ``(wall_s, label, key)``,
            slowest first.
    """

    runs: int = 0
    hits: int = 0
    misses: int = 0
    wall_s: float = 0.0
    saved_s: float = 0.0
    retried: int = 0
    groups: Dict[Tuple[str, str], Dict[str, float]] = \
        field(default_factory=dict)
    slowest: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Fraction of rows served from cache (0.0 when empty)."""
        if self.runs == 0:
            return 0.0
        return self.hits / self.runs

    def to_dict(self) -> dict:
        """JSON form (``repro manifest --json``), for CI assertions."""
        return {
            "runs": self.runs,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "wall_s": round(self.wall_s, 6),
            "saved_s": round(self.saved_s, 6),
            "retried": self.retried,
            "groups": [
                {"workload": workload, "scheduler": scheduler,
                 **{k: (round(v, 6) if isinstance(v, float) else v)
                    for k, v in stats.items()}}
                for (workload, scheduler), stats in
                sorted(self.groups.items())
            ],
            "slowest": [
                {"wall_s": round(wall, 6), "spec": label, "key": key}
                for wall, label, key in self.slowest
            ],
        }


def summarize_entries(entries: Sequence[ManifestEntry],
                      top: int = 10) -> ManifestSummary:
    """Aggregate manifest rows into a :class:`ManifestSummary`.

    Answers the three questions the manifest exists for: what's the
    cache hit rate, where does the wall time go (by workload ×
    scheduler), and which cells are the expensive ones.
    """
    summary = ManifestSummary()
    executed: List[ManifestEntry] = []
    wall_by_key: Dict[str, List[float]] = {}
    for entry in entries:
        summary.runs += 1
        workload = entry.spec.get("workload", "?")
        scheduler = entry.spec.get("scheduler", "?")
        group = summary.groups.setdefault(
            (workload, scheduler),
            {"runs": 0, "hits": 0, "misses": 0, "wall_s": 0.0})
        group["runs"] += 1
        if entry.hit:
            summary.hits += 1
            group["hits"] += 1
        else:
            summary.misses += 1
            group["misses"] += 1
            summary.wall_s += entry.wall_s
            group["wall_s"] += entry.wall_s
            executed.append(entry)
            wall_by_key.setdefault(entry.key, []).append(entry.wall_s)
        if entry.attempts > 1:
            summary.retried += 1
    for entry in entries:
        if entry.hit and entry.key in wall_by_key:
            walls = wall_by_key[entry.key]
            summary.saved_s += sum(walls) / len(walls)
    executed.sort(key=lambda e: e.wall_s, reverse=True)
    summary.slowest = [
        (entry.wall_s, _entry_label(entry), entry.key)
        for entry in executed[:max(0, top)]
    ]
    return summary
