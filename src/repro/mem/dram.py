"""DDR3-lite DRAM timing model.

The paper's Table 2 lists a full DDR3-1600 part with two channels, eight
banks and an open-page policy.  At block-run granularity the dominant
effects are (a) a fixed access latency (~42 ns) and (b) row-buffer
locality: back-to-back accesses to the same DRAM row in the same bank are
faster.  This model keeps per-bank open-row state and charges either a
row-hit or a row-miss (precharge + activate) latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import BLOCK_SIZE, MemoryConfig


class DramModel:
    """Open-page DRAM with per-bank row buffers.

    Accesses are addressed by *block number*; the model maps blocks to a
    (channel, bank, row) triple by simple bit slicing.
    """

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.blocks_per_row = max(1, config.row_bytes // BLOCK_SIZE)
        total_banks = config.num_channels * config.num_banks
        self._open_rows: List[Optional[int]] = [None] * total_banks
        self.row_hits = 0
        self.row_misses = 0

    def _bank_and_row(self, block: int) -> tuple[int, int]:
        row = block // self.blocks_per_row
        total_banks = self.config.num_channels * self.config.num_banks
        bank = row % total_banks
        return bank, row

    def access(self, block: int) -> int:
        """Charge one access; returns latency in core cycles."""
        bank, row = self._bank_and_row(block)
        if self.config.open_page and self._open_rows[bank] == row:
            self.row_hits += 1
            return self.config.row_hit_latency
        self.row_misses += 1
        self._open_rows[bank] = row if self.config.open_page else None
        return self.config.base_latency

    @property
    def accesses(self) -> int:
        """Total accesses served."""
        return self.row_hits + self.row_misses

    def snapshot(self) -> Dict[str, int]:
        """Counters as a plain dict."""
        return {
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }
