"""DRAM timing models."""

from repro.mem.dram import DramModel

__all__ = ["DramModel"]
