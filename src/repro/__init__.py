"""repro: a reproduction of STREX (Atta et al., ISCA 2013).

STREX boosts instruction-cache reuse in OLTP workloads by grouping
similar transactions into teams and time-multiplexing their execution on
a single core in L1-I-sized phases.  This package provides:

* a trace-driven CMP timing simulator (caches, NUCA L2, coherence, NoC,
  DRAM) -- :mod:`repro.sim`, :mod:`repro.cache`, :mod:`repro.noc`,
  :mod:`repro.mem`;
* a mini OLTP storage manager that generates instruction/data traces for
  TPC-C, TPC-E and a MapReduce control workload -- :mod:`repro.db`,
  :mod:`repro.workloads`;
* the STREX, SLICC, and hybrid schedulers plus baselines and prefetchers
  -- :mod:`repro.sched`, :mod:`repro.core`, :mod:`repro.prefetch`;
* analysis utilities regenerating every table and figure of the paper --
  :mod:`repro.analysis` and the ``benchmarks/`` harness.

Quickstart::

    from repro import default_scale, TpccWorkload, simulate

    config = default_scale(num_cores=4)
    workload = TpccWorkload(config.l1i_blocks, warehouses=1)
    traces = workload.generate_mix(30)
    base = simulate(config, traces, "base", workload.name)
    strex = simulate(config, traces, "strex", workload.name)
    print(base.i_mpki, strex.i_mpki)
"""

from repro.config import (
    CacheConfig,
    SystemConfig,
    default_scale,
    paper_scale,
    tiny_scale,
)
from repro.sim.api import SCHEDULERS, simulate
from repro.sim.results import RunResult
from repro.workloads.mapreduce import MapReduceWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "SystemConfig",
    "default_scale",
    "paper_scale",
    "tiny_scale",
    "simulate",
    "SCHEDULERS",
    "RunResult",
    "TpccWorkload",
    "TpceWorkload",
    "MapReduceWorkload",
    "__version__",
]
