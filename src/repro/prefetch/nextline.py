"""Next-line instruction prefetcher (Smith, 1978).

On every fetch of block B the prefetcher arms B+1 (and a small run ahead,
``depth`` blocks).  A later demand miss is covered if its block was armed
recently.  Sequential code regions therefore never stall; taken branches
into cold code do.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.prefetch.base import InstructionPrefetcher


class NextLinePrefetcher(InstructionPrefetcher):
    """Per-core next-line prefetcher with a small stream buffer.

    Args:
        num_cores: number of cores (one stream buffer each).
        depth: how many sequential blocks are armed per fetch.
        buffer_blocks: stream-buffer capacity (armed-block window).
    """

    name = "nextline"

    def __init__(self, num_cores: int, depth: int = 1,
                 buffer_blocks: int = 8):
        super().__init__(num_cores)
        self.depth = depth
        self.buffer_blocks = buffer_blocks
        self._armed: List[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_cores)
        ]
        self.prefetches_issued = 0

    def covers(self, core: int, block: int) -> bool:
        return block in self._armed[core]

    def on_fetch(self, core: int, block: int, hit: bool) -> None:
        armed = self._armed[core]
        # Consume the entry if the demand fetch hit an armed block.
        armed.pop(block, None)
        for offset in range(1, self.depth + 1):
            candidate = block + offset
            if candidate not in armed:
                armed[candidate] = None
                self.prefetches_issued += 1
                if len(armed) > self.buffer_blocks:
                    armed.popitem(last=False)
