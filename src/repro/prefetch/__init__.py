"""Instruction prefetchers: next-line, idealized PIF, TIFS-lite."""

from repro.prefetch.base import InstructionPrefetcher, NoPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import PifIdealPrefetcher
from repro.prefetch.tifs import TifsPrefetcher

__all__ = [
    "InstructionPrefetcher",
    "NoPrefetcher",
    "NextLinePrefetcher",
    "PifIdealPrefetcher",
    "TifsPrefetcher",
]
