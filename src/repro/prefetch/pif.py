"""Idealized PIF model (Ferdman et al., MICRO'11), as evaluated in the
paper's Section 5.3.

The paper models PIF as an upper bound: a 100% hit-rate L1-I where blocks
that would have missed still generate demand traffic to the L2.  This
class reproduces exactly that: :meth:`covers` is always true, so the core
never stalls on instruction fetch, while the hierarchy still performs the
L2 access for the would-miss block (modelling bandwidth/contention).

The real PIF's ~40 KiB/core history storage is accounted in
:mod:`repro.core.hwcost` for the Table 4 comparison.
"""

from __future__ import annotations

from repro.prefetch.base import InstructionPrefetcher


class PifIdealPrefetcher(InstructionPrefetcher):
    """PIF-No-Overhead: perfect coverage, perfectly timely."""

    name = "pif"

    #: Storage the real PIF requires per core, in bytes (paper: ~40 KiB).
    STORAGE_BYTES_PER_CORE = 40 * 1024

    def covers(self, core: int, block: int) -> bool:
        return True
