"""Instruction prefetcher interface.

Prefetchers in this reproduction model *latency hiding*: the hierarchy
asks the prefetcher whether a demand L1-I miss was covered (i.e. the block
would already be in flight or in a stream buffer).  Covered misses still
generate L2 traffic -- this mirrors how the paper models PIF ("demand
traffic is generated for cache blocks that would have otherwise missed")
-- but they do not stall the core.

Concrete implementations live in :mod:`repro.prefetch.nextline`,
:mod:`repro.prefetch.pif` and :mod:`repro.prefetch.tifs`.
"""

from __future__ import annotations

from typing import Dict


class InstructionPrefetcher:
    """Base class: never covers anything (no prefetching)."""

    name = "none"

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self.covered_misses = 0
        self.uncovered_misses = 0

    def covers(self, core: int, block: int) -> bool:
        """Would this demand miss have been hidden by the prefetcher?

        Called only on L1-I demand misses, before :meth:`on_fetch`.
        """
        return False

    def on_fetch(self, core: int, block: int, hit: bool) -> None:
        """Observe a demand fetch (hit or miss) to update predictor state."""

    def record(self, covered: bool) -> None:
        """Book-keeping helper used by the hierarchy."""
        if covered:
            self.covered_misses += 1
        else:
            self.uncovered_misses += 1

    @property
    def coverage(self) -> float:
        """Fraction of misses the prefetcher hid."""
        total = self.covered_misses + self.uncovered_misses
        if not total:
            return 0.0
        return self.covered_misses / total

    def snapshot(self) -> Dict[str, float]:
        """Counters as a plain dict."""
        return {
            "covered_misses": self.covered_misses,
            "uncovered_misses": self.uncovered_misses,
            "coverage": self.coverage,
        }


class NoPrefetcher(InstructionPrefetcher):
    """Explicit null prefetcher (the baseline configuration)."""

    name = "none"
