"""TIFS-lite: temporal instruction fetch streaming (Ferdman et al.,
MICRO'08), simplified.

TIFS records the temporal stream of missed instruction blocks.  When a
miss hits the head of a previously recorded stream, the following blocks
of that stream are replayed (armed), covering subsequent misses as long
as the program follows the recorded path.

This simplified model keeps, per core, a map from a missed block to the
sequence of blocks that followed it the last time, and arms a replay
window when a miss matches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set

from repro.prefetch.base import InstructionPrefetcher


class TifsPrefetcher(InstructionPrefetcher):
    """Temporal-streaming prefetcher over the miss sequence.

    Args:
        num_cores: number of cores.
        stream_length: blocks replayed per stream head hit.
        history_heads: per-core capacity of the stream-head table.
    """

    name = "tifs"

    def __init__(self, num_cores: int, stream_length: int = 8,
                 history_heads: int = 2048):
        super().__init__(num_cores)
        self.stream_length = stream_length
        self.history_heads = history_heads
        self._history: List[Dict[int, List[int]]] = [
            {} for _ in range(num_cores)
        ]
        self._recent_misses: List[Deque[int]] = [
            deque(maxlen=stream_length + 1) for _ in range(num_cores)
        ]
        self._armed: List[Set[int]] = [set() for _ in range(num_cores)]

    def covers(self, core: int, block: int) -> bool:
        return block in self._armed[core]

    def on_fetch(self, core: int, block: int, hit: bool) -> None:
        if hit:
            return
        armed = self._armed[core]
        armed.discard(block)
        history = self._history[core]
        recent = self._recent_misses[core]
        # Extend the stream recorded at each recent head with this miss.
        for head in recent:
            stream = history.get(head)
            if stream is not None and len(stream) < self.stream_length:
                stream.append(block)
        # Record a new head for this miss (bounded table).
        if block not in history:
            if len(history) >= self.history_heads:
                history.pop(next(iter(history)))
            history[block] = []
        else:
            # Replay: arm the stream that followed this block previously.
            armed.update(history[block])
            history[block] = []
        recent.append(block)
