"""Hash-bucket lock manager.

Transactions acquire record/table locks before touching data.  The lock
table is a fixed array of buckets, each pinned to a data block; acquiring
a lock reads and writes its bucket block.  Hot rows (TPC-C's warehouse
and district records) hash to the same bucket for every transaction, so
the bucket blocks become write-shared across cores -- the lock-word
sharing the paper names as a source of baseline coherence misses.

Trace generation is serial per transaction, so the manager never blocks;
it tracks held locks for release-at-commit and conflict accounting only.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


SHARED = 0
EXCLUSIVE = 1


class LockManager:
    """Lock table with ``num_buckets`` block-pinned buckets."""

    def __init__(self, space, num_buckets: int = 64):
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.num_buckets = num_buckets
        first = space.allocate("locks", num_buckets)
        self._bucket_blocks = [first + i for i in range(num_buckets)]
        self._held: Dict[int, Dict[Tuple[str, int], int]] = {}
        self.acquisitions = 0
        self.conflicts = 0
        self._owners: Dict[Tuple[str, int], Set[int]] = {}

    def bucket_block(self, name: str, key: int) -> int:
        """Data block of the bucket guarding (name, key).

        Bucketing must not use the builtin ``hash`` on strings: string
        hashing is randomized per process (PYTHONHASHSEED), which would
        make the data-block stream — and every simulation result —
        vary across worker processes, violating the determinism the
        content-addressed result cache keys rely on.  FNV-1a over the
        name plus a Knuth multiplicative mix of the key is stable
        everywhere.
        """
        digest = 2166136261
        for byte in name.encode():
            digest = ((digest ^ byte) * 16777619) & 0xFFFFFFFF
        digest ^= (key * 2654435761) & 0xFFFFFFFF
        return self._bucket_blocks[digest % self.num_buckets]

    def acquire(self, txn_id: int, name: str, key: int,
                mode: int) -> Tuple[int, bool]:
        """Acquire a lock; returns (bucket block, conflicted).

        ``conflicted`` reports whether another live transaction holds the
        same lock in an incompatible mode (statistics only; the generator
        is serial so nothing waits).
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError("mode must be SHARED or EXCLUSIVE")
        self.acquisitions += 1
        resource = (name, key)
        owners = self._owners.setdefault(resource, set())
        conflicted = bool(owners - {txn_id}) and (
            mode == EXCLUSIVE
            or any(
                self._held.get(o, {}).get(resource) == EXCLUSIVE
                for o in owners
            )
        )
        if conflicted:
            self.conflicts += 1
        held = self._held.setdefault(txn_id, {})
        held[resource] = max(held.get(resource, SHARED), mode)
        owners.add(txn_id)
        return self.bucket_block(name, key), conflicted

    def release_all(self, txn_id: int) -> List[int]:
        """Release every lock held by a transaction; returns the bucket
        blocks written during release."""
        held = self._held.pop(txn_id, {})
        blocks = []
        for resource in held:
            blocks.append(self.bucket_block(*resource))
            owners = self._owners.get(resource)
            if owners is not None:
                owners.discard(txn_id)
                if not owners:
                    del self._owners[resource]
        return blocks

    def held_by(self, txn_id: int) -> int:
        """Number of locks currently held by a transaction."""
        return len(self._held.get(txn_id, {}))
