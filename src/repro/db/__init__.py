"""The mini OLTP storage manager: B+Trees, heap tables, locks, log,
buffer-pool-resident pages, and the synthetic code layout that turns
storage-manager control flow into instruction traces."""

from repro.db.btree import BTreeIndex
from repro.db.codemap import CodeLayout, CodeRegion, TraceRecorder
from repro.db.engine import BASIC_FUNCTION_UNITS, Database, StorageManager
from repro.db.heap import Table
from repro.db.locks import LockManager
from repro.db.log import LogManager
from repro.db.storage import DataSpace, Page

__all__ = [
    "BTreeIndex",
    "CodeLayout",
    "CodeRegion",
    "TraceRecorder",
    "BASIC_FUNCTION_UNITS",
    "Database",
    "StorageManager",
    "Table",
    "LockManager",
    "LogManager",
    "DataSpace",
    "Page",
]
