"""Synthetic code layout for the storage-manager substrate.

The paper's transactions execute real Shore-MT machine code; we substitute
a *code layout*: every storage-manager function (B+Tree traverse, tuple
update, lock acquire, ...) and every transaction action wrapper is
assigned a contiguous region of the instruction address space.  Executing
a function emits a walk over its region's blocks, with data-dependent
variation (skipped blocks for untaken branches, short backward loops).

Because all transactions share one layout, same-type transactions walk
nearly identical block sequences (the intra-type overlap of Fig. 2) and
different types overlap on the shared basic functions (the cross-type
overlap discussed with Fig. 1), while diverging in their wrappers.

Sizes are specified in *L1-I size units* so the footprint-to-cache ratio
is preserved across scale presets (DESIGN.md, Section 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional


#: Instructions executed per 64-byte block visit.  x86 averages ~4 bytes
#: per instruction (16 per block); short intra-block loops and revisits
#: push the effective count per *first touch* higher.
INSTRUCTIONS_PER_BLOCK = 20

#: Base of the instruction address space, in blocks.  Data blocks are
#: allocated far above this (see repro.db.storage), so the two never alias.
CODE_BASE_BLOCK = 1 << 20


@dataclass(frozen=True)
class CodeRegion:
    """A function's contiguous code region.

    Attributes:
        name: fully qualified function name.
        start_block: first instruction block of the region.
        num_blocks: region length in blocks.
    """

    name: str
    start_block: int
    num_blocks: int

    @property
    def end_block(self) -> int:
        """One past the last block."""
        return self.start_block + self.num_blocks

    def blocks(self) -> range:
        """All block numbers of this region."""
        return range(self.start_block, self.end_block)

    def walk_chunks(self) -> List[List[int]]:
        """The region's static control-flow walk, as chunks of blocks.

        Real code is not fetched as one long sequential run: basic
        blocks span a few cache lines before a branch or call jumps
        elsewhere.  Each region therefore has a fixed pseudo-random
        *chunk permutation* -- short runs of 1-2 sequential blocks whose
        order is shuffled once per region.  The permutation is a
        property of the code (seeded by the region address), so every
        transaction walks the same sequence: inter-transaction overlap
        is untouched while next-line prefetchers only cover the blocks
        inside a chunk.
        """
        return _region_chunks(self.start_block, self.num_blocks)


@lru_cache(maxsize=4096)
def _region_chunks(start_block: int, num_blocks: int) -> List[List[int]]:
    rng = random.Random(start_block * 2654435761 % (2**31))
    blocks = list(range(start_block, start_block + num_blocks))
    chunks: List[List[int]] = []
    index = 0
    while index < len(blocks):
        size = rng.randint(1, 2)
        chunks.append(blocks[index:index + size])
        index += size
    rng.shuffle(chunks)
    # Hot inner loops are a property of the code, not of the instance:
    # a fraction of chunks replay immediately (2-3 trips).  Keeping this
    # in the static walk means every transaction executes the same loop
    # structure, so same-type instances stay positionally aligned.
    looped: List[List[int]] = []
    for chunk in chunks:
        looped.append(chunk)
        if rng.random() < 0.10:
            for _ in range(rng.randint(1, 2)):
                looped.append(chunk)
    return looped


class CodeLayout:
    """Allocator and registry of code regions.

    One layout is shared by all transactions of a workload suite; a
    region, once allocated, is stable for the lifetime of the layout.

    Args:
        blocks_per_unit: blocks per L1-I size unit (``l1i.num_blocks``).
    """

    def __init__(self, blocks_per_unit: int):
        if blocks_per_unit <= 0:
            raise ValueError("blocks_per_unit must be positive")
        self.blocks_per_unit = blocks_per_unit
        self._next_block = CODE_BASE_BLOCK
        self._regions: Dict[str, CodeRegion] = {}

    def allocate(self, name: str, units: float) -> CodeRegion:
        """Allocate ``units`` L1-I-sizes of code under ``name``.

        Allocating an existing name returns the existing region (callers
        may idempotently declare shared functions); the size must match.
        """
        num_blocks = max(1, round(units * self.blocks_per_unit))
        existing = self._regions.get(name)
        if existing is not None:
            if existing.num_blocks != num_blocks:
                raise ValueError(
                    f"region {name!r} re-allocated with different size"
                )
            return existing
        region = CodeRegion(name, self._next_block, num_blocks)
        self._next_block += num_blocks
        self._regions[name] = region
        return region

    def region(self, name: str) -> CodeRegion:
        """Look up an allocated region."""
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> List[CodeRegion]:
        """All regions in allocation order."""
        return sorted(self._regions.values(), key=lambda r: r.start_block)

    @property
    def total_blocks(self) -> int:
        """Total allocated code size in blocks."""
        return self._next_block - CODE_BASE_BLOCK

    def units(self, num_blocks: int) -> float:
        """Convert a block count to L1-I size units."""
        return num_blocks / self.blocks_per_unit


class PrivateContext:
    """A transaction's private data working set (stack, local buffers).

    Accesses cycle through a small set of blocks, so after warm-up they
    hit in the L1-D; they model the register-spill/stack traffic that
    keeps real D-MPKI denominators honest without adding sharing.
    """

    __slots__ = ("blocks", "_cursor")

    def __init__(self, first_block: int, num_blocks: int):
        self.blocks = [first_block + i for i in range(num_blocks)]
        self._cursor = 0

    def next_block(self) -> int:
        """The next stack/buffer block in cyclic order."""
        block = self.blocks[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.blocks)
        return block


class TraceRecorder:
    """Emits trace events while the storage manager "executes" code.

    The recorder walks each region's static chunk permutation
    (:meth:`CodeRegion.walk_chunks`).  Behavioural knobs:

    * ``skip_chunk_prob`` -- data-dependent divergence: an untaken
      branch skips a whole chunk (a 2-4 block run), not isolated
      blocks.  This lets STREX followers run long hit streaks between
      divergence points (Section 2.2's partial-overlap structure);
    * ``loop_prob``/``loop_span`` -- probability of an *instance-level*
      extra backward loop re-touching recent blocks (rare; the static
      loop structure lives in :func:`_region_chunks`);
    * ``stack_prob`` -- probability that a block visit also touches the
      transaction's private stack/buffer context;
    * ``scratch_prob`` -- probability of touching the transaction's
      streaming scratch data.

    Data accesses are attached to the instruction block that was executing
    when the storage manager touched the data (``touch_data``).
    """

    def __init__(
        self,
        builder,
        rng: random.Random,
        skip_chunk_prob: float = 0.08,
        loop_prob: float = 0.01,
        loop_span: int = 3,
        context: Optional[PrivateContext] = None,
        stack_prob: float = 0.25,
        stack_write_frac: float = 0.4,
        scratch: Optional[PrivateContext] = None,
        scratch_prob: float = 0.05,
    ):
        self.builder = builder
        self.rng = rng
        self.skip_chunk_prob = skip_chunk_prob
        self.loop_prob = loop_prob
        self.loop_span = loop_span
        self.context = context
        self.stack_prob = stack_prob
        self.stack_write_frac = stack_write_frac
        self.scratch = scratch
        self.scratch_prob = scratch_prob
        self._current_block: Optional[int] = None

    def execute(self, region: CodeRegion,
                data_points: Optional[List[tuple]] = None) -> None:
        """Walk a region once, optionally weaving in data accesses.

        Args:
            region: the code region to execute.
            data_points: optional ``(dblock, dwrite)`` pairs, spread
                evenly across the walk.
        """
        append = self.builder.append
        rng = self.rng
        context = self.context
        pending = list(data_points or [])
        stride = max(1, region.num_blocks // (len(pending) + 1))
        position = 0
        recent: List[int] = []
        for chunk in region.walk_chunks():
            if self.skip_chunk_prob and \
                    rng.random() < self.skip_chunk_prob:
                continue
            for block in chunk:
                self._current_block = block
                if pending and position % stride == stride - 1:
                    dblock, dwrite = pending.pop(0)
                    append(block, INSTRUCTIONS_PER_BLOCK, dblock, dwrite)
                elif context is not None and \
                        rng.random() < self.stack_prob:
                    write = 1 if rng.random() < self.stack_write_frac \
                        else 0
                    append(block, INSTRUCTIONS_PER_BLOCK,
                           context.next_block(), write)
                elif self.scratch is not None and \
                        rng.random() < self.scratch_prob:
                    # Per-transaction scratch (tuple copies, message
                    # buffers): a cycle longer than the L1-D, so these
                    # accesses stream and miss under every scheduler.
                    append(block, INSTRUCTIONS_PER_BLOCK,
                           self.scratch.next_block(), 1)
                else:
                    append(block, INSTRUCTIONS_PER_BLOCK)
                recent.append(block)
                position += 1
            if self.loop_prob and rng.random() < self.loop_prob:
                for looped in recent[-self.loop_span:]:
                    append(looped, INSTRUCTIONS_PER_BLOCK)
        # Flush data accesses that the skipping left unattached.
        for dblock, dwrite in pending:
            self.touch_data(dblock, dwrite, region)

    def touch_data(self, dblock: int, dwrite: int,
                   region: Optional[CodeRegion] = None) -> None:
        """Record a single data access at the current code position."""
        block = self._current_block
        if block is None:
            if region is None:
                raise RuntimeError("no current code block for data access")
            block = region.start_block
        self.builder.append(block, 2, dblock, dwrite)
