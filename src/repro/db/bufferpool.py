"""Buffer pool manager (Shore-MT-style fix/unfix).

The paper's system keeps the whole database in the buffer pool
("the buffer-pool is configured to keep the whole database in memory"),
so the pool never does I/O -- but its *bookkeeping* is still executed on
every page access: the hash lookup, the pin-count update, and the clock
replacement state.  Those bookkeeping structures are shared data that
every transaction touches, which is exactly the kind of hot metadata the
paper credits for cross-transaction data locality.

This module implements a real pool: a frame table, a page->frame hash,
pin/unpin reference counting, and clock (second-chance) replacement.
The storage manager fixes pages through it; each fix reports the pool
bucket block touched so the trace carries the bookkeeping traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BufferPoolError(RuntimeError):
    """Raised on invalid pin/unpin sequences or pool exhaustion."""


class Frame:
    """One buffer frame."""

    __slots__ = ("page", "pin_count", "referenced", "dirty")

    def __init__(self) -> None:
        self.page: Optional[int] = None
        self.pin_count = 0
        self.referenced = False
        self.dirty = False


class BufferPool:
    """Clock-replacement buffer pool over page block addresses.

    Args:
        space: data address allocator (for the hash-bucket blocks).
        num_frames: pool capacity in frames.
        num_buckets: hash-directory buckets (each pinned to a block).
    """

    def __init__(self, space, num_frames: int = 256,
                 num_buckets: int = 16):
        if num_frames <= 0 or num_buckets <= 0:
            raise ValueError("pool geometry must be positive")
        self.num_frames = num_frames
        self._frames: List[Frame] = [Frame() for _ in range(num_frames)]
        self._page_frame: Dict[int, int] = {}
        self._hand = 0
        first = space.allocate("bufpool", num_buckets)
        self._bucket_blocks = [first + i for i in range(num_buckets)]
        self.fixes = 0
        self.pool_hits = 0
        self.pool_misses = 0
        self.evictions = 0

    def bucket_block(self, page: int) -> int:
        """Hash-directory block guarding a page's pool entry."""
        return self._bucket_blocks[page % len(self._bucket_blocks)]

    # ------------------------------------------------------------------
    # Fix / unfix
    # ------------------------------------------------------------------
    def fix(self, page: int, dirty: bool = False) -> Tuple[int, bool]:
        """Pin a page in the pool.

        Returns:
            (hash-bucket block touched, pool hit flag).
        """
        self.fixes += 1
        frame_id = self._page_frame.get(page)
        if frame_id is not None:
            frame = self._frames[frame_id]
            frame.pin_count += 1
            frame.referenced = True
            frame.dirty = frame.dirty or dirty
            self.pool_hits += 1
            return self.bucket_block(page), True
        self.pool_misses += 1
        frame_id = self._allocate_frame()
        frame = self._frames[frame_id]
        frame.page = page
        frame.pin_count = 1
        frame.referenced = True
        frame.dirty = dirty
        self._page_frame[page] = frame_id
        return self.bucket_block(page), False

    def unfix(self, page: int) -> None:
        """Unpin a previously fixed page."""
        frame_id = self._page_frame.get(page)
        if frame_id is None:
            raise BufferPoolError(f"unfix of non-resident page {page}")
        frame = self._frames[frame_id]
        if frame.pin_count <= 0:
            raise BufferPoolError(f"unfix of unpinned page {page}")
        frame.pin_count -= 1

    def _allocate_frame(self) -> int:
        # Free frame first.
        for frame_id, frame in enumerate(self._frames):
            if frame.page is None:
                return frame_id
        # Clock sweep: skip pinned frames, clear reference bits.
        for _ in range(2 * self.num_frames):
            frame = self._frames[self._hand]
            victim_id = self._hand
            self._hand = (self._hand + 1) % self.num_frames
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            del self._page_frame[frame.page]
            self.evictions += 1
            frame.page = None
            frame.dirty = False
            return victim_id
        raise BufferPoolError("all frames pinned")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_resident(self, page: int) -> bool:
        """True if a page currently occupies a frame."""
        return page in self._page_frame

    def pin_count(self, page: int) -> int:
        """Current pin count of a page (0 if absent)."""
        frame_id = self._page_frame.get(page)
        if frame_id is None:
            return 0
        return self._frames[frame_id].pin_count

    @property
    def resident_pages(self) -> int:
        """Number of occupied frames."""
        return len(self._page_frame)

    @property
    def hit_rate(self) -> float:
        """Pool hit rate over all fixes."""
        if not self.fixes:
            return 0.0
        return self.pool_hits / self.fixes
