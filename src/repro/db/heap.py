"""Heap tables: slotted pages of records plus a primary B+Tree index.

A :class:`Table` owns its pages, a monotonically growing rid space, and a
primary-key index.  Table metadata (schema pointer, page directory head,
tuple count) lives in a dedicated metadata block that every operation
touches -- same-type transactions therefore share these blocks, which is
one of the data-sharing channels the paper identifies ("the same metadata
and locks of the same tables").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.db.btree import BTreeIndex
from repro.db.storage import DataSpace, Page


class Table:
    """A heap table with a primary index.

    Args:
        name: table name.
        space: data address allocator.
        records_per_page: slot count per page.
        index_order: B+Tree node fanout for the primary index.
    """

    def __init__(
        self,
        name: str,
        space: DataSpace,
        records_per_page: int = 16,
        index_order: int = 32,
        span_blocks: int = 1,
    ):
        self.name = name
        self.space = space
        self.records_per_page = records_per_page
        self.span_blocks = span_blocks
        self.metadata_block = space.allocate(f"meta:{name}")
        self.primary = BTreeIndex(f"{name}.pk", space, order=index_order)
        self.secondary: Dict[str, BTreeIndex] = {}
        self._pages: List[Page] = []
        self._rid_page: Dict[int, Page] = {}
        self._next_rid = 0

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------
    def add_secondary_index(self, name: str, order: int = 32) -> BTreeIndex:
        """Create a named secondary index over this table."""
        index = BTreeIndex(f"{self.name}.{name}", self.space, order=order)
        self.secondary[name] = index
        return index

    # ------------------------------------------------------------------
    # Record operations; each returns the data blocks it touched.
    # ------------------------------------------------------------------
    def insert(self, key: int, record: dict) -> Tuple[int, List[int]]:
        """Insert a record under primary key; returns (rid, blocks)."""
        blocks = [self.metadata_block]
        if not self._pages or self._pages[-1].full:
            page = Page(
                self.space.allocate(f"heap:{self.name}",
                                    self.span_blocks),
                self.records_per_page,
                span=self.span_blocks,
            )
            self._pages.append(page)
        page = self._pages[-1]
        rid = self._next_rid
        self._next_rid += 1
        page.insert(rid, record)
        self._rid_page[rid] = page
        blocks.extend(page.blocks())
        blocks.extend(self.primary.insert(key, rid))
        return rid, blocks

    def read(self, rid: int) -> Tuple[dict, List[int]]:
        """Read a record by rid; returns (record, blocks)."""
        page = self._rid_page[rid]
        return page.get(rid), [self.metadata_block] + page.blocks()

    def update(self, rid: int, fields: dict) -> List[int]:
        """Update fields of a record in place; returns blocks touched."""
        page = self._rid_page[rid]
        page.get(rid).update(fields)
        return [self.metadata_block] + page.blocks()

    def lookup(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Primary-key probe; returns (rid or None, blocks touched)."""
        rid, path = self.primary.traverse(key)
        return rid, [self.metadata_block] + path

    def delete(self, key: int) -> Tuple[bool, List[int]]:
        """Delete a record by primary key; returns (deleted?, blocks)."""
        rid, path = self.primary.traverse(key)
        blocks = [self.metadata_block] + path
        if rid is None:
            return False, blocks
        deleted, delete_path = self.primary.delete(key)
        blocks.extend(delete_path)
        page = self._rid_page.pop(rid, None)
        if page is not None:
            page.records.pop(rid, None)
            blocks.extend(page.blocks())
        return deleted, blocks

    @property
    def num_records(self) -> int:
        """Live record count."""
        return len(self._rid_page)

    @property
    def num_pages(self) -> int:
        """Allocated heap pages."""
        return len(self._pages)
