"""Data address space and buffer-pool-resident page abstraction.

The database substrate keeps its working state in real Python objects
(B+Tree nodes, heap pages, lock buckets, log buffers), each pinned to a
*data block address* so that executing a transaction produces the data
reference stream the L1-D/coherence model consumes.

The paper keeps the whole database in an in-memory buffer pool; we do the
same -- there is no I/O path, only addresses.
"""

from __future__ import annotations

from typing import Dict


#: Base of the data address space, in blocks, far above the code space.
DATA_BASE_BLOCK = 1 << 28


class DataSpace:
    """Allocator of data block addresses, grouped into named regions."""

    def __init__(self) -> None:
        self._next_block = DATA_BASE_BLOCK
        self._region_sizes: Dict[str, int] = {}

    def allocate(self, region: str, num_blocks: int = 1) -> int:
        """Allocate ``num_blocks`` contiguous blocks; returns the first."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        start = self._next_block
        self._next_block += num_blocks
        self._region_sizes[region] = (
            self._region_sizes.get(region, 0) + num_blocks
        )
        return start

    def region_blocks(self, region: str) -> int:
        """Total blocks allocated under a region name."""
        return self._region_sizes.get(region, 0)

    @property
    def total_blocks(self) -> int:
        """Total data blocks allocated."""
        return self._next_block - DATA_BASE_BLOCK


class Page:
    """A fixed-capacity slotted page spanning ``span`` cache blocks.

    Real OLTP tuples are wide (TPC-C's customer row is ~655 bytes, stock
    ~306 bytes), so touching a tuple touches several 64 B blocks; pages
    of wide-tuple tables span multiple blocks and an access returns the
    blocks the tuple occupies.
    """

    __slots__ = ("block", "capacity", "span", "records")

    def __init__(self, block: int, capacity: int, span: int = 1):
        self.block = block
        self.capacity = capacity
        self.span = span
        self.records: Dict[int, dict] = {}

    @property
    def full(self) -> bool:
        """True when no slot is free."""
        return len(self.records) >= self.capacity

    def blocks(self) -> list:
        """All cache blocks this page spans."""
        return [self.block + i for i in range(self.span)]

    def insert(self, rid: int, record: dict) -> None:
        """Place a record in this page."""
        if self.full:
            raise RuntimeError("page is full")
        self.records[rid] = record

    def get(self, rid: int) -> dict:
        """Fetch a record by rid."""
        return self.records[rid]
