"""StorageManager: the basic functions of the paper's Fig. 1.

Every OLTP transaction in the paper is composed of *actions* that call a
small set of *basic functions*: index lookup (``R``), tuple update
(``U``), tuple insert (``I``), and index scan (``IT``), on top of the
buffer pool, lock manager and log.  This module implements those basic
functions over the heap/B+Tree substrate and, crucially, attributes a
shared code region to each one -- the cross-type instruction overlap of
Section 2.1 ("all database transactions are composed of a subset of the
aforementioned basic functions").

Each basic function, when invoked, (1) mutates the real data structures
and (2) emits, through the transaction's :class:`TraceRecorder`, the walk
over its code region with the data blocks it touched woven in.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.db.bufferpool import BufferPool
from repro.db.codemap import CodeLayout, TraceRecorder
from repro.db.heap import Table
from repro.db.locks import EXCLUSIVE, SHARED, LockManager
from repro.db.log import LogManager
from repro.db.storage import DataSpace


#: Shared basic-function code sizes in L1-I units.  These are the code
#: segments common to all transaction types; per-action wrapper code is
#: sized by the workloads to hit the Table 3 footprints (see
#: repro.workloads.base).
BASIC_FUNCTION_UNITS: Dict[str, float] = {
    "sm.txn_begin": 0.30,
    "sm.txn_commit": 0.50,
    "sm.lock_acquire": 0.35,
    "sm.lock_release": 0.20,
    "sm.log_write": 0.45,
    "sm.bufpool_fix": 0.40,
    "sm.btree_traverse": 1.20,
    "sm.btree_insert": 0.65,
    "sm.index_scan": 0.90,
    "sm.rec_read": 0.65,
    "sm.rec_update": 0.75,
    "sm.rec_insert": 0.75,
    "sm.catalog": 0.20,
}


class Database:
    """A database instance: tables plus lock and log managers."""

    def __init__(self, name: str, layout: CodeLayout,
                 lock_buckets: int = 16):
        self.name = name
        self.layout = layout
        self.space = DataSpace()
        self.tables: Dict[str, Table] = {}
        self.locks = LockManager(self.space, num_buckets=lock_buckets)
        self.log = LogManager(self.space)
        self.pool = BufferPool(self.space)
        for region_name, units in BASIC_FUNCTION_UNITS.items():
            layout.allocate(region_name, units)

    def create_table(self, name: str, records_per_page: int = 16,
                     index_order: int = 32,
                     span_blocks: int = 1) -> Table:
        """Create and register a table."""
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, self.space, records_per_page, index_order,
                      span_blocks)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        return self.tables[name]


class StorageManager:
    """Per-transaction facade over a :class:`Database`.

    One StorageManager is created per transaction execution; it binds the
    transaction id, the trace recorder, and the RNG that drives
    data-dependent control flow.
    """

    def __init__(self, db: Database, txn_id: int,
                 recorder: TraceRecorder, rng: random.Random):
        self.db = db
        self.txn_id = txn_id
        self.recorder = recorder
        self.rng = rng
        self._region = db.layout.region

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start the transaction (touches catalog + begin code)."""
        self.recorder.execute(self._region("sm.txn_begin"))
        self.recorder.execute(self._region("sm.catalog"))

    def commit(self) -> None:
        """Commit: force the log, release all locks."""
        log_blocks = self.db.log.append(payload_size=2)
        self.recorder.execute(
            self._region("sm.log_write"),
            [(block, 1) for block in log_blocks],
        )
        release_blocks = self.db.locks.release_all(self.txn_id)
        self.recorder.execute(
            self._region("sm.lock_release"),
            [(block, 1) for block in release_blocks[:4]],
        )
        self.recorder.execute(self._region("sm.txn_commit"))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _lock(self, table: str, key: int, mode: int) -> None:
        block, _ = self.db.locks.acquire(self.txn_id, table, key, mode)
        self.recorder.execute(self._region("sm.lock_acquire"),
                              [(block, 1)])

    def _log(self) -> None:
        blocks = self.db.log.append()
        self.recorder.execute(self._region("sm.log_write"),
                              [(block, 1) for block in blocks])

    #: Probability that touching a B+Tree node updates its latch word
    #: (Shore-MT pins/latches every page it traverses; the counter update
    #: is a write to a shared line).
    LATCH_WRITE_PROB = 0.5

    def _path_points(self, blocks: List[int]) -> List[tuple]:
        rng = self.rng
        return [
            (block, 1 if rng.random() < self.LATCH_WRITE_PROB else 0)
            for block in blocks
        ]

    def _fix(self, blocks: List[int], write: bool = False) -> None:
        """Fix the touched pages in the buffer pool.

        The pool's hash-directory bucket is read on every fix (shared
        bookkeeping); the page blocks themselves follow.  Pages are
        unfixed immediately after the access -- the generator is serial,
        so pins never overlap.
        """
        flag = 1 if write else 0
        points = []
        page = blocks[0] if blocks else None
        if page is not None:
            bucket, _ = self.db.pool.fix(page, dirty=write)
            points.append((bucket, 0))
            self.db.pool.unfix(page)
        points.extend((block, flag) for block in blocks[:3])
        self.recorder.execute(self._region("sm.bufpool_fix"), points)

    # ------------------------------------------------------------------
    # Basic functions (Fig. 1's R / U / I / IT)
    # ------------------------------------------------------------------
    def index_lookup(self, table_name: str, key: int,
                     for_update: bool = False) -> Optional[dict]:
        """``R(table)``: probe the primary index and read the tuple."""
        table = self.db.table(table_name)
        mode = EXCLUSIVE if for_update else SHARED
        self._lock(table_name, key, mode)
        rid, blocks = table.lookup(key)
        self.recorder.execute(
            self._region("sm.btree_traverse"),
            self._path_points(blocks),
        )
        if rid is None:
            return None
        record, rec_blocks = table.read(rid)
        self._fix(rec_blocks)
        self.recorder.execute(
            self._region("sm.rec_read"),
            [(block, 0) for block in rec_blocks[:6]],
        )
        return record

    def tuple_update(self, table_name: str, key: int,
                     fields: dict) -> bool:
        """``U(table)``: locate a tuple by key and update it in place."""
        table = self.db.table(table_name)
        self._lock(table_name, key, EXCLUSIVE)
        rid, blocks = table.lookup(key)
        self.recorder.execute(
            self._region("sm.btree_traverse"),
            self._path_points(blocks),
        )
        if rid is None:
            return False
        touched = table.update(rid, fields)
        self._fix(touched, write=True)
        self.recorder.execute(
            self._region("sm.rec_update"),
            [(block, 1) for block in touched[:6]],
        )
        self._log()
        return True

    def tuple_insert(self, table_name: str, key: int,
                     record: dict) -> int:
        """``I(table)``: insert a tuple and maintain the primary index."""
        table = self.db.table(table_name)
        self._lock(table_name, key, EXCLUSIVE)
        rid, blocks = table.insert(key, record)
        self._fix(blocks[:2], write=True)
        self.recorder.execute(
            self._region("sm.rec_insert"),
            [(block, 1) for block in blocks[:4]],
        )
        self.recorder.execute(
            self._region("sm.btree_insert"),
            [(block, 1) for block in blocks[2:]],
        )
        self._log()
        return rid

    def tuple_delete(self, table_name: str, key: int) -> bool:
        """``D(table)``: delete a tuple and its primary-index entry."""
        table = self.db.table(table_name)
        self._lock(table_name, key, EXCLUSIVE)
        deleted, blocks = table.delete(key)
        self._fix(blocks[:2], write=True)
        self.recorder.execute(
            self._region("sm.btree_traverse"),
            self._path_points(blocks[:5]),
        )
        if deleted:
            self.recorder.execute(
                self._region("sm.rec_update"),
                [(block, 1) for block in blocks[-3:]],
            )
            self._log()
        return deleted

    def index_scan(self, table_name: str, low: int, high: int,
                   index: Optional[str] = None,
                   limit: Optional[int] = None) -> List[dict]:
        """``IT(table)``: range scan, reading the qualifying tuples."""
        table = self.db.table(table_name)
        self._lock(table_name, low, SHARED)
        tree = table.secondary[index] if index else table.primary
        rids, blocks = tree.scan(low, high)
        if limit is not None:
            rids = rids[:limit]
        self.recorder.execute(
            self._region("sm.index_scan"),
            self._path_points(blocks),
        )
        records = []
        for rid in rids:
            record, rec_blocks = table.read(rid)
            self.recorder.touch_data(rec_blocks[-1], 0)
            records.append(record)
        return records
