"""Write-ahead log manager.

Transactions append log records to a circular in-memory log buffer; each
append writes the current tail block and, every ``records_per_block``
appends, advances to the next block.  The tail block is write-shared by
every committing transaction -- a classic OLTP coherence hot spot.
"""

from __future__ import annotations

from typing import List


class LogManager:
    """Circular log buffer of ``num_blocks`` data blocks."""

    def __init__(self, space, num_blocks: int = 32,
                 records_per_block: int = 4):
        if num_blocks <= 0 or records_per_block <= 0:
            raise ValueError("log geometry must be positive")
        first = space.allocate("log", num_blocks)
        self._blocks = [first + i for i in range(num_blocks)]
        self.records_per_block = records_per_block
        self._tail = 0
        self._in_block = 0
        self.records_written = 0

    def append(self, payload_size: int = 1) -> List[int]:
        """Append one log record; returns the blocks written."""
        blocks = [self._blocks[self._tail]]
        self.records_written += 1
        self._in_block += max(1, payload_size)
        while self._in_block >= self.records_per_block:
            self._in_block -= self.records_per_block
            self._tail = (self._tail + 1) % len(self._blocks)
            blocks.append(self._blocks[self._tail])
        return blocks

    @property
    def tail_block(self) -> int:
        """Current tail block address."""
        return self._blocks[self._tail]
