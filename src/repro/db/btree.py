"""A real B+Tree index whose nodes live at data block addresses.

Keys are integers, values are record ids.  Every node occupies one data
block, so an index traversal touches one data block per level -- the
index-probe reference pattern whose root/inner-node sharing drives the
coherence-miss growth in the paper's Fig. 5 ("they tend to access ... the
same index roots during index probes").

The tree is a textbook B+Tree: sorted keys per node, leaf chaining for
range scans, recursive split on overflow.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.db.storage import DataSpace


class _Node:
    __slots__ = ("block", "keys", "children", "values", "next_leaf", "leaf")

    def __init__(self, block: int, leaf: bool):
        self.block = block
        self.leaf = leaf
        self.keys: List[int] = []
        self.children: List["_Node"] = []
        self.values: List[int] = []
        self.next_leaf: Optional["_Node"] = None


class BTreeIndex:
    """B+Tree from integer key to integer record id.

    Args:
        name: index name (used as the data-space region label).
        space: data address allocator.
        order: max keys per node before splitting.
    """

    def __init__(self, name: str, space: DataSpace, order: int = 32):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.name = name
        self.space = space
        self.order = order
        self.root: _Node = self._new_node(leaf=True)
        self.size = 0

    def _new_node(self, leaf: bool) -> _Node:
        return _Node(self.space.allocate(f"index:{self.name}"), leaf)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def traverse(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Find ``key``; returns (record id or None, node blocks touched).

        The block path is what the storage manager feeds to the trace
        recorder: one data access per tree level, root first.
        """
        node = self.root
        path = [node.block]
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
            path.append(node.block)
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index], path
        return None, path

    def lookup(self, key: int) -> Optional[int]:
        """Record id for ``key`` or None."""
        value, _ = self.traverse(key)
        return value

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> List[int]:
        """Insert a key; returns the node blocks touched."""
        _, path = self.traverse(key)
        self._insert_recursive(self.root, key, value)
        self.size += 1
        if len(self.root.keys) > self.order:
            old_root = self.root
            self.root = self._new_node(leaf=False)
            self.root.children = [old_root]
            self._split_child(self.root, 0)
            path.append(self.root.block)
        return path

    def _insert_recursive(self, node: _Node, key: int, value: int) -> None:
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                self.size -= 1  # overwrite, not growth
                return
            node.keys.insert(index, key)
            node.values.insert(index, value)
            return
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        self._insert_recursive(child, key, value)
        if len(child.keys) > self.order:
            self._split_child(node, index)

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = self._new_node(child.leaf)
        if child.leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            up_key = sibling.keys[0]
        else:
            up_key = child.keys[mid]
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            child.keys = child.keys[:mid]
            child.children = child.children[:mid + 1]
        parent.keys.insert(index, up_key)
        parent.children.insert(index + 1, sibling)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: int) -> Tuple[bool, List[int]]:
        """Remove ``key``; returns (deleted?, node blocks touched).

        Deletion is leaf-local (no rebalancing): B+Trees in storage
        managers commonly defer merging to offline reorganization, and
        the structural invariants (sortedness, balance of the insert
        path) are preserved because node shapes only shrink.
        """
        node = self.root
        path = [node.block]
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
            path.append(node.block)
        index = bisect.bisect_left(node.keys, key)
        if index >= len(node.keys) or node.keys[index] != key:
            return False, path
        node.keys.pop(index)
        node.values.pop(index)
        self.size -= 1
        return True, path

    # ------------------------------------------------------------------
    # Range scan
    # ------------------------------------------------------------------
    def scan(self, low: int, high: int) -> Tuple[List[int], List[int]]:
        """All values with low <= key <= high, plus blocks touched."""
        node = self.root
        blocks = [node.block]
        while not node.leaf:
            index = bisect.bisect_right(node.keys, low)
            node = node.children[index]
            blocks.append(node.block)
        values: List[int] = []
        current: Optional[_Node] = node
        while current is not None:
            for key, value in zip(current.keys, current.values):
                if key > high:
                    return values, blocks
                if key >= low:
                    values.append(value)
            current = current.next_leaf
            if current is not None:
                blocks.append(current.block)
        return values, blocks

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels."""
        node = self.root
        levels = 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, value) pairs in key order."""
        node = self.root
        while not node.leaf:
            node = node.children[0]
        current: Optional[_Node] = node
        while current is not None:
            yield from zip(current.keys, current.values)
            current = current.next_leaf

    def check_invariants(self) -> None:
        """Assert sortedness and balance (used by property tests)."""
        leaf_depths = set()

        def visit(node: _Node, depth: int, lo: Optional[int],
                  hi: Optional[int]) -> None:
            assert node.keys == sorted(node.keys), "keys unsorted"
            for key in node.keys:
                assert lo is None or key >= lo, "key below bound"
                assert hi is None or key <= hi, "key above bound"
            if node.leaf:
                leaf_depths.add(depth)
                assert len(node.keys) == len(node.values)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [lo] + node.keys + [hi]
                for i, child in enumerate(node.children):
                    visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self.root, 0, None, None)
        assert len(leaf_depths) == 1, "tree is not balanced"
