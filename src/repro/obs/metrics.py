"""Process-local metrics with cross-process merge semantics.

A :class:`MetricsRegistry` holds three families of instruments:

``counters``
    Monotonic integer totals (``inc``).  Merge = sum.
``gauges``
    Last-known scalar values (``set_gauge``).  Merge = max, so a merged
    view is deterministic regardless of which shard's record lands
    first in the sink.
``histograms``
    Fixed log2-bucket distributions (``observe``).  Merge = bucket-wise
    sum (count and total sum too).

Registries serialize to plain dicts (``to_dict``/``from_dict``) so the
tracer can append them to a JSONL sink as ``{"kind": "metrics", ...}``
records; ``repro.obs.report`` merges every such record back into one
registry when reading a trace.  Flushes write *deltas* since the last
flush (see :meth:`MetricsRegistry.delta_since`), which makes repeated
flushes and multi-process sinks merge-safe: summing every record yields
exactly the cumulative totals.

The bucket layout is fixed so merged histograms always align:
bucket 0 counts values below 1 (including zero and negatives), and
bucket ``i`` (``i >= 1``) counts values in ``[2**(i-1), 2**i)``, capped
at ``NUM_BUCKETS - 1`` for anything larger.  Observe in the unit that
makes integer-ish magnitudes interesting (e.g. microseconds for wall
times).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

__all__ = [
    "NUM_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "bucket_bounds",
    "bucket_index",
]

#: Number of log2 buckets in every histogram.  64 buckets cover the
#: full non-negative int64 range, so the layout never needs to grow.
NUM_BUCKETS = 64


def bucket_index(value: float) -> int:
    """Map ``value`` to its fixed log2 bucket.

    ``value < 1`` (zero and negatives included) lands in bucket 0;
    otherwise bucket ``i`` covers ``[2**(i-1), 2**i)``.  Values at or
    above ``2**(NUM_BUCKETS-1)`` are clamped into the last bucket.
    """
    if value < 1 or value != value:  # NaN guards to bucket 0
        return 0
    if math.isinf(value):
        return NUM_BUCKETS - 1
    # frexp(v) = (f, e) with v = f * 2**e and 0.5 <= f < 1, so
    # 2**(e-1) <= v < 2**e: the exponent *is* the bucket index.
    exponent = math.frexp(value)[1]
    return exponent if exponent < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_bounds(index: int) -> Tuple[float, float]:
    """Half-open ``[lo, hi)`` value range covered by bucket ``index``."""
    if index <= 0:
        return (0.0, 1.0)
    if index >= NUM_BUCKETS - 1:
        return (float(2 ** (NUM_BUCKETS - 2)), math.inf)
    return (float(2 ** (index - 1)), float(2 ** index))


class Histogram:
    """Fixed log2-bucket histogram (sparse storage, dense semantics)."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total

    def copy(self) -> "Histogram":
        dup = Histogram()
        dup.buckets = dict(self.buckets)
        dup.count = self.count
        dup.total = self.total
        return dup

    def to_dict(self) -> dict:
        return {
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls()
        hist.buckets = {
            int(i): int(n) for i, n in data.get("buckets", {}).items()
        }
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        return hist


class MetricsRegistry:
    """Counters, gauges, and histograms for one process (or one merge)."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- merge / copy --------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms are additive; gauges take the max so
        the result does not depend on merge order.
        """
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, value in other.gauges.items():
            prior = self.gauges.get(name)
            self.gauges[name] = (
                value if prior is None else max(prior, value)
            )
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)

    def copy(self) -> "MetricsRegistry":
        dup = MetricsRegistry()
        dup.counters = dict(self.counters)
        dup.gauges = dict(self.gauges)
        dup.histograms = {
            name: hist.copy() for name, hist in self.histograms.items()
        }
        return dup

    def delta_since(self, baseline: "MetricsRegistry") -> "MetricsRegistry":
        """Registry holding growth since ``baseline`` (a prior copy).

        Counters and histogram buckets subtract; gauges carry their
        current values (max-merge makes repeats harmless).  Summing a
        stream of deltas reproduces the cumulative registry, which is
        what makes periodic flushes to a shared sink merge-safe.
        """
        delta = MetricsRegistry()
        for name, n in self.counters.items():
            diff = n - baseline.counters.get(name, 0)
            if diff:
                delta.counters[name] = diff
        delta.gauges = dict(self.gauges)
        for name, hist in self.histograms.items():
            base = baseline.histograms.get(name)
            if base is None:
                delta.histograms[name] = hist.copy()
                continue
            diff = Histogram()
            for idx, count in hist.buckets.items():
                d = count - base.buckets.get(idx, 0)
                if d:
                    diff.buckets[idx] = d
            diff.count = hist.count - base.count
            diff.total = hist.total - base.total
            if diff.count or diff.buckets:
                delta.histograms[name] = diff
        return delta

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        reg.counters = {
            str(k): int(v) for k, v in data.get("counters", {}).items()
        }
        reg.gauges = {
            str(k): float(v) for k, v in data.get("gauges", {}).items()
        }
        reg.histograms = {
            str(k): Histogram.from_dict(v)
            for k, v in data.get("histograms", {}).items()
        }
        return reg
