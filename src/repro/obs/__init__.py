"""repro.obs -- zero-dependency structured observability.

Layering rule: everything here is stdlib-only and imports nothing else
from ``repro``, so any layer (exp runner, shard orchestrator, sim
kernel, perf bench) can instrument itself without import cycles.

The module-level API is what instrumented code calls:

``obs.span(name, **tags)``
    Context manager.  Returns a real :class:`~repro.obs.tracer.Span`
    when tracing is armed, else the shared no-op ``NULL_SPAN`` --
    disarmed call sites pay one env lookup and nothing else.
``obs.add(counter, n)``
    Bump a counter on the innermost open span (no-op when disarmed).
``obs.metric_inc / obs.metric_observe / obs.metric_gauge``
    Process-wide metrics, independent of the span stack.
``obs.flush()``
    Append the metrics delta to the sink (called at natural phase ends
    and again at process exit).

Arming: setting ``REPRO_TRACE=<path>`` arms a process-wide tracer
sinking to that path.  The environment is re-checked on every
``tracer()`` call (cheap), so tests can arm/disarm via ``monkeypatch``
and subprocess workers inherit the sink automatically.  Forked children
get their own tracer (fresh stack, own pid) lazily because the cached
tracer is keyed by ``(pid, sink)``.  ``obs.use(tracer)`` installs an
explicit (usually in-memory) tracer for the current process, overriding
the environment -- the unit-test and ``perf --trace`` entry point.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import (
    NUM_BUCKETS,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)
from repro.obs.tracer import (
    NULL_SPAN,
    RING_CAPACITY,
    Span,
    TRACE_ENV,
    Tracer,
)

__all__ = [
    "NULL_SPAN",
    "NUM_BUCKETS",
    "RING_CAPACITY",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "add",
    "bucket_bounds",
    "bucket_index",
    "flush",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "span",
    "tracer",
    "use",
]

# Cached env-armed tracer, keyed by (pid, sink path).  The pid in the
# key makes forked children (pool workers, shard subprocesses) build
# their own tracer -- fresh span stack, own span-id namespace -- on
# first use instead of inheriting the parent's open spans.
_TRACER: Optional[Tracer] = None
_TRACER_KEY: Optional[tuple] = None
# Explicitly installed tracer (obs.use); overrides the environment in
# the installing process only.
_INSTALLED: Optional[tuple] = None


def tracer() -> Optional[Tracer]:
    """The active tracer for this process, or None when disarmed."""
    global _TRACER, _TRACER_KEY
    if _INSTALLED is not None and _INSTALLED[1] == os.getpid():
        return _INSTALLED[0]
    sink = os.environ.get(TRACE_ENV) or None
    key = (os.getpid(), sink)
    if key != _TRACER_KEY:
        _TRACER_KEY = key
        _TRACER = Tracer(sink=sink) if sink else None
    return _TRACER


@contextmanager
def use(tracer_obj: Tracer):
    """Install ``tracer_obj`` as this process's tracer for the block."""
    global _INSTALLED
    prev = _INSTALLED
    _INSTALLED = (tracer_obj, os.getpid())
    try:
        yield tracer_obj
    finally:
        _INSTALLED = prev


def span(name: str, **tags):
    """Open a span on the active tracer; NULL_SPAN when disarmed."""
    t = tracer()
    return t.span(name, **tags) if t is not None else NULL_SPAN


def add(counter: str, n: int = 1) -> None:
    t = tracer()
    if t is not None:
        t.add(counter, n)


def metric_inc(name: str, n: int = 1) -> None:
    t = tracer()
    if t is not None:
        t.metrics.inc(name, n)


def metric_observe(name: str, value: float) -> None:
    t = tracer()
    if t is not None:
        t.metrics.observe(name, value)


def metric_gauge(name: str, value: float) -> None:
    t = tracer()
    if t is not None:
        t.metrics.set_gauge(name, value)


def flush() -> None:
    t = tracer()
    if t is not None:
        t.flush_metrics()


@atexit.register
def _flush_at_exit() -> None:  # pragma: no cover - exit hook
    # Flush the cached tracer only (never *create* one at exit), and
    # only in the process that owns it.
    t = _TRACER
    if t is not None and t.pid == os.getpid():
        t.flush_metrics()
    if _INSTALLED is not None and _INSTALLED[1] == os.getpid():
        _INSTALLED[0].flush_metrics()
