"""Structured span tracer with an in-memory ring and a JSONL sink.

A :class:`Tracer` emits nested spans: each ``with tracer.span(name,
**tags)`` block measures a monotonic-clock interval, carries string
tags and integer counters, and knows its parent (whatever span is open
on the same tracer's stack).  Completed spans land in a bounded
in-memory ring (newest-first eviction via ``deque(maxlen=...)``) and,
when the tracer has a sink path, are appended to a JSONL file -- one
``json.dumps`` line per span, written with a single ``write()`` call so
concurrent writers (shard subprocesses, pool workers appending to the
same path) interleave whole lines, the same atomicity contract
``repro.exp.manifest`` relies on.  A process killed mid-write can leave
at most one torn trailing line, which readers skip.

Spans are written at *close* time, children before parents; readers
reconstruct the tree from ``id``/``parent`` fields.  Span ids are
``"<pid>-<seq>"`` so records from different processes sharing one sink
never collide.

The tracer also owns a :class:`~repro.obs.metrics.MetricsRegistry`.
``flush_metrics`` appends a ``{"kind": "metrics", ...}`` record holding
the *delta* since the previous flush, so periodic flushes (end of a
sweep, end of a shard, process exit) sum back to the cumulative totals
when a trace is read.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NULL_SPAN",
    "RING_CAPACITY",
    "Span",
    "TRACE_ENV",
    "Tracer",
]

#: Environment variable naming the JSONL sink; setting it arms tracing.
TRACE_ENV = "REPRO_TRACE"

#: Default number of completed spans kept in memory.
RING_CAPACITY = 1024


class Span:
    """One timed, tagged interval.  Use as a context manager."""

    __slots__ = (
        "name",
        "tags",
        "counters",
        "children",
        "span_id",
        "parent_id",
        "pid",
        "start_s",
        "dur_s",
        "_tracer",
    )

    #: Real spans report armed=True so call sites can skip building
    #: expensive counter payloads when handed the null span instead.
    armed = True

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = {
            k: v for k, v in tags.items() if v is not None
        }
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.pid = tracer.pid
        self.start_s = 0.0
        self.dur_s = 0.0

    def add(self, counter: str, n: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + n

    def tag(self, **tags) -> None:
        self.tags.update(
            (k, v) for k, v in tags.items() if v is not None
        )

    def __enter__(self) -> "Span":
        self._tracer._on_enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._on_exit(self)
        return False

    def to_record(self) -> dict:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "start_s": round(self.start_s, 9),
            "dur_s": round(self.dur_s, 9),
            "tags": self.tags,
            "counters": self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id!r},"
            f" dur={self.dur_s:.6f})"
        )


class _NullSpan:
    """Shared no-op span handed out when tracing is disarmed.

    Every method is a constant-time no-op and ``armed`` is False, so
    instrumented hot paths pay one attribute check and nothing else.
    The singleton is stateless and therefore safely re-entrant.
    """

    __slots__ = ()
    armed = False

    def add(self, counter: str, n: int = 1) -> None:
        pass

    def tag(self, **tags) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span emitter; see the module docstring for schema."""

    armed = True

    def __init__(
        self,
        sink: Optional[os.PathLike] = None,
        ring_capacity: int = RING_CAPACITY,
    ) -> None:
        self.pid = os.getpid()
        self.sink = Path(sink) if sink is not None else None
        #: Completed spans, oldest evicted first.
        self.ring: Deque[Span] = deque(maxlen=ring_capacity)
        self.metrics = MetricsRegistry()
        self._flushed = MetricsRegistry()
        self._stack: List[Span] = []
        self._seq = 0
        # Span starts are reported relative to the tracer's creation on
        # the monotonic clock; only durations are comparable across
        # processes.
        self._epoch = time.perf_counter()

    # -- span API ------------------------------------------------------
    def span(self, name: str, **tags) -> Span:
        return Span(self, name, tags)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def add(self, counter: str, n: int = 1) -> None:
        """Bump a counter on the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].add(counter, n)

    # -- span lifecycle (called by Span) -------------------------------
    def _on_enter(self, span: Span) -> None:
        self._seq += 1
        span.span_id = f"{self.pid}-{self._seq}"
        parent = self.current()
        span.parent_id = parent.span_id if parent is not None else None
        self._stack.append(span)
        span.start_s = time.perf_counter() - self._epoch

    def _on_exit(self, span: Span) -> None:
        span.dur_s = (
            time.perf_counter() - self._epoch - span.start_s
        )
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        self.ring.append(span)
        self._write(span.to_record())

    # -- sink ----------------------------------------------------------
    def _write(self, record: dict) -> None:
        if self.sink is None:
            return
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )
        self.sink.parent.mkdir(parents=True, exist_ok=True)
        # A single write of one newline-terminated line: concurrent
        # appenders interleave whole records (short lines sit well
        # under PIPE_BUF) and a SIGKILL can tear at most the last one.
        with open(self.sink, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def flush_metrics(self) -> None:
        """Append the metrics delta since the last flush to the sink."""
        delta = self.metrics.delta_since(self._flushed)
        if not delta:
            return
        self._flushed = self.metrics.copy()
        self._write(
            {"kind": "metrics", "pid": self.pid, **delta.to_dict()}
        )
