"""Reading and rendering trace sinks: summary, tree, JSON export.

``load_trace`` reads a JSONL sink written by one or more processes
(shards and pool workers all append to the same path), skipping torn
lines the same way ``Manifest.tail`` does, and returns the parsed span
records plus a single merged :class:`MetricsRegistry`.

``summarize`` turns that into the rollups the CLI renders:

* per-name span aggregates (count, total wall, self wall -- self time
  is a span's duration minus its same-process children),
* the top-N hottest ``cell`` spans (executed sweep cells),
* kernel-counter totals over every ``sim.run`` span (events,
  instructions, fast-forward runs/memo hits, batch record/replay
  deltas),
* sweep-level cache accounting (hits/misses/skipped) that reconciles
  with the manifest,
* the merged metrics registry.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, bucket_bounds

__all__ = [
    "SpanRecord",
    "TraceData",
    "format_summary",
    "format_tree",
    "load_trace",
    "summarize",
]


@dataclass
class SpanRecord:
    """One span line from a sink (see Tracer docstring for schema)."""

    span_id: str
    parent_id: Optional[str]
    name: str
    pid: int
    start_s: float
    dur_s: float
    tags: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @classmethod
    def from_record(cls, rec: dict) -> "SpanRecord":
        return cls(
            span_id=str(rec["id"]),
            parent_id=rec.get("parent"),
            name=str(rec.get("name", "?")),
            pid=int(rec.get("pid", 0)),
            start_s=float(rec.get("start_s", 0.0)),
            dur_s=float(rec.get("dur_s", 0.0)),
            tags=dict(rec.get("tags") or {}),
            counters=dict(rec.get("counters") or {}),
        )

    def label(self) -> str:
        """Human label: the ``spec`` tag when present, else key tags."""
        spec = self.tags.get("spec")
        if spec:
            return str(spec)
        parts = [
            str(self.tags[k])
            for k in ("workload", "scheduler", "shard")
            if k in self.tags
        ]
        return "/".join(parts) if parts else self.name


@dataclass
class TraceData:
    """Everything parsed out of one sink file."""

    path: Path
    spans: List[SpanRecord]
    metrics: MetricsRegistry
    torn: int = 0

    @property
    def pids(self) -> List[int]:
        return sorted({s.pid for s in self.spans})


def load_trace(path) -> TraceData:
    """Parse a JSONL sink, tolerating torn/corrupt lines.

    A process killed mid-append can leave one partial trailing line
    (and a merge of sinks can carry several); each unparseable line is
    counted in ``torn`` and skipped, mirroring ``Manifest.tail``.
    """
    path = Path(path)
    spans: List[SpanRecord] = []
    metrics = MetricsRegistry()
    torn = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                kind = rec.get("kind")
                if kind == "span":
                    spans.append(SpanRecord.from_record(rec))
                elif kind == "metrics":
                    metrics.merge(MetricsRegistry.from_dict(rec))
                else:
                    torn += 1
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                torn += 1
    return TraceData(path=path, spans=spans, metrics=metrics, torn=torn)


def _children_index(data: TraceData) -> Dict[str, List[SpanRecord]]:
    children: Dict[str, List[SpanRecord]] = {}
    by_id = {s.span_id for s in data.spans}
    for span in data.spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: s.start_s)
    return children


def summarize(data: TraceData, top: int = 10) -> dict:
    """Aggregate a trace into the dict the CLI renders/exports."""
    children = _children_index(data)
    by_name: Dict[str, dict] = {}
    for span in data.spans:
        child_time = sum(
            c.dur_s for c in children.get(span.span_id, ())
        )
        self_s = max(0.0, span.dur_s - child_time)
        agg = by_name.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += span.dur_s
        agg["self_s"] += self_s

    cells = sorted(
        (s for s in data.spans if s.name == "cell"),
        key=lambda s: s.dur_s,
        reverse=True,
    )
    cell_rows = [
        {
            "wall_s": round(s.dur_s, 6),
            "cell": s.label(),
            "pid": s.pid,
            "error": s.tags.get("error"),
        }
        for s in cells[: max(0, top)]
    ]

    kernel: Dict[str, int] = {}
    kernel_runs = 0
    for span in data.spans:
        if span.name != "sim.run":
            continue
        kernel_runs += 1
        for name, value in span.counters.items():
            kernel[name] = kernel.get(name, 0) + int(value)

    sweep: Dict[str, int] = {}
    for span in data.spans:
        if span.name != "sweep":
            continue
        for name, value in span.counters.items():
            sweep[name] = sweep.get(name, 0) + int(value)

    return {
        "path": str(data.path),
        "processes": data.pids,
        "span_count": len(data.spans),
        "torn_lines": data.torn,
        "spans": {
            name: {
                "count": agg["count"],
                "total_s": round(agg["total_s"], 6),
                "self_s": round(agg["self_s"], 6),
            }
            for name, agg in sorted(
                by_name.items(),
                key=lambda kv: kv[1]["total_s"],
                reverse=True,
            )
        },
        "cells": cell_rows,
        "kernel": {
            "runs": kernel_runs,
            **{k: kernel[k] for k in sorted(kernel)},
        },
        "sweep": {k: sweep[k] for k in sorted(sweep)},
        "metrics": data.metrics.to_dict(),
    }


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    ]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append(
            "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            )
        )
    return out


def format_summary(summary: dict) -> str:
    lines = [
        f"trace {summary['path']}: {summary['span_count']} spans from"
        f" {len(summary['processes'])} process(es)"
        + (
            f", {summary['torn_lines']} torn line(s) skipped"
            if summary["torn_lines"]
            else ""
        )
    ]
    if summary["spans"]:
        lines.append("")
        lines.extend(
            _table(
                ["span", "count", "total_s", "self_s"],
                [
                    [
                        name,
                        str(agg["count"]),
                        f"{agg['total_s']:.4f}",
                        f"{agg['self_s']:.4f}",
                    ]
                    for name, agg in summary["spans"].items()
                ],
            )
        )
    if summary["cells"]:
        lines.append("")
        lines.append("hottest cells:")
        lines.extend(
            _table(
                ["wall_s", "cell", "pid"],
                [
                    [
                        f"{row['wall_s']:.4f}",
                        row["cell"]
                        + (
                            f"  [error={row['error']}]"
                            if row["error"]
                            else ""
                        ),
                        str(row["pid"]),
                    ]
                    for row in summary["cells"]
                ],
            )
        )
    kernel = dict(summary["kernel"])
    runs = kernel.pop("runs", 0)
    if runs:
        lines.append("")
        lines.append(f"kernel counters ({runs} sim.run span(s)):")
        for name, value in kernel.items():
            lines.append(f"  {name} = {value}")
    if summary["sweep"]:
        lines.append("")
        lines.append("sweep cache accounting:")
        for name, value in summary["sweep"].items():
            lines.append(f"  {name} = {value}")
    metrics = summary["metrics"]
    if any(metrics.values()):
        lines.append("")
        lines.append("metrics:")
        for name, value in metrics["counters"].items():
            lines.append(f"  {name} = {value}")
        for name, value in metrics["gauges"].items():
            lines.append(f"  {name} = {value:g} (gauge)")
        for name, hist in metrics["histograms"].items():
            count = hist.get("count", 0)
            total = hist.get("total", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name}: n={count} mean={mean:.1f}"
                + _histogram_sketch(hist)
            )
    return "\n".join(lines)


def _histogram_sketch(hist: dict) -> str:
    buckets = {
        int(i): n for i, n in hist.get("buckets", {}).items()
    }
    if not buckets:
        return ""
    parts = []
    for idx in sorted(buckets):
        lo, hi = bucket_bounds(idx)
        hi_txt = "inf" if hi == float("inf") else f"{hi:g}"
        parts.append(f"[{lo:g},{hi_txt}):{buckets[idx]}")
    return "  " + " ".join(parts)


def format_tree(
    data: TraceData, depth: Optional[int] = None
) -> str:
    """Render the span forest, one tree per root span, per process."""
    children = _children_index(data)
    have_parent = {
        s.span_id
        for kids in children.values()
        for s in kids
    }
    roots = [s for s in data.spans if s.span_id not in have_parent]
    roots.sort(key=lambda s: (s.pid, s.start_s))
    lines: List[str] = []
    if data.torn:
        lines.append(f"({data.torn} torn line(s) skipped)")

    def render(span: SpanRecord, indent: int) -> None:
        if depth is not None and indent > depth:
            return
        kids = children.get(span.span_id, [])
        child_time = sum(c.dur_s for c in kids)
        self_s = max(0.0, span.dur_s - child_time)
        detail = []
        label = span.label()
        if label != span.name:
            detail.append(label)
        detail.extend(
            f"{k}={v}"
            for k, v in sorted(span.counters.items())
        )
        if "error" in span.tags:
            detail.append(f"error={span.tags['error']}")
        suffix = ("  " + " ".join(detail)) if detail else ""
        lines.append(
            "  " * indent
            + f"{span.name} {span.dur_s:.4f}s"
            + (f" (self {self_s:.4f}s)" if kids else "")
            + suffix
        )
        for kid in kids:
            render(kid, indent + 1)

    last_pid = None
    for root in roots:
        if root.pid != last_pid:
            lines.append(f"pid {root.pid}:")
            last_pid = root.pid
        render(root, 1)
    return "\n".join(lines)
