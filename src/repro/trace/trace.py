"""Block-run execution traces.

A *trace event* is one run of instructions within a single instruction
cache block, optionally paired with one data access:

    (iblock, ilen, dblock, dwrite)

* ``iblock`` -- instruction block number being fetched;
* ``ilen``   -- number of instructions executed from that block;
* ``dblock`` -- data block number touched, or ``-1`` for none;
* ``dwrite`` -- 1 if the data access is a store, else 0.

This is the finest granularity any mechanism in the paper operates at
(caches, STREX's phaseID tagging, SLICC's signatures and PIF all act on
64 B blocks), which keeps pure-Python replay tractable (DESIGN.md,
decision 1).  Events are stored as parallel columns -- plain Python
lists or NumPy arrays, kept as given without copying.  The simulator's
inner loops read plain-list views (list indexing is considerably
faster than NumPy scalar extraction, and builtin ints keep results
JSON-serializable), normalized lazily via :meth:`TransactionTrace.
event_columns`; NumPy views stay available for analysis and feed the
hit-run tables (:meth:`TransactionTrace.run_tables`).
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Minimum length (in events) of an instruction-only span for the
#: engine's hit-run fast-forward to consider it.  Shorter spans are
#: cheaper to replay scalar than to probe for residency.
RUN_MIN_EVENTS = 4


class TransactionTrace:
    """The full execution trace of one transaction.

    Columns may be plain Python lists or NumPy arrays; they are stored
    as given, without copying.  The simulator's inner loops always go
    through :meth:`event_columns` / :meth:`packed_events`, which
    normalize to plain lists exactly once per trace, so NumPy scalar
    types never leak into replay arithmetic or serialized results.
    """

    __slots__ = (
        "txn_id",
        "txn_type",
        "iblocks",
        "ilens",
        "dblocks",
        "dwrites",
        "total_instructions",
        "_unique_iblocks",
        "_packed_events",
        "_set_indices",
        "_ilen_prefix",
        "_list_columns",
        "_run_tables",
        "_content_key",
    )

    def __init__(
        self,
        txn_id: int,
        txn_type: str,
        iblocks: Sequence[int],
        ilens: Sequence[int],
        dblocks: Sequence[int],
        dwrites: Sequence[int],
    ):
        lengths = {len(iblocks), len(ilens), len(dblocks), len(dwrites)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.iblocks = iblocks
        self.ilens = ilens
        self.dblocks = dblocks
        self.dwrites = dwrites
        self.total_instructions = int(sum(ilens))
        # Lazily-built derived views, shared by every run of a batch:
        # the distinct-iblock set, packed per-event tuples keyed by
        # base CPI, L1-I set indices keyed by set count, plain-list
        # column views, hit-run tables, and the content digest.
        self._unique_iblocks: Optional[frozenset] = None
        self._packed_events: dict = {}
        self._set_indices: dict = {}
        self._ilen_prefix: Optional[list] = None
        self._list_columns: Optional[tuple] = None
        self._run_tables: dict = {}
        self._content_key: Optional[str] = None

    def __len__(self) -> int:
        return len(self.iblocks)

    def __repr__(self) -> str:
        return (
            f"TransactionTrace(id={self.txn_id}, type={self.txn_type!r}, "
            f"events={len(self)}, instructions={self.total_instructions})"
        )

    def events(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate over (iblock, ilen, dblock, dwrite) tuples."""
        return zip(*self.event_columns())

    def event_columns(self) -> tuple:
        """``(iblocks, ilens, dblocks, dwrites)`` as plain Python lists.

        Array-backed traces (e.g. from :func:`load_traces`) are
        normalized once and the lists memoized; list-backed traces are
        returned as-is with no copy.  Every replay consumer goes
        through here so arithmetic stays on builtin ints.
        """
        cols = self._list_columns
        if cols is None:
            cols = tuple(
                col if type(col) is list else np.asarray(col).tolist()
                for col in (self.iblocks, self.ilens,
                            self.dblocks, self.dwrites)
            )
            self._list_columns = cols
        return cols

    def unique_iblocks(self) -> frozenset:
        """Distinct instruction blocks touched (the static footprint).

        Memoized: FPTable profiling and the Table 3 analysis call this
        repeatedly per trace.  The result is a frozenset so sharing the
        memo is safe.
        """
        if self._unique_iblocks is None:
            self._unique_iblocks = frozenset(self.event_columns()[0])
        return self._unique_iblocks

    def content_key(self) -> str:
        """Stable digest of the trace's identity and event columns.

        Used by the batch replay registry to key recorded simulations
        on trace *content* rather than object identity, so equal
        workloads regenerated from the same seed share a recording.
        Memoized (traces are immutable by convention).
        """
        digest = self._content_key
        if digest is None:
            h = hashlib.sha1()
            h.update(
                f"{self.txn_id}|{self.txn_type}|{len(self)}".encode())
            for col in (self.iblocks, self.ilens,
                        self.dblocks, self.dwrites):
                arr = np.ascontiguousarray(
                    np.asarray(col, dtype=np.int64))
                h.update(arr.tobytes())
            digest = h.hexdigest()
            self._content_key = digest
        return digest

    def footprint_units(self, blocks_per_unit: int) -> float:
        """Instruction footprint in L1-I size units (Table 3's metric)."""
        return len(self.unique_iblocks()) / blocks_per_unit

    def packed_events(self, cpi: float, num_sets: int) -> list:
        """``(iblock, icycles, ilen, dblock, dwrite, iset)`` tuples.

        ``icycles`` is ``ilen * cpi`` precomputed with exactly the
        operands the engine's reference loop uses, so replaying the
        packed form accumulates bit-identical float cycles; ``iset`` is
        the L1-I set index of ``iblock`` for the given geometry.  Built
        once per ``(cpi, num_sets)`` and shared by every run.
        """
        key = (cpi, num_sets)
        packed = self._packed_events.get(key)
        if packed is None:
            isets = self.iblock_set_indices(num_sets)
            iblocks, ilens, dblocks, dwrites = self.event_columns()
            packed = [
                (iblock, ilen * cpi, ilen, dblock, dwrite, iset)
                for iblock, ilen, dblock, dwrite, iset in zip(
                    iblocks, ilens, dblocks, dwrites, isets)
            ]
            self._packed_events[key] = packed
        return packed

    def run_tables(self, cpi: float, num_sets: int) -> Optional[tuple]:
        """Hit-run tables for the engine's batch fast-forward.

        A *run* is a maximal span of instruction-only events (no
        data-side access, ``dblock < 0``); spans shorter than
        :data:`RUN_MIN_EVENTS` are ignored.  Returns ``None`` when the
        trace has no eligible runs, else ``(next_ff, runs)``:

        * ``next_ff[i]`` -- start index of the first eligible run at or
          after event ``i`` (``len(trace)`` when none remain), so the
          scalar loop knows exactly how far to interpret before the
          next fast-forward opportunity;
        * ``runs[start] = (end, icycles, distinct_blocks,
          last_offsets, n_events, run_sets)`` -- the half-open span, the
          per-event ``ilen * cpi`` terms (bit-identical operands to
          :meth:`packed_events`, accumulated sequentially so float
          cycle totals match the scalar loop), the distinct instruction
          blocks in first-occurrence order (a tuple -- the engine keys
          its residency memo on it, so identical code-path runs in
          *different* traces share memo entries), each block's last
          within-run offset (its final age stamp under MRU promotion),
          the event count, and the distinct L1-I set indices the run's
          blocks map to (the engine sums those sets' fill counters into
          the memo's residency signature, so only a fill touching an
          involved set invalidates it).

        Span discovery is vectorized with NumPy over the ``dblocks``
        column; built once per ``(cpi, num_sets)`` and shared by every
        run of the batch.
        """
        key = (cpi, num_sets)
        if key in self._run_tables:
            return self._run_tables[key]
        iblocks, ilens, dblocks, _ = self.event_columns()
        n = len(iblocks)
        flags = np.zeros(n + 2, dtype=np.int8)
        flags[1:-1] = np.asarray(self.dblocks, dtype=np.int64) < 0
        edges = np.diff(flags)
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        eligible = (ends - starts) >= RUN_MIN_EVENTS
        starts = starts[eligible]
        ends = ends[eligible]
        if len(starts) == 0:
            self._run_tables[key] = None
            return None
        icycles_all = np.asarray(self.ilens, dtype=np.int64) * cpi
        idx = np.searchsorted(starts, np.arange(n + 1), side="left")
        next_ff = np.where(
            idx < len(starts),
            starts[np.minimum(idx, len(starts) - 1)],
            n,
        ).tolist()
        pot = num_sets & (num_sets - 1) == 0
        mask = num_sets - 1
        runs = {}
        for s, e in zip(starts.tolist(), ends.tolist()):
            last_offset: dict = {}
            for off, block in enumerate(iblocks[s:e]):
                last_offset[block] = off
            run_sets: dict = {}
            for block in last_offset:
                run_sets[(block & mask) if pot
                         else (block % num_sets)] = None
            runs[s] = (
                e,
                icycles_all[s:e].tolist(),
                tuple(last_offset.keys()),
                list(last_offset.values()),
                e - s,
                tuple(run_sets),
            )
        tables = (next_ff, runs)
        self._run_tables[key] = tables
        return tables

    def iblock_set_indices(self, num_sets: int) -> list:
        """Per-event L1-I set index of each instruction block.

        Matches ``Cache.set_index`` for the given geometry (mask for
        powers of two, modulo otherwise); built once per ``num_sets``.
        """
        indices = self._set_indices.get(num_sets)
        if indices is None:
            iblocks = self.event_columns()[0]
            if num_sets & (num_sets - 1) == 0:
                mask = num_sets - 1
                indices = [block & mask for block in iblocks]
            else:
                indices = [block % num_sets for block in iblocks]
            self._set_indices[num_sets] = indices
        return indices

    def instruction_prefix(self) -> list:
        """Cumulative instruction counts: ``prefix[i]`` is the total
        instructions in events ``[0, i)``, so a slice's instruction
        count is ``prefix[end] - prefix[start]``.  Memoized."""
        prefix = self._ilen_prefix
        if prefix is None:
            ilens = self.event_columns()[1]
            prefix = [0] * (len(ilens) + 1)
            total = 0
            for i, ilen in enumerate(ilens):
                total += ilen
                prefix[i + 1] = total
            self._ilen_prefix = prefix
        return prefix

    def iblock_array(self) -> np.ndarray:
        """Instruction blocks as a NumPy array (for analysis)."""
        return np.asarray(self.iblocks, dtype=np.int64)

    def ilen_array(self) -> np.ndarray:
        """Per-event instruction counts as a NumPy array."""
        return np.asarray(self.ilens, dtype=np.int64)


class TraceBuilder:
    """Incremental construction of a :class:`TransactionTrace`."""

    def __init__(self, txn_id: int, txn_type: str):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self._iblocks: List[int] = []
        self._ilens: List[int] = []
        self._dblocks: List[int] = []
        self._dwrites: List[int] = []

    def append(
        self,
        iblock: int,
        ilen: int,
        dblock: int = -1,
        dwrite: int = 0,
    ) -> None:
        """Append one event."""
        if ilen <= 0:
            raise ValueError("ilen must be positive")
        self._iblocks.append(iblock)
        self._ilens.append(ilen)
        self._dblocks.append(dblock)
        self._dwrites.append(dwrite)

    def __len__(self) -> int:
        return len(self._iblocks)

    @property
    def last_iblock(self) -> Optional[int]:
        """Most recently appended instruction block, if any."""
        if not self._iblocks:
            return None
        return self._iblocks[-1]

    def build(self) -> TransactionTrace:
        """Finalize into an immutable-by-convention trace."""
        if not self._iblocks:
            raise ValueError("cannot build an empty trace")
        return TransactionTrace(
            self.txn_id,
            self.txn_type,
            self._iblocks,
            self._ilens,
            self._dblocks,
            self._dwrites,
        )


def save_traces(path: str, traces: List[TransactionTrace]) -> None:
    """Persist traces to an ``.npz`` archive."""
    payload = {}
    meta = []
    for i, trace in enumerate(traces):
        meta.append((trace.txn_id, trace.txn_type))
        payload[f"i{i}"] = np.asarray(trace.iblocks, dtype=np.int64)
        payload[f"l{i}"] = np.asarray(trace.ilens, dtype=np.int32)
        payload[f"d{i}"] = np.asarray(trace.dblocks, dtype=np.int64)
        payload[f"w{i}"] = np.asarray(trace.dwrites, dtype=np.int8)
    payload["ids"] = np.asarray([m[0] for m in meta], dtype=np.int64)
    payload["types"] = np.asarray([m[1] for m in meta])
    np.savez_compressed(path, **payload)


def load_traces(path: str) -> List[TransactionTrace]:
    """Load traces previously written by :func:`save_traces`."""
    with np.load(path, allow_pickle=False) as data:
        ids = data["ids"]
        types = data["types"]
        traces = []
        for i in range(len(ids)):
            # Keep the columnar arrays: the run tables and content
            # digests consume them directly, and TransactionTrace
            # stores them without copying (normalizing to lists
            # lazily, only if the replay loops need them).
            traces.append(
                TransactionTrace(
                    int(ids[i]),
                    str(types[i]),
                    data[f"i{i}"],
                    data[f"l{i}"],
                    data[f"d{i}"],
                    data[f"w{i}"],
                )
            )
    return traces
